//! Minimal vendored stand-in for `serde` (see `shims/README.md`).
//!
//! The workspace only ever serializes report structs into JSON trees, so
//! the whole data model collapses to one [`Value`] enum plus a
//! [`Serialize`] trait that converts into it. Object keys are kept
//! sorted, matching upstream `serde_json::Value`'s `BTreeMap` ordering —
//! the committed `reports/*.json` files were produced that way.

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped tree, the target of every serialization in this workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Entries sorted by key (mirrors upstream's `BTreeMap<String, Value>`).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object, sorting entries by key like upstream's map type.
    pub fn object(mut entries: Vec<(String, Value)>) -> Value {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }

    /// Object member lookup (upstream `Value::get` with a string key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Any numeric variant, widened to `f64` (upstream `as_f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }
}

/// Upstream-style `value["key"]` indexing: missing members and non-objects
/// yield `Value::Null` instead of panicking.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// Conversion into the JSON data model (shim for `serde::Serialize`).
pub trait Serialize {
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
