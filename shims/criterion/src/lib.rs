//! Minimal vendored stand-in for `criterion` (see `shims/README.md`).
//!
//! Implements the group/bench-function API the workspace's benches use.
//! Measurement is deliberately simple — calibrate an iteration count to
//! a minimum measurement window, take `sample_size` samples, report the
//! median ns/iter plus throughput — which is plenty for the relative
//! before/after comparisons the perf trajectory needs.

use std::time::{Duration, Instant};

/// Declared per-iteration workload, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            sample_size: 20,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        run_bench(&id.into(), None, 20, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, self.throughput, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value sink preventing the optimizer from deleting the workload.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, tp: Option<Throughput>, samples: usize, mut f: F) {
    // Calibrate: grow the iteration count until one sample takes ~2 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter[per_iter.len() / 2];
    let rate = match tp {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.1} elem/s", n as f64 * 1e9 / median)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:>12.1} MiB/s",
                n as f64 * 1e9 / median / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("  {id:<40} {median:>12.1} ns/iter{rate}");
}

/// Collects benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target. Ignores the
/// harness arguments cargo passes (`--bench`, filters).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
