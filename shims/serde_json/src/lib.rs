//! Minimal vendored stand-in for `serde_json` (see `shims/README.md`).
//!
//! Supports exactly what the harness uses: `to_value` and
//! `to_string_pretty`. Output matches upstream's pretty printer —
//! two-space indent, object keys sorted (via the shim `Value`'s sorted
//! construction), floats printed shortest-roundtrip with a trailing
//! `.0` for integral values — so regenerated `reports/*.json` stay
//! byte-identical to the committed ones.

use serde::Serialize;
pub use serde::Value;

/// Infallible in the shim, but typed like upstream so call sites keep
/// their `.expect(..)`.
pub type Error = std::convert::Infallible;
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a JSON tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Compact one-line JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Pretty JSON, two-space indent (upstream `PrettyFormatter` defaults).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

fn write_pretty(v: &Value, depth: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                indent(depth + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(val, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push('}');
        }
        other => write_scalar(other, out),
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
        other => write_scalar(other, out),
    }
}

fn write_scalar(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::String(s) => write_string(s, out),
        Value::Array(_) | Value::Object(_) => out.push_str(match v {
            Value::Array(_) => "[]",
            _ => "{}",
        }),
    }
}

/// Shortest-roundtrip float, with `.0` appended for integral values —
/// the format `ryu` produces for upstream serde_json.
fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_upstream_layout() {
        let v = Value::object(vec![
            ("b".to_string(), Value::Float(2.0)),
            (
                "a".to_string(),
                Value::Array(vec![Value::UInt(1), Value::Null]),
            ),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1,\n    null\n  ],\n  \"b\": 2.0\n}");
    }

    #[test]
    fn floats_keep_shortest_roundtrip_form() {
        let mut s = String::new();
        write_float(3.0779070868187213, &mut s);
        assert_eq!(s, "3.0779070868187213");
        s.clear();
        write_float(1.0, &mut s);
        assert_eq!(s, "1.0");
    }

    #[test]
    fn empty_containers_stay_inline() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }
}
