//! Minimal vendored stand-in for `serde_json` (see `shims/README.md`).
//!
//! Supports exactly what the harness uses: `to_value`,
//! `to_string_pretty`, and a [`from_str`] parser back into [`Value`]
//! (the perf regression gate reads the reports it wrote). Output matches
//! upstream's pretty printer — two-space indent, object keys sorted (via
//! the shim `Value`'s sorted construction), floats printed
//! shortest-roundtrip with a trailing `.0` for integral values — so
//! regenerated `reports/*.json` stay byte-identical to the committed
//! ones.

use serde::Serialize;
pub use serde::Value;

/// Infallible in the shim, but typed like upstream so call sites keep
/// their `.expect(..)`.
pub type Error = std::convert::Infallible;
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a JSON tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Compact one-line JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Pretty JSON, two-space indent (upstream `PrettyFormatter` defaults).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Parse failure from [`from_str`], with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What the parser expected.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`] tree.
///
/// Integers without fraction or exponent become `Value::UInt`/`Value::Int`
/// (matching what the writer emits for Rust integer types); everything
/// else numeric becomes `Value::Float`. Object keys are re-sorted on
/// construction, preserving the shim-wide sorted-object invariant.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing garbage.
pub fn from_str(s: &str) -> std::result::Result<Value, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> std::result::Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> std::result::Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> std::result::Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> std::result::Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> std::result::Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> std::result::Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // writer; reject rather than mis-decode.
                            let c =
                                char::from_u32(hex).ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let chunk =
                        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| {
                            ParseError {
                                pos: start,
                                msg: "invalid UTF-8",
                            }
                        })?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> std::result::Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let bad = ParseError {
            pos: start,
            msg: "invalid number",
        };
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return Err(bad);
        };
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| bad)
    }
}

fn write_pretty(v: &Value, depth: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                indent(depth + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(val, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push('}');
        }
        other => write_scalar(other, out),
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
        other => write_scalar(other, out),
    }
}

fn write_scalar(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::String(s) => write_string(s, out),
        Value::Array(_) | Value::Object(_) => out.push_str(match v {
            Value::Array(_) => "[]",
            _ => "{}",
        }),
    }
}

/// Shortest-roundtrip float, with `.0` appended for integral values —
/// the format `ryu` produces for upstream serde_json.
fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_upstream_layout() {
        let v = Value::object(vec![
            ("b".to_string(), Value::Float(2.0)),
            (
                "a".to_string(),
                Value::Array(vec![Value::UInt(1), Value::Null]),
            ),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1,\n    null\n  ],\n  \"b\": 2.0\n}");
    }

    #[test]
    fn floats_keep_shortest_roundtrip_form() {
        let mut s = String::new();
        write_float(3.0779070868187213, &mut s);
        assert_eq!(s, "3.0779070868187213");
        s.clear();
        write_float(1.0, &mut s);
        assert_eq!(s, "1.0");
    }

    #[test]
    fn empty_containers_stay_inline() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }

    #[test]
    fn parse_roundtrips_writer_output() {
        let v = Value::object(vec![
            ("wall".to_string(), Value::Float(0.28375)),
            (
                "name".to_string(),
                Value::String("fig\t13 \"x\"".to_string()),
            ),
            ("ops".to_string(), Value::UInt(2_000_000)),
            ("neg".to_string(), Value::Int(-7)),
            ("flag".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
            (
                "rows".to_string(),
                Value::Array(vec![Value::Float(1.0), Value::Object(vec![])]),
            ),
        ]);
        for text in [to_string_pretty(&v).unwrap(), to_string(&v).unwrap()] {
            assert_eq!(from_str(&text).unwrap(), v);
        }
    }

    #[test]
    fn parse_accessors_reach_into_reports() {
        let doc = from_str(r#"{"serial": [{"name": "fig13", "wall_secs": 0.25}]}"#).unwrap();
        let row = &doc["serial"].as_array().unwrap()[0];
        assert_eq!(row["name"].as_str(), Some("fig13"));
        assert_eq!(row["wall_secs"].as_f64(), Some(0.25));
        assert_eq!(row["missing"], Value::Null);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("true false").is_err());
        assert_eq!(from_str(" 42 ").unwrap(), Value::UInt(42));
    }
}
