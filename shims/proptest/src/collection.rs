//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Length specifications accepted by [`vec`].
pub trait SizeRange {
    /// Inclusive (min, max) element counts.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// `Vec` strategy: length drawn from `size`, elements from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { elem, min, max }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    elem: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.min..=self.max);
        (0..n).map(|_| self.elem.pick(rng)).collect()
    }
}
