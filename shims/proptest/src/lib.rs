//! Minimal vendored stand-in for `proptest` (see `shims/README.md`).
//!
//! Provides the subset the workspace's property tests use: range and
//! `any::<T>()` strategies, tuple composition, `prop_map`/`prop_flat_map`,
//! `collection::vec`, `prop_oneof!`, and the `proptest!` test macro with
//! `prop_assert!`/`prop_assert_eq!`. Cases are generated from a fixed
//! per-case seed, so runs are fully deterministic. There is no shrinking:
//! a failure reports its case number so it can be replayed exactly.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, Arbitrary, Just, Strategy};
pub use test_runner::{case_rng, ProptestConfig, TestRng};

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn roundtrips(x in 0u32..100) { prop_assert!(x < 100); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0u32..__config.cases {
                    let mut __rng = $crate::case_rng(__case);
                    $(let $arg = $crate::Strategy::pick(&($strat), &mut __rng);)+
                    let __outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        ::std::panic!(
                            "proptest {} failed at case {}/{}: {}",
                            ::std::stringify!($name), __case, __config.cases, __msg,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::arc_arm($arm)),+])
    };
}

/// Like `assert!`, but fails the enclosing proptest case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Like `assert_eq!`, but fails the enclosing proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left), ::std::stringify!($right), __l, __r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}
