//! Deterministic case runner configuration.

/// The RNG driving every strategy.
pub type TestRng = rand::rngs::SmallRng;

/// Per-test configuration (shim for `proptest::test_runner::ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Fixed per-case seed: runs are reproducible and a failing case number
/// is enough to replay it.
pub fn case_rng(case: u32) -> TestRng {
    use rand::SeedableRng;
    TestRng::seed_from_u64(0xA55A_5EED_u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}
