//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::sync::Arc;

/// A recipe for generating values of one type (shim for
/// `proptest::strategy::Strategy`, minus shrinking).
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then a follow-up strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn pick(&self, rng: &mut TestRng) -> S::Value {
        (**self).pick(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Arc<S> {
    type Value = S::Value;
    fn pick(&self, rng: &mut TestRng) -> S::Value {
        (**self).pick(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn pick(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.pick(rng))
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn pick(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.pick(rng)).pick(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// Marker strategy for [`Arbitrary`] types.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Any<T> {}

/// The full-range strategy for `T` (`any::<u8>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.pick(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Uniform choice between boxed strategy arms (`prop_oneof!` backing).
pub struct Union<T> {
    arms: Vec<Arc<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<Arc<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].pick(rng)
    }
}

/// Erases a strategy's concrete type for `prop_oneof!` arms.
pub fn arc_arm<S>(s: S) -> Arc<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Arc::new(s)
}
