//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim (see `shims/README.md`).
//!
//! Parses the item with plain `proc_macro` token iteration (no `syn`):
//! supports non-generic structs (named, tuple, unit) and enums whose
//! variants are unit, tuple or struct-like — exactly the shapes this
//! workspace derives on. Output follows serde's externally-tagged JSON
//! data model so reports keep the conventional layout.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `serde::Serialize` (`fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::NewtypeStruct => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::NamedStruct(fields) => object_expr(fields, "self."),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!(
                            "Self::{0} => ::serde::Value::String(\"{0}\".to_string()),\n",
                            v.name
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "Self::{0}({1}) => ::serde::Value::object(vec![(\"{0}\".to_string(), {2})]),\n",
                            v.name,
                            binds.join(", "),
                            inner
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let inner = object_expr(fields, "");
                        arms.push_str(&format!(
                            "Self::{0} {{ {1} }} => ::serde::Value::object(vec![(\"{0}\".to_string(), {2})]),\n",
                            v.name, binds, inner
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {}\n    }}\n}}\n",
        item.name, body
    );
    out.parse().expect("generated impl parses")
}

/// No-op `Deserialize` derive: the shim has no deserialization path; the
/// derive exists so `#[derive(Deserialize)]` sites keep compiling.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

fn object_expr(fields: &[String], access: &str) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&{access}{f}))"))
        .collect();
    format!("::serde::Value::object(vec![{}])", pairs.join(", "))
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    UnitStruct,
    NewtypeStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if matches!(&toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("shim serde_derive does not support generic types ({name})");
    }
    match kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::NamedStruct(named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = tuple_arity(g.stream());
                Item {
                    name,
                    shape: if n == 1 {
                        Shape::NewtypeStruct
                    } else {
                        Shape::TupleStruct(n)
                    },
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                shape: Shape::UnitStruct,
            },
            other => panic!("unexpected struct body: {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::Enum(variants(g.stream())),
            },
            other => panic!("unexpected enum body: {other:?}"),
        },
        other => panic!("cannot derive for {other}"),
    }
}

/// Field names of a named-field body, in declaration order.
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(fname)) = toks.next() else {
            break;
        };
        fields.push(fname.to_string());
        // Expect ':', then skip the type up to a top-level comma. Angle
        // brackets are bare puncts, so track their depth to step over
        // commas inside generic arguments.
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field {fname}, got {other:?}"),
        }
        let mut angle = 0i32;
        for t in toks.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Number of fields in a tuple body (top-level comma count).
fn tuple_arity(body: TokenStream) -> usize {
    let mut n = 0usize;
    let mut saw_any = false;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    for t in body {
        saw_any = true;
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                n += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if saw_any && !trailing_comma {
        n += 1;
    }
    n
}

fn variants(body: TokenStream) -> Vec<Variant> {
    let mut out = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(vname)) = toks.next() else {
            break;
        };
        let name = vname.to_string();
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g.stream());
                toks.next();
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = tuple_arity(g.stream());
                toks.next();
                VariantShape::Tuple(n)
            }
            _ => VariantShape::Unit,
        };
        out.push(Variant { name, shape });
        // Skip an optional discriminant (`= expr`) and the separating comma.
        let mut angle = 0i32;
        while let Some(t) = toks.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle += 1;
                    toks.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle -= 1;
                    toks.next();
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    toks.next();
                    break;
                }
                _ => {
                    toks.next();
                }
            }
        }
    }
    out
}
