//! Minimal vendored stand-in for `bytes` (see `shims/README.md`).
//!
//! [`Bytes`] here is a cheaply-cloneable immutable byte buffer backed by
//! `Arc<[u8]>` — the only behavior the simulator relies on (shared
//! zero-copy pages flowing between flash, FTL and stream buffers).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply-cloneable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wraps a static slice (copied once into the shared allocation).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the range `[at..)` ... upstream slices share the allocation;
    /// the shim copies, which is semantically identical for immutable data.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "..")?;
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn deref_and_slice_behave_like_slices() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(&a[1..3], &[2, 3]);
        assert_eq!(a.slice(1..3), Bytes::from(vec![2u8, 3]));
        assert_eq!(a.len(), 4);
    }
}
