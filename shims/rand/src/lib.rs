//! Minimal vendored stand-in for `rand` 0.8 (see `shims/README.md`).
//!
//! Implements only what the workload generators use: `SmallRng` seeded
//! through `seed_from_u64`, and `Rng::gen_range` over integer ranges.
//! `SmallRng` is xoshiro256++ with SplitMix64 seed expansion — the same
//! generator upstream `rand` 0.8 uses on 64-bit targets — and range
//! sampling uses the same widening-multiply rejection scheme, so
//! deterministic workload streams keep their statistical properties.

pub mod rngs;

pub use rngs::SmallRng;

/// Raw generator output (shim for `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a seed (shim for `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed with SplitMix64, like upstream's default.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers (shim for `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive integer range.
    ///
    /// The output is a direct type parameter (as upstream) so integer
    /// literals in the range infer from the call site's expected type.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)` — 53 random mantissa bits.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli(1/2).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Range types accepted by [`Rng::gen_range`].
///
/// Implemented once, generically, over [`SampleUniform`] element types —
/// a single blanket impl (like upstream) keeps integer-literal inference
/// working: `1 + rng.gen_range(0..7)` in a `u32` context infers `u32`.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Integer types uniformly sampleable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    fn to_i128(self) -> i128;
    fn wrapping_add_u64(self, offset: u64) -> Self;
    fn full_random<R: RngCore>(rng: &mut R) -> Self;
    fn is_type_min(self) -> bool;
    fn is_type_max(self) -> bool;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn wrapping_add_u64(self, offset: u64) -> $t {
                self.wrapping_add(offset as $t)
            }
            fn full_random<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
            fn is_type_min(self) -> bool {
                self == <$t>::MIN
            }
            fn is_type_max(self) -> bool {
                self == <$t>::MAX
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        let span = (self.end.to_i128() - self.start.to_i128()) as u64;
        self.start.wrapping_add_u64(bounded_u64(rng, span))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "empty gen_range");
        if start.is_type_min() && end.is_type_max() {
            return T::full_random(rng);
        }
        let span = (end.to_i128() - start.to_i128() + 1) as u64;
        start.wrapping_add_u64(bounded_u64(rng, span))
    }
}

/// Uniform integer in `[0, bound)` by widening multiply with rejection
/// (Lemire's method, as upstream's `UniformInt::sample_single`).
fn bounded_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (bound as u128);
        let lo = m as u64;
        if lo <= zone {
            return (m >> 64) as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds_and_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = rng.gen_range(0u32..10);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 100_000.0;
            assert!((frac - 0.1).abs() < 0.01, "bucket at {frac}");
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1000 {
            match rng.gen_range(0u8..=3) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }
}
