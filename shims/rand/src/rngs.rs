//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Small fast non-crypto PRNG: xoshiro256++ (what upstream `rand` 0.8
/// backs `SmallRng` with on 64-bit platforms).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(mut state: u64) -> SmallRng {
        // SplitMix64 expansion (rand_core's default seed_from_u64).
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        debug_assert!(s.iter().any(|&w| w != 0), "splitmix never yields all-zero");
        SmallRng { s }
    }
}
