//! # ASSASIN — facade crate
//!
//! Reproduction of *ASSASIN: Architecture Support for Stream Computing to
//! Accelerate Computational Storage* (Zou & Chien, MICRO 2022).
//!
//! This crate re-exports every subsystem of the reproduction so downstream
//! users can depend on a single crate:
//!
//! * [`sim`] — timing substrate (timelines, bandwidth resources, clocks)
//! * [`flash`] — NAND flash array model (MQSim-equivalent)
//! * [`ftl`] — flash translation layer with striped allocation and skew
//! * [`mem`] — caches, DCPT prefetcher, DRAM, scratchpad, streambuffer
//! * [`isa`] — the ASSASIN instruction set and assembler
//! * [`core`] — cycle-level in-order core model (Table IV variants)
//! * [`ssd`] — the computational SSD assembly (crossbar, firmware, scomp)
//! * [`kernels`] — offloaded functions written in the ASSASIN ISA
//! * [`workloads`] — TPC-H-like data generation
//! * [`analytics`] — mini relational engine + host model for end-to-end runs
//! * [`power`] — power/area/SRAM-timing models
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.

pub use assasin_analytics as analytics;
pub use assasin_core as core;
pub use assasin_flash as flash;
pub use assasin_ftl as ftl;
pub use assasin_isa as isa;
pub use assasin_kernels as kernels;
pub use assasin_mem as mem;
pub use assasin_power as power;
pub use assasin_sim as sim;
pub use assasin_ssd as ssd;
pub use assasin_workloads as workloads;
