//! Shared resources with earliest-fit (backfilling) arbitration.

use crate::{SimDur, SimTime};
use std::collections::VecDeque;

/// A reservation handed out by [`Timeline::acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service actually began (>= the requested ready time).
    pub start: SimTime,
    /// When service completes and the resource frees.
    pub end: SimTime,
    /// Time spent queued before service began.
    pub queued: SimDur,
}

/// An exclusive shared resource: a flash chip, a channel bus, a crossbar
/// port, a DRAM bus slot.
///
/// Reservations are *earliest-fit*: a request ready at time `t` takes the
/// first idle gap of sufficient length at or after `t`, even if later
/// requests were already booked beyond it. This models a fair arbiter and
/// keeps the bounded-slack co-simulation honest — cores are advanced one
/// epoch at a time, so their requests arrive out of global time order, and
/// strict FIFO booking would make each core queue behind every request the
/// previously-simulated core issued during the whole epoch.
///
/// Gaps older than [`Timeline::PRUNE_WINDOW`] behind the newest request are
/// permanently forfeited (bounded memory); the epoch length is far inside
/// that window.
///
/// ```
/// use assasin_sim::{SimDur, SimTime, Timeline};
/// let mut bus = Timeline::new("channel-0");
/// let a = bus.acquire(SimTime::ZERO, SimDur::from_us(4));
/// let b = bus.acquire(SimTime::ZERO, SimDur::from_us(4));
/// assert_eq!(b.start, a.end); // contended requests serialize
/// assert_eq!(bus.busy_time(), SimDur::from_us(8));
/// ```
#[derive(Debug, Clone)]
pub struct Timeline {
    name: String,
    /// Everything before this instant is settled; no new request may be
    /// placed there.
    floor: SimTime,
    /// Disjoint, sorted busy intervals `(start, end)` in picoseconds, all
    /// at or after `floor`.
    intervals: VecDeque<(u64, u64)>,
    newest_ready: SimTime,
    busy: SimDur,
    grants: u64,
    queued_total: SimDur,
}

impl Timeline {
    /// How far behind the newest request an idle gap stays claimable.
    pub const PRUNE_WINDOW: SimDur = SimDur::from_ms(10);

    /// Creates an idle resource. `name` appears in diagnostics only.
    pub fn new(name: impl Into<String>) -> Self {
        Timeline {
            name: name.into(),
            floor: SimTime::ZERO,
            intervals: VecDeque::new(),
            newest_ready: SimTime::ZERO,
            busy: SimDur::ZERO,
            grants: 0,
            queued_total: SimDur::ZERO,
        }
    }

    /// Reserves the resource for `service` starting no earlier than
    /// `ready`, in the earliest idle gap that fits.
    ///
    /// The schedule tail doubles as a last-grant cursor: a request ready
    /// at or beyond it appends (or extends the tail interval) in O(1) —
    /// the overwhelmingly common case for a resource driven by requesters
    /// advancing in time order. Only a request ready *before* the tail
    /// pays the earliest-fit gap scan.
    pub fn acquire(&mut self, ready: SimTime, service: SimDur) -> Grant {
        let ready = ready.max(self.floor);
        self.newest_ready = self.newest_ready.max(ready);
        let need = service.as_ps();
        let ready_ps = ready.as_ps();
        let start = match self.intervals.back_mut() {
            Some(tail) if ready_ps >= tail.1 => {
                if ready_ps == tail.1 {
                    tail.1 += need;
                } else {
                    self.intervals.push_back((ready_ps, ready_ps + need));
                }
                ready_ps
            }
            Some(_) => self.place_earliest_fit(ready_ps, need),
            None => {
                self.intervals.push_back((ready_ps, ready_ps + need));
                ready_ps
            }
        };
        self.prune();
        self.busy += service;
        self.grants += 1;
        let start_t = SimTime::from_ps(start);
        let queued = start_t.since(ready);
        self.queued_total += queued;
        Grant {
            start: start_t,
            end: SimTime::from_ps(start + need),
            queued,
        }
    }

    /// Reserves `count` back-to-back service slots, each of length
    /// `service`, the first starting no earlier than `ready`.
    ///
    /// Used for multi-sense operations (read-retry re-senses a page with
    /// shifted read references): the chip stays occupied for each re-sense,
    /// and each slot is booked through the normal earliest-fit arbiter so
    /// competing requests interleave exactly as they would with separate
    /// `acquire` calls. The returned grant spans the first slot's start to
    /// the last slot's end; `queued` is the first slot's queueing delay.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn acquire_repeated(&mut self, ready: SimTime, service: SimDur, count: u32) -> Grant {
        assert!(count > 0, "acquire_repeated needs at least one slot");
        let first = self.acquire(ready, service);
        let mut last = first;
        for _ in 1..count {
            last = self.acquire(last.end, service);
        }
        Grant {
            start: first.start,
            end: last.end,
            queued: first.queued,
        }
    }

    /// The slow path: scans for the earliest idle gap that fits, inserts,
    /// and merges touching neighbors. Returns the service start.
    fn place_earliest_fit(&mut self, ready_ps: u64, need: u64) -> u64 {
        // Intervals ending strictly before `ready` can neither host the
        // insertion point (their start is below `ready`) nor push `start`
        // forward (`max(e)` is a no-op), so skip them wholesale. The
        // deque is sorted, which makes that a binary search — the scan
        // then touches only the few intervals near the request, instead
        // of walking the whole booked window from its oldest entry.
        let first = self.intervals.partition_point(|&(_, e)| e < ready_ps);
        let mut start = ready_ps;
        let mut insert_at = self.intervals.len();
        for (i, &(s, e)) in self.intervals.range(first..).enumerate() {
            if start + need <= s {
                insert_at = first + i;
                break;
            }
            start = start.max(e);
        }
        self.intervals.insert(insert_at, (start, start + need));
        // Merge touching neighbors.
        if insert_at + 1 < self.intervals.len()
            && self.intervals[insert_at].1 == self.intervals[insert_at + 1].0
        {
            let (_, e2) = self
                .intervals
                .remove(insert_at + 1)
                .expect("bounds checked");
            self.intervals[insert_at].1 = e2;
        }
        if insert_at > 0 && self.intervals[insert_at - 1].1 == self.intervals[insert_at].0 {
            let (_, e2) = self.intervals.remove(insert_at).expect("bounds checked");
            self.intervals[insert_at - 1].1 = e2;
        }
        start
    }

    fn prune(&mut self) {
        let cutoff = self.newest_ready.saturating_since(SimTime::ZERO);
        let horizon = cutoff.saturating_sub(Self::PRUNE_WINDOW).as_ps();
        while let Some(&(_, e)) = self.intervals.front() {
            if e < horizon {
                self.floor = self.floor.max(SimTime::from_ps(e));
                self.intervals.pop_front();
            } else {
                break;
            }
        }
    }

    /// When the resource's last booked work completes.
    pub fn free_at(&self) -> SimTime {
        self.intervals
            .back()
            .map(|&(_, e)| SimTime::from_ps(e))
            .unwrap_or(self.floor)
    }

    /// Total time the resource has spent serving requests.
    pub fn busy_time(&self) -> SimDur {
        self.busy
    }

    /// Number of grants served.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Cumulative queuing delay over all grants.
    pub fn queued_time(&self) -> SimDur {
        self.queued_total
    }

    /// Utilization over the window `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / horizon.as_secs_f64()
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The currently tracked busy intervals, oldest first (diagnostics and
    /// invariant tests; pruned history is not included).
    pub fn busy_intervals(&self) -> impl Iterator<Item = (SimTime, SimTime)> + '_ {
        self.intervals
            .iter()
            .map(|&(s, e)| (SimTime::from_ps(s), SimTime::from_ps(e)))
    }

    /// Resets busy/queue accounting without changing the schedule (used
    /// when an experiment measures only its steady-state window).
    pub fn reset_stats(&mut self) {
        self.busy = SimDur::ZERO;
        self.grants = 0;
        self.queued_total = SimDur::ZERO;
    }

    /// Returns the resource to idle at t = 0 *and* clears accounting.
    /// Used between experiment phases (e.g. after dataset loading) so each
    /// measured run starts from a quiet device.
    pub fn reset_time(&mut self) {
        self.floor = SimTime::ZERO;
        self.intervals.clear();
        self.newest_ready = SimTime::ZERO;
        self.reset_stats();
    }

    /// Serializes the full schedule and accounting (DESIGN.md §14).
    pub fn save_state(&self, enc: &mut assasin_snap::Encoder) {
        enc.str(&self.name);
        enc.u64(self.floor.as_ps());
        enc.len_of(self.intervals.len());
        for &(s, e) in &self.intervals {
            enc.u64(s);
            enc.u64(e);
        }
        enc.u64(self.newest_ready.as_ps());
        enc.u64(self.busy.as_ps());
        enc.u64(self.grants);
        enc.u64(self.queued_total.as_ps());
    }

    /// Rebuilds a timeline from [`Timeline::save_state`] bytes.
    ///
    /// # Errors
    ///
    /// Fails on truncated input or an unsorted/overlapping interval list.
    pub fn restore_state(
        dec: &mut assasin_snap::Decoder<'_>,
    ) -> Result<Self, assasin_snap::SnapError> {
        let name = dec.str()?.to_owned();
        let floor = SimTime::from_ps(dec.u64()?);
        let n = dec.len_of()?;
        let mut intervals = VecDeque::with_capacity(n);
        let mut prev_end = 0u64;
        for _ in 0..n {
            let s = dec.u64()?;
            let e = dec.u64()?;
            if s >= e || (!intervals.is_empty() && s < prev_end) {
                return Err(assasin_snap::SnapError::Malformed(format!(
                    "timeline {name:?}: interval ({s}, {e}) out of order"
                )));
            }
            prev_end = e;
            intervals.push_back((s, e));
        }
        Ok(Timeline {
            name,
            floor,
            intervals,
            newest_ready: SimTime::from_ps(dec.u64()?),
            busy: SimDur::from_ps(dec.u64()?),
            grants: dec.u64()?,
            queued_total: SimDur::from_ps(dec.u64()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut t = Timeline::new("t");
        let g = t.acquire(SimTime::from_ns(5), SimDur::from_ns(10));
        assert_eq!(g.start, SimTime::from_ns(5));
        assert_eq!(g.end, SimTime::from_ns(15));
        assert_eq!(g.queued, SimDur::ZERO);
    }

    #[test]
    fn busy_resource_queues() {
        let mut t = Timeline::new("t");
        t.acquire(SimTime::ZERO, SimDur::from_ns(100));
        let g = t.acquire(SimTime::from_ns(30), SimDur::from_ns(10));
        assert_eq!(g.start, SimTime::from_ns(100));
        assert_eq!(g.queued, SimDur::from_ns(70));
    }

    #[test]
    fn gap_between_requests_leaves_idle_time() {
        let mut t = Timeline::new("t");
        t.acquire(SimTime::ZERO, SimDur::from_ns(10));
        t.acquire(SimTime::from_ns(100), SimDur::from_ns(10));
        assert_eq!(t.busy_time(), SimDur::from_ns(20));
        assert_eq!(t.free_at(), SimTime::from_ns(110));
        let u = t.utilization(SimTime::from_ns(110));
        assert!((u - 20.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn backfill_takes_earlier_gaps() {
        // A late-simulated requester with an early ready time slots into
        // the idle gap instead of queueing at the tail.
        let mut t = Timeline::new("t");
        t.acquire(SimTime::from_ns(1000), SimDur::from_ns(100));
        let g = t.acquire(SimTime::from_ns(10), SimDur::from_ns(50));
        assert_eq!(g.start, SimTime::from_ns(10));
        assert_eq!(g.queued, SimDur::ZERO);
        // But a request too large for any gap lands after the tail.
        let g = t.acquire(SimTime::from_ns(0), SimDur::from_ns(2000));
        assert_eq!(g.start, SimTime::from_ns(1100));
    }

    #[test]
    fn merging_keeps_intervals_compact() {
        let mut t = Timeline::new("t");
        for i in 0..100u64 {
            t.acquire(SimTime::from_ns(i * 10), SimDur::from_ns(10));
        }
        assert_eq!(t.free_at(), SimTime::from_ns(1000));
        assert_eq!(t.busy_time(), SimDur::from_ns(1000));
    }

    #[test]
    fn repeated_acquire_books_contiguous_slots_when_idle() {
        let mut t = Timeline::new("t");
        let g = t.acquire_repeated(SimTime::from_ns(5), SimDur::from_ns(10), 3);
        assert_eq!(g.start, SimTime::from_ns(5));
        assert_eq!(g.end, SimTime::from_ns(35));
        assert_eq!(g.queued, SimDur::ZERO);
        assert_eq!(t.busy_time(), SimDur::from_ns(30));
        assert_eq!(t.grants(), 3);
    }

    #[test]
    fn repeated_acquire_queues_behind_existing_work() {
        let mut t = Timeline::new("t");
        t.acquire(SimTime::ZERO, SimDur::from_ns(100));
        let g = t.acquire_repeated(SimTime::from_ns(30), SimDur::from_ns(10), 2);
        assert_eq!(g.start, SimTime::from_ns(100));
        assert_eq!(g.end, SimTime::from_ns(120));
        assert_eq!(g.queued, SimDur::from_ns(70));
    }

    #[test]
    fn repeated_acquire_of_one_matches_acquire() {
        let mut a = Timeline::new("a");
        let mut b = Timeline::new("b");
        let ga = a.acquire(SimTime::from_ns(3), SimDur::from_ns(7));
        let gb = b.acquire_repeated(SimTime::from_ns(3), SimDur::from_ns(7), 1);
        assert_eq!(ga, gb);
        assert_eq!(a.busy_time(), b.busy_time());
    }

    #[test]
    fn reset_stats_keeps_schedule() {
        let mut t = Timeline::new("t");
        t.acquire(SimTime::ZERO, SimDur::from_ns(10));
        t.reset_stats();
        assert_eq!(t.busy_time(), SimDur::ZERO);
        assert_eq!(t.free_at(), SimTime::from_ns(10));
    }

    #[test]
    fn reset_time_clears_schedule() {
        let mut t = Timeline::new("t");
        t.acquire(SimTime::ZERO, SimDur::from_ms(5));
        t.reset_time();
        assert_eq!(t.free_at(), SimTime::ZERO);
        let g = t.acquire(SimTime::ZERO, SimDur::from_ns(1));
        assert_eq!(g.start, SimTime::ZERO);
    }

    #[test]
    fn old_gaps_are_forfeited() {
        let mut t = Timeline::new("t");
        t.acquire(SimTime::ZERO, SimDur::from_ns(10));
        // A request far in the future prunes the early region.
        t.acquire(SimTime::from_ms(100), SimDur::from_ns(10));
        let g = t.acquire(SimTime::ZERO, SimDur::from_ns(10));
        assert!(g.start >= SimTime::from_ns(10), "early gap forfeited");
    }

    #[test]
    fn backfill_merges_with_both_neighbors() {
        // Two booked intervals with an exactly-sized gap between them: the
        // backfilled request bridges both, collapsing three intervals into
        // one.
        let mut t = Timeline::new("t");
        t.acquire(SimTime::ZERO, SimDur::from_ns(10)); // [0, 10)
        t.acquire(SimTime::from_ns(20), SimDur::from_ns(10)); // [20, 30)
        assert_eq!(t.busy_intervals().count(), 2);
        let g = t.acquire(SimTime::from_ns(10), SimDur::from_ns(10)); // fills [10, 20)
        assert_eq!(g.start, SimTime::from_ns(10));
        assert_eq!(g.queued, SimDur::ZERO);
        let merged: Vec<_> = t.busy_intervals().collect();
        assert_eq!(merged, vec![(SimTime::ZERO, SimTime::from_ns(30))]);
        assert_eq!(t.busy_time(), SimDur::from_ns(30));
    }

    #[test]
    fn reservation_exactly_at_prune_horizon_survives() {
        let mut t = Timeline::new("t");
        let early = t.acquire(SimTime::ZERO, SimDur::from_ns(10));
        // Advance the newest request so the early interval's end sits
        // exactly on the prune horizon: `end == newest - PRUNE_WINDOW`
        // must NOT be forfeited (prune cuts strictly-older intervals).
        let newest = early.end + Timeline::PRUNE_WINDOW;
        t.acquire(newest, SimDur::from_ns(10));
        assert_eq!(t.busy_intervals().count(), 2, "horizon interval kept");
        // A backfill right behind it is still placeable.
        let g = t.acquire(SimTime::from_ns(10), SimDur::from_ns(5));
        assert_eq!(g.start, SimTime::from_ns(10));
        // One picosecond further and the early region is forfeited.
        t.acquire(newest + SimDur::from_ps(1), SimDur::from_ns(1));
        let g = t.acquire(SimTime::ZERO, SimDur::from_ns(1));
        assert!(g.start >= SimTime::from_ns(10), "past-horizon gap gone");
    }

    #[test]
    fn fast_append_and_earliest_fit_agree_on_tail_contention() {
        // Drive two interleaved requesters: one monotone (hits the O(1)
        // append path), one lagging (forces the gap scan). The schedule
        // must stay disjoint and account every picosecond of service.
        let mut t = Timeline::new("t");
        let mut granted = SimDur::ZERO;
        for i in 0..200u64 {
            let (ready, len) = if i % 3 == 0 {
                (SimTime::from_ns(i * 7), SimDur::from_ns(9))
            } else {
                (SimTime::from_ns(i), SimDur::from_ns(2))
            };
            let g = t.acquire(ready, len);
            assert!(g.start >= ready);
            assert_eq!(g.end.since(g.start), len);
            granted += len;
        }
        assert_eq!(t.busy_time(), granted);
        let iv: Vec<_> = t.busy_intervals().collect();
        for w in iv.windows(2) {
            assert!(w[0].1 < w[1].0, "disjoint and sorted: {w:?}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Whatever the arrival pattern, the tracked intervals stay
        /// disjoint and sorted, and busy time equals the sum of granted
        /// service.
        #[test]
        fn schedule_invariants_hold(
            reqs in proptest::collection::vec((0u64..2_000, 1u64..300), 1..120)
        ) {
            let mut t = Timeline::new("prop");
            let mut service_sum = SimDur::ZERO;
            for &(ready_ns, len_ns) in &reqs {
                let len = SimDur::from_ns(len_ns);
                let g = t.acquire(SimTime::from_ns(ready_ns), len);
                prop_assert!(g.start >= SimTime::from_ns(ready_ns));
                prop_assert_eq!(g.end.since(g.start), len);
                service_sum += len;
            }
            prop_assert_eq!(t.busy_time(), service_sum);
            let iv: Vec<_> = t.busy_intervals().collect();
            for w in iv.windows(2) {
                prop_assert!(w[0].0 < w[0].1, "non-empty interval {:?}", w[0]);
                prop_assert!(w[0].1 < w[1].0, "disjoint, sorted, merged {:?}", w);
            }
        }
    }
}
