//! Simulation substrate for the ASSASIN computational-SSD reproduction.
//!
//! The paper evaluates ASSASIN with a hybrid of Gem5 (compute timing) and
//! MQSim (flash timing), stitched together by retiming page accesses. This
//! crate provides the common timing vocabulary that lets us co-simulate both
//! sides directly instead:
//!
//! * [`SimTime`] / [`SimDur`] — picosecond-resolution instants and durations,
//!   precise enough to express the sub-nanosecond clock periods of
//!   Section VI-F while spanning hours of simulated time.
//! * [`Timeline`] — a FIFO-served exclusive resource (a flash chip, a channel
//!   bus) that hands out `(start, end)` reservations.
//! * [`Bandwidth`] — a byte-rate resource (SSD DRAM bus, PCIe link) built on
//!   a timeline.
//! * [`Clock`] — cycle/time conversion for a core at a given frequency.
//! * [`stats`] — counters, throughput and geometric-mean helpers used by the
//!   experiment harness.
//!
//! # Example
//!
//! ```
//! use assasin_sim::{Bandwidth, SimDur, SimTime, Timeline};
//!
//! // A flash chip busy for 20us per page read.
//! let mut chip = Timeline::new("chip");
//! let grant = chip.acquire(SimTime::ZERO, SimDur::from_us(20));
//! assert_eq!(grant.end, SimTime::from_us(20));
//!
//! // An 8 GB/s DRAM bus moving one 4 KiB page.
//! let mut dram = Bandwidth::new("dram", 8.0e9);
//! let done = dram.transfer(grant.end, 4096);
//! assert!(done > grant.end);
//! ```

mod bandwidth;
mod clock;
mod link;
mod time;
mod timeline;

pub mod stats;

pub use bandwidth::Bandwidth;
pub use clock::Clock;
pub use link::{HostLink, LaneStats};
pub use time::{SimDur, SimTime};
pub use timeline::{Grant, Timeline};
