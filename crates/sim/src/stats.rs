//! Reporting helpers shared by the experiment harness.

use crate::{SimDur, SimTime};

/// Geometric mean of a set of ratios (the paper reports GeoMean speedups).
///
/// Returns `None` on an empty input or any non-positive value.
///
/// ```
/// use assasin_sim::stats::geomean;
/// let g = geomean(&[2.0, 8.0]).unwrap();
/// assert!((g - 4.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Throughput in bytes/second for `bytes` processed in `elapsed`.
///
/// Returns `None` when no time elapsed: an instantaneous measurement
/// has no defined rate, and reporting it as `0.0` would be
/// indistinguishable from "no bytes moved". Report code serializes the
/// `Option` directly (JSON `null`) or maps it to an explicit sentinel.
pub fn throughput_bps(bytes: u64, elapsed: SimDur) -> Option<f64> {
    if elapsed.is_zero() {
        None
    } else {
        Some(bytes as f64 / elapsed.as_secs_f64())
    }
}

/// Converts bytes/second to GB/s (decimal, as the paper reports).
pub fn bps_to_gbps(bps: f64) -> f64 {
    bps / 1e9
}

/// A labelled tally of simulated cycles, used for the Figure 5 style
/// cycle decomposition (busy vs. stalls by cause).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Cycles retiring instructions.
    pub busy: u64,
    /// Extra cycles waiting on L1 hits beyond the pipelined single cycle.
    pub stall_l1: u64,
    /// Cycles waiting on accesses served by the L2.
    pub stall_l2: u64,
    /// Cycles waiting on accesses served by SSD DRAM.
    pub stall_dram: u64,
    /// Cycles waiting on scratchpad access (multi-cycle scratchpads).
    pub stall_scratchpad: u64,
    /// Cycles waiting for stream data to arrive from flash.
    pub stall_stream: u64,
    /// Cycles waiting for a ping-pong buffer swap.
    pub stall_swap: u64,
}

impl CycleBreakdown {
    /// Total cycles across all buckets.
    pub fn total(&self) -> u64 {
        self.busy
            + self.stall_l1
            + self.stall_l2
            + self.stall_dram
            + self.stall_scratchpad
            + self.stall_stream
            + self.stall_swap
    }

    /// Fraction of total cycles spent in memory-related stalls.
    pub fn memory_stall_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (total - self.busy) as f64 / total as f64
    }

    /// Adds another breakdown into this one (aggregating cores).
    pub fn merge(&mut self, other: &CycleBreakdown) {
        self.busy += other.busy;
        self.stall_l1 += other.stall_l1;
        self.stall_l2 += other.stall_l2;
        self.stall_dram += other.stall_dram;
        self.stall_scratchpad += other.stall_scratchpad;
        self.stall_stream += other.stall_stream;
        self.stall_swap += other.stall_swap;
    }
}

/// Running mean/min/max accumulator for scalar samples.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

/// Utilization of a set of busy intervals against a horizon, as used for
/// the core-utilization plot (Figure 17).
pub fn utilization(busy: SimDur, horizon: SimTime) -> f64 {
    let h = horizon.as_secs_f64();
    if h == 0.0 {
        0.0
    } else {
        (busy.as_secs_f64() / h).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert!((geomean(&[3.0]).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_zero_time_is_undefined_not_zero() {
        // Regression: this used to report 0.0, conflating "no time
        // elapsed" with "no bytes moved".
        assert_eq!(throughput_bps(100, SimDur::ZERO), None);
        assert_eq!(throughput_bps(0, SimDur::ZERO), None);
        // Zero bytes over real time genuinely is zero throughput.
        assert_eq!(throughput_bps(0, SimDur::from_us(1)), Some(0.0));
        let t = throughput_bps(1_000_000_000, SimDur::from_secs_f64(1.0)).unwrap();
        assert!((bps_to_gbps(t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_totals_and_merge() {
        let mut a = CycleBreakdown {
            busy: 10,
            stall_dram: 30,
            ..Default::default()
        };
        let b = CycleBreakdown {
            busy: 5,
            stall_l2: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.total(), 50);
        assert!((a.memory_stall_fraction() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        s.extend([2.0, 4.0, 6.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));
        assert_eq!(Summary::new().mean(), None);
    }

    #[test]
    fn utilization_clamps() {
        assert_eq!(utilization(SimDur::from_us(2), SimTime::from_us(1)), 1.0);
        assert_eq!(utilization(SimDur::ZERO, SimTime::ZERO), 0.0);
    }
}
