//! Cycle/time conversion for a core clock.

use crate::{SimDur, SimTime};

/// A core clock: converts between cycle counts and simulated time.
///
/// The clock period is stored in picoseconds so the 11% period reduction of
/// Section VI-F (1 ns -> 0.89 ns) is representable exactly enough
/// (890 ps).
///
/// ```
/// use assasin_sim::Clock;
/// let clk = Clock::from_freq_ghz(1.0);
/// assert_eq!(clk.cycles_to_dur(1000).as_ps(), 1_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clock {
    period_ps: u64,
}

impl Clock {
    /// A clock with the given period in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `period_ps` is zero.
    pub fn from_period_ps(period_ps: u64) -> Self {
        assert!(period_ps > 0, "clock period must be positive");
        Clock { period_ps }
    }

    /// A clock at the given frequency in GHz (rounded to a whole number of
    /// picoseconds of period).
    pub fn from_freq_ghz(ghz: f64) -> Self {
        assert!(ghz > 0.0 && ghz.is_finite(), "frequency must be positive");
        Clock::from_period_ps((1000.0 / ghz).round() as u64)
    }

    /// Clock period in picoseconds.
    pub fn period_ps(&self) -> u64 {
        self.period_ps
    }

    /// Frequency in Hz.
    pub fn freq_hz(&self) -> f64 {
        1e12 / self.period_ps as f64
    }

    /// Duration of `cycles` clock cycles.
    pub fn cycles_to_dur(&self, cycles: u64) -> SimDur {
        SimDur::from_ps(cycles * self.period_ps)
    }

    /// Instant of cycle `cycle` counted from `start`.
    pub fn cycle_time(&self, start: SimTime, cycle: u64) -> SimTime {
        start + self.cycles_to_dur(cycle)
    }

    /// Number of whole cycles that fit in `dur`, rounding up (a stall of any
    /// fraction of a cycle costs the full cycle on an in-order core).
    pub fn dur_to_cycles_ceil(&self, dur: SimDur) -> u64 {
        dur.as_ps().div_ceil(self.period_ps)
    }
}

impl Default for Clock {
    /// A 1 GHz clock, the paper's core frequency (Table IV).
    fn default() -> Self {
        Clock::from_period_ps(1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_roundtrip() {
        let c = Clock::from_freq_ghz(1.0);
        assert_eq!(c.period_ps(), 1000);
        assert!((c.freq_hz() - 1e9).abs() < 1.0);
    }

    #[test]
    fn adjusted_clock_of_section_vi_f() {
        // 11% shorter period than 1ns.
        let c = Clock::from_period_ps(890);
        assert!(c.freq_hz() > 1.12e9);
    }

    #[test]
    fn ceil_rounds_partial_cycles_up() {
        let c = Clock::default();
        assert_eq!(c.dur_to_cycles_ceil(SimDur::from_ps(1)), 1);
        assert_eq!(c.dur_to_cycles_ceil(SimDur::from_ps(1000)), 1);
        assert_eq!(c.dur_to_cycles_ceil(SimDur::from_ps(1001)), 2);
        assert_eq!(c.dur_to_cycles_ceil(SimDur::ZERO), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = Clock::from_period_ps(0);
    }
}
