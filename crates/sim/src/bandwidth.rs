//! Byte-rate shared resources (DRAM bus, PCIe link).

use crate::{Grant, SimDur, SimTime, Timeline};

/// A shared link with a fixed byte rate, served FIFO.
///
/// This models the SSD DRAM bus and the PCIe host link: every transfer
/// occupies the link for `bytes / rate` seconds, so concurrent demand from
/// several cores (plus the flash-staging traffic on the Baseline
/// architecture) naturally produces the memory-wall queuing the paper
/// describes in Section III.
///
/// ```
/// use assasin_sim::{Bandwidth, SimTime};
/// let mut dram = Bandwidth::new("lpddr5", 8.0e9); // 8 GB/s
/// let t1 = dram.transfer(SimTime::ZERO, 4096);
/// let t2 = dram.transfer(SimTime::ZERO, 4096);
/// assert_eq!(t2.as_ps(), 2 * t1.as_ps()); // second transfer queues
/// ```
#[derive(Debug, Clone)]
pub struct Bandwidth {
    timeline: Timeline,
    bytes_per_sec: f64,
    bytes_moved: u64,
}

impl Bandwidth {
    /// Creates a link with the given capacity in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive and finite.
    pub fn new(name: impl Into<String>, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "bandwidth must be positive and finite"
        );
        Bandwidth {
            timeline: Timeline::new(name),
            bytes_per_sec,
            bytes_moved: 0,
        }
    }

    /// Time the link needs to move `bytes`.
    pub fn service_time(&self, bytes: u64) -> SimDur {
        SimDur::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Reserves the link for a transfer of `bytes` starting no earlier than
    /// `ready`; returns the completion time.
    pub fn transfer(&mut self, ready: SimTime, bytes: u64) -> SimTime {
        self.transfer_grant(ready, bytes).end
    }

    /// Like [`Bandwidth::transfer`] but exposes the full [`Grant`]
    /// (C-INTERMEDIATE), so callers can observe queuing delay.
    pub fn transfer_grant(&mut self, ready: SimTime, bytes: u64) -> Grant {
        let service = self.service_time(bytes);
        self.bytes_moved += bytes;
        self.timeline.acquire(ready, service)
    }

    /// Link capacity in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Total bytes moved over the link.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// When the link next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.timeline.free_at()
    }

    /// Total busy time on the link.
    pub fn busy_time(&self) -> SimDur {
        self.timeline.busy_time()
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.timeline.utilization(horizon)
    }

    /// Achieved throughput in bytes/sec over `[0, horizon]`.
    pub fn achieved_rate(&self, horizon: SimTime) -> f64 {
        let secs = horizon.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.bytes_moved as f64 / secs
        }
    }

    /// Resets byte/busy accounting without changing the schedule.
    pub fn reset_stats(&mut self) {
        self.bytes_moved = 0;
        self.timeline.reset_stats();
    }

    /// Returns the link to idle at t = 0 and clears accounting.
    pub fn reset_time(&mut self) {
        self.bytes_moved = 0;
        self.timeline.reset_time();
    }

    /// Serializes the link schedule, rate and byte accounting.
    pub fn save_state(&self, enc: &mut assasin_snap::Encoder) {
        self.timeline.save_state(enc);
        enc.f64(self.bytes_per_sec);
        enc.u64(self.bytes_moved);
    }

    /// Rebuilds a link from [`Bandwidth::save_state`] bytes.
    ///
    /// # Errors
    ///
    /// Fails on truncated input or a non-positive encoded rate.
    pub fn restore_state(
        dec: &mut assasin_snap::Decoder<'_>,
    ) -> Result<Self, assasin_snap::SnapError> {
        let timeline = Timeline::restore_state(dec)?;
        let bytes_per_sec = dec.f64()?;
        if !(bytes_per_sec > 0.0 && bytes_per_sec.is_finite()) {
            return Err(assasin_snap::SnapError::Malformed(format!(
                "bandwidth rate {bytes_per_sec}"
            )));
        }
        Ok(Bandwidth {
            timeline,
            bytes_per_sec,
            bytes_moved: dec.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_matches_rate() {
        let bw = Bandwidth::new("b", 1.0e9); // 1 GB/s
        assert_eq!(bw.service_time(1000), SimDur::from_us(1));
    }

    #[test]
    fn transfers_accumulate_bytes() {
        let mut bw = Bandwidth::new("b", 1.0e9);
        bw.transfer(SimTime::ZERO, 500);
        bw.transfer(SimTime::ZERO, 500);
        assert_eq!(bw.bytes_moved(), 1000);
        assert_eq!(bw.free_at(), SimTime::from_us(1));
    }

    #[test]
    fn contention_serializes() {
        let mut bw = Bandwidth::new("b", 8.0e9);
        let a = bw.transfer_grant(SimTime::ZERO, 4096);
        let b = bw.transfer_grant(SimTime::ZERO, 4096);
        assert_eq!(b.start, a.end);
        assert!(b.queued > SimDur::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = Bandwidth::new("b", 0.0);
    }
}
