//! Picosecond-resolution simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in picoseconds since simulation start.
///
/// Picoseconds let the simulator express the 0.5 ns streambuffer access and
/// the 0.89 ns adjusted clock period of Section VI-F exactly, while a `u64`
/// still spans ~213 days of simulated time.
///
/// ```
/// use assasin_sim::{SimDur, SimTime};
/// let t = SimTime::from_us(3) + SimDur::from_ns(500);
/// assert_eq!(t.as_ps(), 3_500_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
///
/// Kept distinct from [`SimTime`] so that instants and durations cannot be
/// confused (C-NEWTYPE).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDur(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "unbounded" run limit.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Creates an instant from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }
    /// Creates an instant from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }
    /// Creates an instant from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Picoseconds since simulation start.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Rounds up to the next multiple of `step` (an instant already on a
    /// boundary is unchanged). The event-driven co-simulation uses this to
    /// jump deadlines while staying on the fixed-epoch progression, so
    /// grant ordering is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn round_up_to(self, step: SimDur) -> SimTime {
        SimTime(self.0.div_ceil(step.0) * step.0)
    }

    /// Duration from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(
            self.0
                .checked_sub(earlier.0)
                .expect("`since` called with a later instant"),
        )
    }

    /// Duration from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }
}

impl SimDur {
    /// The zero-length duration.
    pub const ZERO: SimDur = SimDur(0);

    /// Creates a duration from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDur(ps)
    }
    /// Creates a duration from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDur(ns * 1_000)
    }
    /// Creates a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDur(us * 1_000_000)
    }
    /// Creates a duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDur(ms * 1_000_000_000)
    }
    /// Creates a duration from fractional seconds, rounding to picoseconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs >= 0.0 && secs.is_finite(),
            "duration must be finite and non-negative"
        );
        SimDur((secs * 1e12).round() as u64)
    }

    /// Picoseconds in this duration.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Seconds in this duration, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two durations.
    pub fn max(self, other: SimDur) -> SimDur {
        SimDur(self.0.max(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDur> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 + rhs.0)
    }
}

impl AddAssign for SimDur {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 - rhs.0)
    }
}

impl SubAssign for SimDur {
    fn sub_assign(&mut self, rhs: SimDur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    fn mul(self, rhs: u64) -> SimDur {
        SimDur(self.0 * rhs)
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    fn div(self, rhs: u64) -> SimDur {
        SimDur(self.0 / rhs)
    }
}

impl Sum for SimDur {
    fn sum<I: Iterator<Item = SimDur>>(iter: I) -> SimDur {
        iter.fold(SimDur::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ps(self.0))
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ps(self.0))
    }
}

fn fmt_ps(ps: u64) -> String {
    if ps >= 1_000_000_000_000 {
        format!("{:.3}s", ps as f64 * 1e-12)
    } else if ps >= 1_000_000_000 {
        format!("{:.3}ms", ps as f64 * 1e-9)
    } else if ps >= 1_000_000 {
        format!("{:.3}us", ps as f64 * 1e-6)
    } else if ps >= 1_000 {
        format!("{:.3}ns", ps as f64 * 1e-3)
    } else {
        format!("{ps}ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimDur::from_secs_f64(0.5).as_ps(), 500_000_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_us(7);
        let d = SimDur::from_ns(250);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(20);
        assert_eq!(a.saturating_since(b), SimDur::ZERO);
        assert_eq!(b.saturating_since(a), SimDur::from_ns(10));
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn since_panics_when_reversed() {
        let _ = SimTime::from_ns(1).since(SimTime::from_ns(2));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDur::from_ns(500).to_string(), "500.000ns");
        assert_eq!(SimTime::from_us(1500).to_string(), "1.500ms");
        assert_eq!(SimDur::from_ps(3).to_string(), "3ps");
    }

    #[test]
    fn round_up_lands_on_boundaries() {
        let step = SimDur::from_us(10);
        assert_eq!(SimTime::ZERO.round_up_to(step), SimTime::ZERO);
        assert_eq!(SimTime::from_ps(1).round_up_to(step), SimTime::from_us(10));
        assert_eq!(SimTime::from_us(10).round_up_to(step), SimTime::from_us(10));
        assert_eq!(SimTime::from_us(25).round_up_to(step), SimTime::from_us(30));
    }

    #[test]
    fn duration_sum_and_scale() {
        let total: SimDur = [SimDur::from_ns(1), SimDur::from_ns(2)].into_iter().sum();
        assert_eq!(total, SimDur::from_ns(3));
        assert_eq!(SimDur::from_ns(3) * 4, SimDur::from_ns(12));
        assert_eq!(SimDur::from_ns(12) / 4, SimDur::from_ns(3));
    }
}
