//! Shared host-interconnect contention model for multi-device arrays.
//!
//! An N-device array hangs every device's private PCIe lane off one
//! shared root complex (a PCIe switch upstream port, or a CXL host
//! bridge — OpenCXD-shaped topologies). Each device already models its
//! own lane internally; [`HostLink`] models the *shared* stage: every
//! host-bound transfer that cleared its lane must then cross the root,
//! whose bandwidth is provisioned below the sum of the lanes. With one
//! device active the root is invisible; with many devices bursting at
//! once, root serialization is the bottleneck the paper-scale
//! single-device evaluation never sees.
//!
//! The model is deliberately the same [`Bandwidth`]/[`Timeline`]
//! machinery the in-device links use: FIFO earliest-fit service, so
//! charging transfers in a deterministic order yields a deterministic
//! schedule. Array execution merges per-device completions into
//! `(time, device, seq)` order before charging the root — see
//! `assasin-array`.

use crate::{Bandwidth, SimDur, SimTime};

/// Per-device accounting of root-complex crossings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaneStats {
    /// Bytes this device moved through the root.
    pub bytes: u64,
    /// Transfers this device pushed through the root.
    pub transfers: u64,
    /// Time this device's transfers spent queued behind other devices at
    /// the root (its share of the contention stalls).
    pub stalled: SimDur,
}

/// The shared stage of an array host link: one root-complex
/// [`Bandwidth`] plus per-device contention accounting.
#[derive(Debug, Clone)]
pub struct HostLink {
    root: Bandwidth,
    latency: SimDur,
    lanes: Vec<LaneStats>,
}

impl HostLink {
    /// A root complex of `bytes_per_sec` shared by `devices` lanes, with
    /// `latency` added to every transfer's completion.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero or the rate is not strictly positive
    /// and finite (via [`Bandwidth::new`]).
    pub fn new(devices: usize, bytes_per_sec: f64, latency: SimDur) -> Self {
        assert!(devices > 0, "a host link needs at least one lane");
        HostLink {
            root: Bandwidth::new("host-root", bytes_per_sec),
            latency,
            lanes: vec![LaneStats::default(); devices],
        }
    }

    /// Number of lanes (devices) sharing the root.
    pub fn devices(&self) -> usize {
        self.lanes.len()
    }

    /// Root capacity in bytes per second.
    pub fn root_bytes_per_sec(&self) -> f64 {
        self.root.bytes_per_sec()
    }

    /// Charges a transfer of `bytes` from `device`, ready at `ready`
    /// (i.e. already clear of the device's private lane), through the
    /// shared root. Returns the host-visible completion time. Queuing
    /// behind transfers charged earlier is recorded as that device's
    /// contention stall.
    ///
    /// Callers must charge transfers in a deterministic order (the array
    /// engine's merged `(completion, device, seq)` order) — the root is
    /// FIFO, so charge order is schedule order.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn transfer(&mut self, device: usize, ready: SimTime, bytes: u64) -> SimTime {
        let grant = self.root.transfer_grant(ready, bytes);
        let lane = &mut self.lanes[device];
        lane.bytes += bytes;
        lane.transfers += 1;
        lane.stalled += grant.queued;
        grant.end + self.latency
    }

    /// Per-device root-crossing stats.
    pub fn lane_stats(&self) -> &[LaneStats] {
        &self.lanes
    }

    /// Total bytes moved through the root.
    pub fn bytes_moved(&self) -> u64 {
        self.root.bytes_moved()
    }

    /// Total contention stall across all devices.
    pub fn total_stalled(&self) -> SimDur {
        self.lanes
            .iter()
            .fold(SimDur::ZERO, |acc, l| acc + l.stalled)
    }

    /// Root busy time (for utilization roll-ups).
    pub fn busy_time(&self) -> SimDur {
        self.root.busy_time()
    }

    /// Returns the link to idle at t = 0 and clears all accounting — the
    /// boundary between array operations, mirroring `Ssd::quiesce`.
    pub fn reset_time(&mut self) {
        self.root.reset_time();
        for lane in &mut self.lanes {
            *lane = LaneStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> HostLink {
        // 2 GB/s root, zero latency for round numbers.
        HostLink::new(4, 2.0e9, SimDur::ZERO)
    }

    #[test]
    fn single_device_sees_no_contention() {
        let mut l = link();
        let done = l.transfer(0, SimTime::ZERO, 2_000);
        assert_eq!(done, SimTime::from_us(1));
        assert_eq!(l.lane_stats()[0].stalled, SimDur::ZERO);
        assert_eq!(l.total_stalled(), SimDur::ZERO);
    }

    #[test]
    fn concurrent_devices_queue_and_record_stalls() {
        let mut l = link();
        let a = l.transfer(0, SimTime::ZERO, 2_000);
        let b = l.transfer(1, SimTime::ZERO, 2_000);
        // FIFO: the second transfer waits out the first.
        assert_eq!(b, a + SimDur::from_us(1));
        assert_eq!(l.lane_stats()[1].stalled, SimDur::from_us(1));
        assert_eq!(l.lane_stats()[0].stalled, SimDur::ZERO);
        assert_eq!(l.bytes_moved(), 4_000);
    }

    #[test]
    fn latency_adds_to_completion_not_occupancy() {
        let mut l = HostLink::new(2, 2.0e9, SimDur::from_us(3));
        let a = l.transfer(0, SimTime::ZERO, 2_000);
        assert_eq!(a, SimTime::from_us(4)); // 1us service + 3us latency
        let b = l.transfer(1, SimTime::ZERO, 2_000);
        // Occupancy ends at 1us, so the second starts there, not at 4us.
        assert_eq!(b, SimTime::from_us(5));
    }

    #[test]
    fn reset_time_clears_schedule_and_stats() {
        let mut l = link();
        l.transfer(0, SimTime::ZERO, 10_000);
        l.transfer(1, SimTime::ZERO, 10_000);
        l.reset_time();
        assert_eq!(l.bytes_moved(), 0);
        assert_eq!(l.total_stalled(), SimDur::ZERO);
        let again = l.transfer(2, SimTime::ZERO, 2_000);
        assert_eq!(again, SimTime::from_us(1));
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_devices_rejected() {
        let _ = HostLink::new(0, 1.0e9, SimDur::ZERO);
    }
}
