//! Property test pinning [`Timeline`]'s binary-searched earliest-fit
//! placement to the original full-scan formulation.
//!
//! The reference model below replays the pre-optimization algorithm: an
//! earliest-fit scan that walks every booked interval from the oldest.
//! The shipped implementation skips intervals that end before the request
//! is ready (a binary search, since the schedule is sorted); both must
//! hand out identical grants and converge to identical schedules on any
//! request trace, including the out-of-time-order arrivals the bounded
//! epoch co-simulation produces.

use assasin_sim::{SimDur, SimTime, Timeline};
use proptest::collection::vec;
use proptest::prelude::*;

/// The pre-optimization earliest-fit schedule (no prune, so traces are
/// kept short enough that pruning never engages in the real Timeline
/// either — requests stay inside `Timeline::PRUNE_WINDOW`).
#[derive(Default)]
struct RefSchedule {
    intervals: Vec<(u64, u64)>,
}

impl RefSchedule {
    /// Returns `(start, end)` of the granted slot.
    fn acquire(&mut self, ready_ps: u64, need: u64) -> (u64, u64) {
        let mut start = ready_ps;
        let mut insert_at = self.intervals.len();
        for (i, &(s, e)) in self.intervals.iter().enumerate() {
            if start + need <= s {
                insert_at = i;
                break;
            }
            start = start.max(e);
        }
        self.intervals.insert(insert_at, (start, start + need));
        if insert_at + 1 < self.intervals.len()
            && self.intervals[insert_at].1 == self.intervals[insert_at + 1].0
        {
            let (_, e2) = self.intervals.remove(insert_at + 1);
            self.intervals[insert_at].1 = e2;
        }
        if insert_at > 0 && self.intervals[insert_at - 1].1 == self.intervals[insert_at].0 {
            let (_, e2) = self.intervals.remove(insert_at);
            self.intervals[insert_at - 1].1 = e2;
        }
        (start, start + need)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn binary_searched_placement_matches_full_scan(
        // Ready times jump around (out-of-order arrivals) while staying
        // far inside the 10 ms prune window; service lengths include zero.
        reqs in vec((0u64..200_000, 0u64..500), 1..200),
    ) {
        let mut timeline = Timeline::new("t");
        let mut reference = RefSchedule::default();
        for (i, &(ready_ps, need)) in reqs.iter().enumerate() {
            let g = timeline.acquire(SimTime::from_ps(ready_ps), SimDur::from_ps(need));
            let (start, end) = reference.acquire(ready_ps, need);
            prop_assert_eq!(
                g.start, SimTime::from_ps(start),
                "req {}: start mismatch (ready {} need {})", i, ready_ps, need
            );
            prop_assert_eq!(
                g.end, SimTime::from_ps(end),
                "req {}: end mismatch (ready {} need {})", i, ready_ps, need
            );
        }
        let got: Vec<(u64, u64)> = timeline
            .busy_intervals()
            .map(|(s, e)| (s.as_ps(), e.as_ps()))
            .collect();
        prop_assert_eq!(got, reference.intervals);
    }
}
