//! Lane-batched execution: one dispatch loop drives N identical cores.
//!
//! The evaluation harness simulates hundreds of independent (workload,
//! engine, config) sweep points, most of which run the *same* program.
//! Scalar simulation walks the dispatch loop once per core; this module
//! instead steps a batch of up to eight *lanes* (cores) in index-lockstep:
//! the shared predecoded slot is fetched **once** per batch step and then
//! executed against each lane's private architectural state, so every lane
//! dispatches the same slot back to back and the host branch predictor
//! sees a perfectly correlated dispatch history.
//!
//! Whether lockstep beats the scalar loop is workload-dependent: it
//! amortizes fetch/dispatch, but multiplies the resident working set by
//! the batch width (N register files, N streambuffer cursors, N live
//! input pages). With macro-op fusion the scalar dispatch loop is cheap
//! enough that flash-fed streaming kernels measure *slower* under
//! lockstep, so the SSD integration defaults to scalar execution and
//! treats lane width as an opt-in knob (`ASSASIN_LANES`, or
//! `assasin-ssd`'s `set_lane_cap`); see `DESIGN.md` §13 for the numbers.
//! Either way the lane executor is bit-exact against the scalar loop,
//! which the equivalence suite enforces.
//!
//! # Determinism contract
//!
//! Batching never reorders anything a result can observe. The caller only
//! submits lanes whose environment interactions are *commutative across
//! cores* (in the SSD embedding: stream-style kernels whose only
//! environment calls are per-core stream refills — see
//! `assasin-ssd`'s eligibility gate). Under that contract any interleaving
//! of lanes yields byte-identical per-lane results, so the lockstep order,
//! divergence ejection and scalar fallback below are pure performance
//! choices. Per-lane sequencing is exact by construction: each lane runs
//! the same [`Core::exec_slot`] the scalar loop uses, with the same cycle
//! limit semantics.
//!
//! Lanes retire independently: a lane leaves the batch when it halts,
//! wedges, reaches the cycle limit, or diverges from the batch's shared pc
//! (data-dependent branches); divergent lanes finish on the scalar loop.

use crate::{Core, CoreState, StreamEnv};

/// One simulation session's slice of lanes: the cores all talk to the same
/// [`StreamEnv`]. A batch may span several groups (several sweep points),
/// each with its own environment; a lane is addressed as a (group, core)
/// pair.
pub struct LaneGroup<'a> {
    /// The environment serving `cores` (the SSD backend, or a synthetic
    /// test environment).
    pub env: &'a mut dyn StreamEnv,
    /// The cores of this session.
    pub cores: &'a mut [Core],
}

/// Executor width selection: how many lanes one dispatch loop drives.
/// Widths are monomorphized ([`LaneBatch`]), so the hot loop's arrays are
/// fixed-size; `Scalar` is the plain per-core loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyExec {
    /// One core at a time through [`Core::run_cycles`].
    Scalar,
    /// Up to two lanes per batch.
    Lanes2,
    /// Up to four lanes per batch.
    Lanes4,
    /// Up to eight lanes per batch.
    Lanes8,
}

impl AnyExec {
    /// Maximum lanes per batch.
    pub fn width(self) -> usize {
        match self {
            AnyExec::Scalar => 1,
            AnyExec::Lanes2 => 2,
            AnyExec::Lanes4 => 4,
            AnyExec::Lanes8 => 8,
        }
    }

    /// The widest executor whose batch size does not exceed `cap` lanes.
    pub fn for_width(cap: usize) -> AnyExec {
        match cap {
            0 | 1 => AnyExec::Scalar,
            2 | 3 => AnyExec::Lanes2,
            4..=7 => AnyExec::Lanes4,
            _ => AnyExec::Lanes8,
        }
    }
}

/// A lane batch in flight: up to `N` lanes in index-lockstep, with the
/// per-lane activity mask and batched retirement counters in flat arrays.
/// The architectural state (registers, clock, streambuffer) stays inside
/// each lane's [`Core`] — the batch only owns the scheduling state, which
/// is what keeps the executed code path identical to scalar dispatch.
struct LaneBatch<'l, const N: usize> {
    /// (group, core) index of each lane; `lanes[..n]` are in use.
    lanes: &'l [(usize, usize)],
    /// Which lanes are still stepping with the batch.
    active: [bool; N],
    /// Retirements accumulated per lane, flushed once on exit (the same
    /// batching [`Core::run_cycles`] does for `mix.total`/base busy).
    retired: [u64; N],
}

impl<'l, const N: usize> LaneBatch<'l, N> {
    fn new(lanes: &'l [(usize, usize)]) -> Self {
        debug_assert!(lanes.len() <= N);
        let mut active = [false; N];
        for a in active.iter_mut().take(lanes.len()) {
            *a = true;
        }
        LaneBatch {
            lanes,
            active,
            retired: [0; N],
        }
    }

    /// Runs every lane to the cycle limit, halt, or wedge. On entry all
    /// lanes must be running, below `limit`, and at the same pc of the
    /// same predecoded code (the caller batches by code identity and pc).
    fn run(mut self, groups: &mut [LaneGroup<'_>], limit: u64) {
        while let Some(first) = self.active.iter().position(|&a| a) {
            let (g0, c0) = self.lanes[first];
            // A batch down to one lane finishes scalar: per-slot batch
            // bookkeeping would be pure overhead.
            if self.active.iter().filter(|&&a| a).count() == 1 {
                self.active[first] = false;
                let group = &mut groups[g0];
                group.cores[c0].flush_retired(self.retired[first]);
                self.retired[first] = 0;
                group.cores[c0].run_cycles(group.env, limit);
                break;
            }

            let Some(slot) = groups[g0].cores[c0].fetch_slot() else {
                // All active lanes share this out-of-range pc.
                for i in first..self.lanes.len() {
                    if self.active[i] {
                        let (g, c) = self.lanes[i];
                        groups[g].cores[c].wedge_pc_overrun();
                        self.active[i] = false;
                    }
                }
                break;
            };

            // One fetch, N dispatches: each active lane executes the same
            // slot against its own state and environment.
            for i in first..self.lanes.len() {
                if !self.active[i] {
                    continue;
                }
                let (g, c) = self.lanes[i];
                let group = &mut groups[g];
                self.retired[i] += group.cores[c].exec_slot(slot, group.env, limit) as u64;
            }

            // Retire finished lanes; eject pc-divergent lanes to scalar.
            let mut lock_pc = None;
            for i in first..self.lanes.len() {
                if !self.active[i] {
                    continue;
                }
                let (g, c) = self.lanes[i];
                let stopped = {
                    let core = &groups[g].cores[c];
                    *core.state() != CoreState::Running || core.cycles() >= limit
                };
                if stopped {
                    self.active[i] = false;
                    continue;
                }
                let pc = groups[g].cores[c].pc();
                match lock_pc {
                    None => lock_pc = Some(pc),
                    Some(p) if p == pc => {}
                    Some(_) => {
                        // Data-dependent control flow diverged from the
                        // batch. Finishing this lane ahead of the others is
                        // exact under the determinism contract (lane
                        // results are interleaving-independent).
                        self.active[i] = false;
                        let group = &mut groups[g];
                        group.cores[c].flush_retired(self.retired[i]);
                        self.retired[i] = 0;
                        group.cores[c].run_cycles(group.env, limit);
                    }
                }
            }
        }
        for (i, &(g, c)) in self.lanes.iter().enumerate() {
            if self.retired[i] > 0 {
                groups[g].cores[c].flush_retired(self.retired[i]);
            }
        }
    }
}

/// Runs every runnable core in `groups` to `cycle_limit` (or halt/wedge),
/// batching cores that share predecoded code *and* current pc into
/// `exec`-wide lanes; everything else falls back to the scalar loop.
/// Returns the widest batch actually formed (1 = everything ran scalar),
/// which the harness reports as the effective lane width.
///
/// The caller is responsible for the determinism contract (see the module
/// docs): only submit groups whose environment interactions commute across
/// cores. Code identity is checked here (lanes of different programs never
/// share a batch), so grouping mistakes cost performance, not correctness.
pub fn run_lanes(groups: &mut [LaneGroup<'_>], exec: AnyExec, cycle_limit: u64) -> usize {
    // Partition runnable lanes by (code identity, pc): a batch must enter
    // in lockstep on the same program.
    type LanePart = ((*const (), u32), Vec<(usize, usize)>);
    let mut parts: Vec<LanePart> = Vec::new();
    for (g, group) in groups.iter().enumerate() {
        for (c, core) in group.cores.iter().enumerate() {
            if *core.state() == CoreState::Running && core.cycles() < cycle_limit {
                let key = (core.code_ptr(), core.pc());
                match parts.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, lanes)) => lanes.push((g, c)),
                    None => parts.push((key, vec![(g, c)])),
                }
            }
        }
    }

    let width = exec.width();
    let mut max_width = 1;
    for (_, lanes) in parts {
        for chunk in lanes.chunks(width) {
            max_width = max_width.max(chunk.len());
            match chunk.len() {
                0 => {}
                1 => {
                    let (g, c) = chunk[0];
                    let group = &mut groups[g];
                    group.cores[c].run_cycles(group.env, cycle_limit);
                }
                2 => LaneBatch::<2>::new(chunk).run(groups, cycle_limit),
                3 | 4 => LaneBatch::<4>::new(chunk).run(groups, cycle_limit),
                _ => LaneBatch::<8>::new(chunk).run(groups, cycle_limit),
            }
        }
    }
    max_width
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreConfig, SyntheticEnv};
    use assasin_isa::{Assembler, Program, Reg};

    /// Sums the bytes of stream 0 into scratchpad word 0 (halts on stream
    /// exhaustion). No data-dependent branches: lanes stay in lockstep.
    fn sum_program() -> Program {
        let mut asm = Assembler::new();
        let top = asm.label();
        asm.bind(top);
        asm.stream_load(Reg::A0, 0, 1);
        asm.add(Reg::A1, Reg::A1, Reg::A0);
        asm.sw(Reg::A1, Reg::ZERO, 0);
        asm.j(top);
        asm.finish().unwrap()
    }

    /// Counts bytes >= 128 of stream 0 into scratchpad word 0. The branch
    /// depends on the data, so lanes diverge constantly.
    fn filter_program() -> Program {
        let mut asm = Assembler::new();
        let top = asm.label();
        let skip = asm.label();
        asm.bind(top);
        asm.stream_load(Reg::A0, 0, 1);
        asm.li(Reg::T0, 128);
        asm.bltu(Reg::A0, Reg::T0, skip);
        asm.addi(Reg::A1, Reg::A1, 1);
        asm.sw(Reg::A1, Reg::ZERO, 0);
        asm.bind(skip);
        asm.j(top);
        asm.finish().unwrap()
    }

    fn lane_data(lane: usize) -> Vec<u8> {
        // Different content *and* length per lane, so lanes retire at
        // different times.
        (0..(400 + lane * 97))
            .map(|i| ((i * 31 + lane * 7) % 256) as u8)
            .collect()
    }

    /// Runs `n` lanes of `program` scalar and batched and asserts the
    /// per-lane observable state is identical.
    fn assert_batched_matches_scalar(program: &Program, n: usize, exec: AnyExec) {
        let build = |lane: usize| {
            let mut env = SyntheticEnv::new(8, 64);
            env.set_input(0, &lane_data(lane));
            let core = Core::new(0, CoreConfig::assasin_sb(), program.clone(), None);
            (env, core)
        };

        let mut scalar: Vec<(SyntheticEnv, Core)> = (0..n).map(build).collect();
        for (env, core) in scalar.iter_mut() {
            core.run_to_halt(env);
        }

        let mut batched: Vec<(SyntheticEnv, Core)> = (0..n).map(build).collect();
        {
            let mut groups: Vec<LaneGroup<'_>> = batched
                .iter_mut()
                .map(|(env, core)| LaneGroup {
                    env,
                    cores: std::slice::from_mut(core),
                })
                .collect();
            run_lanes(&mut groups, exec, u64::MAX);
        }

        for (lane, ((_, s), (_, b))) in scalar.iter().zip(batched.iter()).enumerate() {
            assert_eq!(s.state(), b.state(), "lane {lane} state");
            assert_eq!(s.cycles(), b.cycles(), "lane {lane} cycles");
            assert_eq!(s.mix(), b.mix(), "lane {lane} mix");
            assert_eq!(s.breakdown(), b.breakdown(), "lane {lane} breakdown");
            assert_eq!(
                s.scratchpad().load(0, 4).unwrap(),
                b.scratchpad().load(0, 4).unwrap(),
                "lane {lane} result"
            );
        }
    }

    #[test]
    fn lockstep_lanes_match_scalar() {
        for n in [2, 3, 4, 8] {
            assert_batched_matches_scalar(&sum_program(), n, AnyExec::for_width(n));
        }
    }

    #[test]
    fn divergent_lanes_match_scalar() {
        for n in [2, 4, 8] {
            assert_batched_matches_scalar(&filter_program(), n, AnyExec::for_width(n));
        }
    }

    #[test]
    fn epoch_sliced_batching_matches_scalar() {
        // Drive the batch in small cycle-limit slices (as the SSD's epoch
        // loop would) and compare against uninterrupted scalar runs.
        let program = sum_program();
        let n = 4;
        let build = |lane: usize| {
            let mut env = SyntheticEnv::new(8, 64);
            env.set_input(0, &lane_data(lane));
            let core = Core::new(0, CoreConfig::assasin_sb(), program.clone(), None);
            (env, core)
        };

        let mut scalar: Vec<(SyntheticEnv, Core)> = (0..n).map(build).collect();
        for (env, core) in scalar.iter_mut() {
            core.run_to_halt(env);
        }

        let mut batched: Vec<(SyntheticEnv, Core)> = (0..n).map(build).collect();
        let mut limit = 0u64;
        while batched
            .iter()
            .any(|(_, c)| *c.state() == CoreState::Running)
        {
            limit += 37; // deliberately not a multiple of anything
            let mut groups: Vec<LaneGroup<'_>> = batched
                .iter_mut()
                .map(|(env, core)| LaneGroup {
                    env,
                    cores: std::slice::from_mut(core),
                })
                .collect();
            run_lanes(&mut groups, AnyExec::Lanes4, limit);
        }

        for (lane, ((_, s), (_, b))) in scalar.iter().zip(batched.iter()).enumerate() {
            assert_eq!(s.cycles(), b.cycles(), "lane {lane} cycles");
            assert_eq!(s.mix(), b.mix(), "lane {lane} mix");
            assert_eq!(
                s.scratchpad().load(0, 4).unwrap(),
                b.scratchpad().load(0, 4).unwrap(),
                "lane {lane} result"
            );
        }
    }

    #[test]
    fn multi_core_groups_batch_across_groups() {
        // Four single-core groups sharing one program: the lanes must form
        // one 4-wide batch spanning all four environments.
        let program = sum_program();
        let mut scalar: Vec<(SyntheticEnv, Core)> = (0..4)
            .map(|lane| {
                let mut env = SyntheticEnv::new(8, 64);
                env.set_input(0, &lane_data(lane));
                (
                    env,
                    Core::new(0, CoreConfig::assasin_sb(), program.clone(), None),
                )
            })
            .collect();
        for (env, core) in scalar.iter_mut() {
            core.run_to_halt(env);
        }

        let mut batched: Vec<(SyntheticEnv, Core)> = (0..4)
            .map(|lane| {
                let mut env = SyntheticEnv::new(8, 64);
                env.set_input(0, &lane_data(lane));
                (
                    env,
                    Core::new(0, CoreConfig::assasin_sb(), program.clone(), None),
                )
            })
            .collect();
        {
            let mut groups: Vec<LaneGroup<'_>> = batched
                .iter_mut()
                .map(|(env, core)| LaneGroup {
                    env,
                    cores: std::slice::from_mut(core),
                })
                .collect();
            let used = run_lanes(&mut groups, AnyExec::Lanes8, u64::MAX);
            assert_eq!(used, 4, "all four lanes should form one batch");
        }
        for (lane, ((_, s), (_, b))) in scalar.iter().zip(batched.iter()).enumerate() {
            assert_eq!(s.cycles(), b.cycles(), "lane {lane} cycles");
        }
    }

    #[test]
    fn different_programs_never_share_a_batch() {
        let sum = sum_program();
        let filt = filter_program();
        let mut a_env = SyntheticEnv::new(8, 64);
        a_env.set_input(0, &lane_data(0));
        let mut a = Core::new(0, CoreConfig::assasin_sb(), sum, None);
        let mut b_env = SyntheticEnv::new(8, 64);
        b_env.set_input(0, &lane_data(1));
        let mut b = Core::new(0, CoreConfig::assasin_sb(), filt, None);
        let mut groups = [
            LaneGroup {
                env: &mut a_env,
                cores: std::slice::from_mut(&mut a),
            },
            LaneGroup {
                env: &mut b_env,
                cores: std::slice::from_mut(&mut b),
            },
        ];
        let used = run_lanes(&mut groups, AnyExec::Lanes8, u64::MAX);
        assert_eq!(used, 1, "different code must run scalar");
        assert_eq!(a.state(), &CoreState::Halted);
        assert_eq!(b.state(), &CoreState::Halted);
    }

    #[test]
    fn any_exec_width_mapping() {
        assert_eq!(AnyExec::for_width(0), AnyExec::Scalar);
        assert_eq!(AnyExec::for_width(1), AnyExec::Scalar);
        assert_eq!(AnyExec::for_width(2), AnyExec::Lanes2);
        assert_eq!(AnyExec::for_width(3), AnyExec::Lanes2);
        assert_eq!(AnyExec::for_width(4), AnyExec::Lanes4);
        assert_eq!(AnyExec::for_width(7), AnyExec::Lanes4);
        assert_eq!(AnyExec::for_width(8), AnyExec::Lanes8);
        assert_eq!(AnyExec::for_width(64), AnyExec::Lanes8);
        assert_eq!(AnyExec::Scalar.width(), 1);
        assert_eq!(AnyExec::Lanes8.width(), 8);
    }
}
