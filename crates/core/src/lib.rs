//! The ASSASIN core: a cycle-level in-order scalar core model.
//!
//! This crate replaces Gem5 in the paper's methodology. A [`Core`] executes
//! [`assasin_isa`] programs *functionally* (real register values, real
//! bytes) while charging cycle-accurate-in-structure timing:
//!
//! * one instruction per cycle base rate (in-order scalar, ibex-class);
//! * multi-cycle multiply/divide and taken-branch penalties;
//! * blocking loads through whichever memory structure the configuration
//!   provides — cache hierarchy ([`assasin_mem::MemHierarchy`]),
//!   scratchpad, ping-pong staging buffers, or the streambuffer;
//! * stall cycles attributed by cause, producing the Figure 5 cycle
//!   decomposition.
//!
//! The six Table IV configurations are constructed by [`CoreConfig`]:
//! `Baseline`, `Prefetch`, `AssasinSp`, `AssasinSb`, `AssasinSb$` and the
//! analytical [`UdpLane`] comparator.
//!
//! A core does not know where stream data comes from: the embedding SSD
//! (or a test harness) implements [`StreamEnv`] to refill input streams,
//! drain output pages, and supply ping-pong banks — mirroring the paper's
//! firmware/core split (Figure 10), where ASSASIN cores "only process
//! streams, without the need of knowing any flash array data layout".

mod config;
mod cpu;
mod env;
mod lanes;
mod regions;
mod udp;

pub use config::{CoreConfig, EngineKind};
pub use cpu::{Core, CoreState, InstrMix, RunOutcome};
pub use env::{NullEnv, StreamEnv, SyntheticEnv};
pub use lanes::{run_lanes, AnyExec, LaneGroup};
pub use regions::{layout, DramWindow, PingPong};
pub use udp::{KernelProfile, UdpLane};
