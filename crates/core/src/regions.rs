//! Core address-space layout and the backing stores of each region.

use assasin_sim::SimTime;
use bytes::Bytes;

/// The core's address map.
pub mod layout {
    /// Function-state scratchpad base.
    pub const SCRATCHPAD_BASE: u64 = 0x0000_0000;
    /// DRAM-backed (cached) region base — staged input/output for
    /// Baseline/Prefetch, spill space for AssasinSb$.
    pub const DRAM_BASE: u64 = 0x1000_0000;
    /// AssasinSp input staging bank window base.
    pub const STAGING_IN_BASE: u64 = 0x2000_0000;
    /// AssasinSp output staging bank window base.
    pub const STAGING_OUT_BASE: u64 = 0x2800_0000;
}

/// A window of SSD DRAM visible to a core (Baseline/Prefetch data path,
/// Figure 4). Functional bytes plus per-page staging availability: the
/// firmware stages flash pages into DRAM over time, and a read of a page
/// that has not arrived yet must wait.
#[derive(Debug, Clone)]
pub struct DramWindow {
    data: Vec<u8>,
    page_bytes: u32,
    avail: Vec<SimTime>,
}

impl DramWindow {
    /// Creates a zeroed window of `size` bytes with `page_bytes` staging
    /// granularity; all pages immediately available.
    pub fn new(size: usize, page_bytes: u32) -> Self {
        let pages = size.div_ceil(page_bytes as usize);
        DramWindow {
            data: vec![0; size],
            page_bytes,
            avail: vec![SimTime::ZERO; pages],
        }
    }

    /// Window size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Stages `src` at `offset`, marking the covered pages available at
    /// `at`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the window.
    pub fn stage(&mut self, offset: u64, src: &[u8], at: SimTime) {
        let start = offset as usize;
        let end = start + src.len();
        assert!(end <= self.data.len(), "staging beyond window");
        self.data[start..end].copy_from_slice(src);
        let first = start / self.page_bytes as usize;
        let last = (end.saturating_sub(1)) / self.page_bytes as usize;
        for p in first..=last {
            self.avail[p] = self.avail[p].max(at);
        }
    }

    /// When the page containing `offset` becomes readable.
    pub fn avail_at(&self, offset: u64) -> SimTime {
        let p = (offset / self.page_bytes as u64) as usize;
        self.avail.get(p).copied().unwrap_or(SimTime::ZERO)
    }

    /// Loads `width` (1, 2 or 4) bytes little-endian.
    ///
    /// # Panics
    ///
    /// Panics on out-of-window access (an SSD configuration bug, not a
    /// recoverable program condition).
    pub fn load(&self, offset: u64, width: u32) -> u32 {
        let start = offset as usize;
        let mut buf = [0u8; 4];
        buf[..width as usize].copy_from_slice(&self.data[start..start + width as usize]);
        u32::from_le_bytes(buf)
    }

    /// Stores the low `width` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics on out-of-window access.
    pub fn store(&mut self, offset: u64, width: u32, value: u32) {
        let start = offset as usize;
        self.data[start..start + width as usize]
            .copy_from_slice(&value.to_le_bytes()[..width as usize]);
    }

    /// Reads back a byte range (result extraction).
    pub fn bytes(&self, offset: u64, len: usize) -> &[u8] {
        &self.data[offset as usize..offset as usize + len]
    }

    /// True if `offset..offset+width` fits the window.
    pub fn contains(&self, offset: u64, width: u32) -> bool {
        offset + width as u64 <= self.data.len() as u64
    }

    /// Serializes the window bytes and per-page staging availability.
    pub fn save_state(&self, enc: &mut assasin_snap::Encoder) {
        enc.bytes(&self.data);
        enc.u32(self.page_bytes);
        enc.len_of(self.avail.len());
        for t in &self.avail {
            enc.u64(t.as_ps());
        }
    }

    /// Rebuilds a window from [`DramWindow::save_state`] bytes.
    ///
    /// # Errors
    ///
    /// Fails on truncation, a zero staging granularity, or a page count
    /// inconsistent with the window size.
    pub fn restore_state(
        dec: &mut assasin_snap::Decoder<'_>,
    ) -> Result<Self, assasin_snap::SnapError> {
        let data = dec.bytes()?.to_vec();
        let page_bytes = dec.u32()?;
        if page_bytes == 0 {
            return Err(assasin_snap::SnapError::Malformed(
                "zero window staging granularity".into(),
            ));
        }
        let n = dec.len_of()?;
        if n != data.len().div_ceil(page_bytes as usize) {
            return Err(assasin_snap::SnapError::Malformed(
                "window page count inconsistent with size".into(),
            ));
        }
        let mut avail = Vec::with_capacity(n);
        for _ in 0..n {
            avail.push(SimTime::from_ps(dec.u64()?));
        }
        Ok(DramWindow {
            data,
            page_bytes,
            avail,
        })
    }
}

/// AssasinSp ping-pong staging state for one direction pair: the core works
/// on the current input bank while the firmware fills the next one from
/// flash, and symmetric double-buffering on the output side.
#[derive(Debug, Clone)]
pub struct PingPong {
    bank_bytes: u32,
    /// Input bank currently visible to the core.
    in_bank: Vec<u8>,
    in_len: usize,
    in_exhausted: bool,
    /// Output bank being written by the core.
    out_bank: Vec<u8>,
    out_high_water: usize,
    /// Completion time of the previous output-bank drain (double buffer:
    /// one drain may be outstanding).
    out_drain_done: SimTime,
}

impl PingPong {
    /// Creates empty staging with `bank_bytes` per bank.
    pub fn new(bank_bytes: u32) -> Self {
        PingPong {
            bank_bytes,
            in_bank: Vec::new(),
            in_len: 0,
            in_exhausted: false,
            out_bank: vec![0; bank_bytes as usize],
            out_high_water: 0,
            out_drain_done: SimTime::ZERO,
        }
    }

    /// Bank capacity in bytes.
    pub fn bank_bytes(&self) -> u32 {
        self.bank_bytes
    }

    /// Installs the next input bank (after a `BufSwap`).
    pub fn install_input(&mut self, data: Bytes) {
        assert!(data.len() <= self.bank_bytes as usize, "bank overflow");
        self.in_len = data.len();
        self.in_bank.clear();
        self.in_bank.extend_from_slice(&data);
    }

    /// Marks the input as exhausted (no more banks).
    pub fn set_exhausted(&mut self) {
        self.in_exhausted = true;
        self.in_len = 0;
    }

    /// True once the input side has no more banks.
    pub fn exhausted(&self) -> bool {
        self.in_exhausted
    }

    /// Valid bytes in the current input bank (the `CSR_IN_BANK_LEN` value).
    pub fn in_len(&self) -> usize {
        self.in_len
    }

    /// Loads from the current input bank.
    ///
    /// # Panics
    ///
    /// Panics past the bank's valid length (kernels must honor the length
    /// CSR).
    pub fn load_in(&self, offset: u64, width: u32) -> u32 {
        let start = offset as usize;
        assert!(
            start + width as usize <= self.in_len,
            "read past input bank length"
        );
        let mut buf = [0u8; 4];
        buf[..width as usize].copy_from_slice(&self.in_bank[start..start + width as usize]);
        u32::from_le_bytes(buf)
    }

    /// Stores into the output bank.
    ///
    /// # Panics
    ///
    /// Panics past the bank capacity.
    pub fn store_out(&mut self, offset: u64, width: u32, value: u32) {
        let start = offset as usize;
        assert!(
            start + width as usize <= self.out_bank.len(),
            "write past output bank"
        );
        self.out_bank[start..start + width as usize]
            .copy_from_slice(&value.to_le_bytes()[..width as usize]);
        self.out_high_water = self.out_high_water.max(start + width as usize);
    }

    /// Takes the filled portion of the output bank for draining, resetting
    /// the high-water mark.
    pub fn take_output(&mut self) -> Bytes {
        let filled = self.out_high_water;
        self.out_high_water = 0;
        Bytes::copy_from_slice(&self.out_bank[..filled])
    }

    /// Records when the outstanding output drain completes.
    pub fn set_drain_done(&mut self, t: SimTime) {
        self.out_drain_done = t;
    }

    /// When the previous output drain completes (swap stalls until then).
    pub fn drain_done(&self) -> SimTime {
        self.out_drain_done
    }

    /// Serializes both staging banks and the drain bookkeeping.
    pub fn save_state(&self, enc: &mut assasin_snap::Encoder) {
        enc.u32(self.bank_bytes);
        enc.bytes(&self.in_bank);
        enc.len_of(self.in_len);
        enc.bool(self.in_exhausted);
        enc.bytes(&self.out_bank);
        enc.len_of(self.out_high_water);
        enc.u64(self.out_drain_done.as_ps());
    }

    /// Rebuilds staging state from [`PingPong::save_state`] bytes.
    ///
    /// # Errors
    ///
    /// Fails on truncation or internally inconsistent bank lengths.
    pub fn restore_state(
        dec: &mut assasin_snap::Decoder<'_>,
    ) -> Result<Self, assasin_snap::SnapError> {
        let bank_bytes = dec.u32()?;
        let in_bank = dec.bytes()?.to_vec();
        let in_len = dec.len_of()?;
        let in_exhausted = dec.bool()?;
        let out_bank = dec.bytes()?.to_vec();
        let out_high_water = dec.len_of()?;
        let out_drain_done = SimTime::from_ps(dec.u64()?);
        if in_bank.len() > bank_bytes as usize
            || in_len > in_bank.len()
            || out_bank.len() != bank_bytes as usize
            || out_high_water > out_bank.len()
        {
            return Err(assasin_snap::SnapError::Malformed(
                "staging bank lengths inconsistent".into(),
            ));
        }
        Ok(PingPong {
            bank_bytes,
            in_bank,
            in_len,
            in_exhausted,
            out_bank,
            out_high_water,
            out_drain_done,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_staging_and_availability() {
        let mut w = DramWindow::new(8192, 4096);
        assert_eq!(w.avail_at(0), SimTime::ZERO);
        w.stage(4096, &[7; 4096], SimTime::from_us(3));
        assert_eq!(w.avail_at(5000), SimTime::from_us(3));
        assert_eq!(w.load(4096, 4), 0x0707_0707);
    }

    #[test]
    fn window_load_store_roundtrip() {
        let mut w = DramWindow::new(64, 64);
        w.store(8, 4, 0xDEAD_BEEF);
        assert_eq!(w.load(8, 4), 0xDEAD_BEEF);
        assert_eq!(w.load(8, 2), 0xBEEF);
        assert_eq!(w.bytes(8, 2), &[0xEF, 0xBE]);
        assert!(w.contains(60, 4));
        assert!(!w.contains(61, 4));
    }

    #[test]
    #[should_panic(expected = "beyond window")]
    fn staging_overflow_panics() {
        let mut w = DramWindow::new(64, 64);
        w.stage(32, &[0; 64], SimTime::ZERO);
    }

    #[test]
    fn pingpong_input_flow() {
        let mut pp = PingPong::new(16);
        pp.install_input(Bytes::from_static(&[1, 2, 3, 4]));
        assert_eq!(pp.in_len(), 4);
        assert_eq!(pp.load_in(0, 4), u32::from_le_bytes([1, 2, 3, 4]));
        pp.set_exhausted();
        assert!(pp.exhausted());
        assert_eq!(pp.in_len(), 0);
    }

    #[test]
    fn pingpong_output_high_water() {
        let mut pp = PingPong::new(16);
        pp.store_out(0, 4, 0x04030201);
        pp.store_out(4, 1, 0xAA);
        let out = pp.take_output();
        assert_eq!(&out[..], &[1, 2, 3, 4, 0xAA]);
        // High-water resets after take.
        pp.store_out(0, 1, 9);
        assert_eq!(&pp.take_output()[..], &[9]);
    }

    #[test]
    #[should_panic(expected = "past input bank length")]
    fn reading_past_bank_length_panics() {
        let mut pp = PingPong::new(16);
        pp.install_input(Bytes::from_static(&[1, 2]));
        let _ = pp.load_in(1, 2);
    }
}
