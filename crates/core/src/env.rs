//! The core's environment: who feeds streams and drains output.
//!
//! The paper separates control plane (firmware) from data plane (ASSASIN
//! cores): firmware constructs streams from pages at the LPAs of a
//! computational-storage request and keeps streambuffers fed (Figure 10).
//! [`StreamEnv`] is that boundary. The real implementation lives in
//! `assasin-ssd`; [`SyntheticEnv`] supplies in-memory data at a configurable
//! rate for unit tests and kernel verification.

use assasin_mem::StreamBuffer;
use assasin_sim::{SimDur, SimTime};
use bytes::Bytes;
use std::collections::VecDeque;

/// Services a core's stream demands. `core_id` identifies the calling core
/// when one environment serves several.
pub trait StreamEnv {
    /// Tops up input stream `sid` (called when ring slots free or the core
    /// would block). Implementations push pages with their arrival times
    /// and must [`close`](StreamBuffer::close) the stream once no pages
    /// remain to schedule.
    fn refill_stream(&mut self, core_id: usize, sid: u32, now: SimTime, sbuf: &mut StreamBuffer);

    /// Accepts a completed output page for draining (to flash, DRAM or the
    /// host). Returns the drain completion time, which holds the ring slot
    /// busy.
    fn drain_page(&mut self, core_id: usize, sid: u32, page: Bytes, now: SimTime) -> SimTime;

    /// Supplies the next ping-pong input bank (AssasinSp), or `None` when
    /// the input is exhausted. The returned time is when the bank finishes
    /// filling from flash.
    fn next_input_bank(&mut self, core_id: usize, now: SimTime) -> Option<(Bytes, SimTime)>;

    /// Accepts a ping-pong output bank for draining; returns completion.
    fn drain_bank(&mut self, core_id: usize, data: Bytes, now: SimTime) -> SimTime;
}

/// An environment with no data at all: every stream is immediately
/// exhausted. For pure-compute programs.
#[derive(Debug, Default)]
pub struct NullEnv;

impl StreamEnv for NullEnv {
    fn refill_stream(&mut self, _core: usize, sid: u32, _now: SimTime, sbuf: &mut StreamBuffer) {
        let _ = sbuf.close(sid);
    }
    fn drain_page(&mut self, _core: usize, _sid: u32, _page: Bytes, now: SimTime) -> SimTime {
        now
    }
    fn next_input_bank(&mut self, _core: usize, _now: SimTime) -> Option<(Bytes, SimTime)> {
        None
    }
    fn drain_bank(&mut self, _core: usize, _data: Bytes, now: SimTime) -> SimTime {
        now
    }
}

/// A test environment feeding canned data at a configurable byte rate
/// (emulating a flash channel) and collecting all output.
#[derive(Debug)]
pub struct SyntheticEnv {
    page_bytes: usize,
    inputs: Vec<VecDeque<Bytes>>,
    outputs: Vec<Vec<u8>>,
    banks: VecDeque<Bytes>,
    bank_outputs: Vec<u8>,
    /// None = data is instantly available.
    rate: Option<f64>,
    /// Per-input-stream delivery cursor (when the modeled channel frees).
    next_free: Vec<SimTime>,
}

impl SyntheticEnv {
    /// Creates an environment with `streams` input/output streams and the
    /// given staging page size.
    pub fn new(streams: u32, page_bytes: usize) -> Self {
        SyntheticEnv {
            page_bytes,
            inputs: (0..streams).map(|_| VecDeque::new()).collect(),
            outputs: (0..streams).map(|_| Vec::new()).collect(),
            banks: VecDeque::new(),
            bank_outputs: Vec::new(),
            rate: None,
            next_free: vec![SimTime::ZERO; streams as usize],
        }
    }

    /// Queues `data` as the full content of input stream `sid`, split into
    /// pages.
    pub fn set_input(&mut self, sid: u32, data: &[u8]) {
        let q = &mut self.inputs[sid as usize];
        q.clear();
        for chunk in data.chunks(self.page_bytes) {
            q.push_back(Bytes::copy_from_slice(chunk));
        }
    }

    /// Queues `data` as ping-pong input banks of `bank_bytes` each.
    pub fn set_banks(&mut self, data: &[u8], bank_bytes: usize) {
        self.banks = data
            .chunks(bank_bytes)
            .map(Bytes::copy_from_slice)
            .collect();
    }

    /// Limits delivery to `bytes_per_sec` (None = instantaneous).
    pub fn set_rate(&mut self, bytes_per_sec: Option<f64>) {
        self.rate = bytes_per_sec;
    }

    /// Everything written to output stream `sid` so far.
    pub fn output(&self, sid: u32) -> &[u8] {
        &self.outputs[sid as usize]
    }

    /// Everything drained from ping-pong output banks so far.
    pub fn bank_output(&self) -> &[u8] {
        &self.bank_outputs
    }

    fn delivery_time(&mut self, sid: usize, bytes: usize, now: SimTime) -> SimTime {
        match self.rate {
            None => now,
            Some(rate) => {
                let service = SimDur::from_secs_f64(bytes as f64 / rate);
                let start = now.max(self.next_free[sid]);
                let done = start + service;
                self.next_free[sid] = done;
                done
            }
        }
    }
}

impl StreamEnv for SyntheticEnv {
    fn refill_stream(&mut self, _core: usize, sid: u32, now: SimTime, sbuf: &mut StreamBuffer) {
        while sbuf.free_slots(sid).unwrap_or(0) > 0 {
            let Some(page) = self.inputs[sid as usize].pop_front() else {
                let _ = sbuf.close(sid);
                return;
            };
            let avail = self.delivery_time(sid as usize, page.len(), now);
            sbuf.push_page(sid, page, avail).expect("slot checked");
        }
        if self.inputs[sid as usize].is_empty() {
            let _ = sbuf.close(sid);
        }
    }

    fn drain_page(&mut self, _core: usize, sid: u32, page: Bytes, now: SimTime) -> SimTime {
        self.outputs[sid as usize].extend_from_slice(&page);
        match self.rate {
            None => now,
            Some(rate) => now + SimDur::from_secs_f64(page.len() as f64 / rate),
        }
    }

    fn next_input_bank(&mut self, _core: usize, now: SimTime) -> Option<(Bytes, SimTime)> {
        let bank = self.banks.pop_front()?;
        let ready = self.delivery_time(0, bank.len(), now);
        Some((bank, ready))
    }

    fn drain_bank(&mut self, _core: usize, data: Bytes, now: SimTime) -> SimTime {
        self.bank_outputs.extend_from_slice(&data);
        match self.rate {
            None => now,
            Some(rate) => now + SimDur::from_secs_f64(data.len() as f64 / rate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use assasin_mem::{ReadOutcome, StreamBufferConfig};

    #[test]
    fn synthetic_env_feeds_and_closes() {
        let mut env = SyntheticEnv::new(2, 4);
        env.set_input(0, &[1, 2, 3, 4, 5, 6]);
        let mut sb = StreamBuffer::new(StreamBufferConfig {
            streams: 2,
            pages_per_stream: 2,
            page_bytes: 4,
        });
        env.refill_stream(0, 0, SimTime::ZERO, &mut sb);
        assert_eq!(sb.in_bytes_available(0), 6);
        // Consume everything.
        for _ in 0..6 {
            match sb.read(0, 1, SimTime::ZERO).unwrap() {
                ReadOutcome::Data { .. } => {}
                o => panic!("unexpected {o:?}"),
            }
        }
        env.refill_stream(0, 0, SimTime::ZERO, &mut sb);
        assert_eq!(
            sb.read(0, 1, SimTime::ZERO).unwrap(),
            ReadOutcome::Exhausted
        );
    }

    #[test]
    fn rate_limits_arrivals() {
        let mut env = SyntheticEnv::new(1, 4);
        env.set_input(0, &[0; 8]);
        env.set_rate(Some(4.0e9)); // 4 GB/s -> 1ns per page of 4B
        let mut sb = StreamBuffer::new(StreamBufferConfig {
            streams: 1,
            pages_per_stream: 2,
            page_bytes: 4,
        });
        env.refill_stream(0, 0, SimTime::ZERO, &mut sb);
        match sb.read(0, 4, SimTime::ZERO).unwrap() {
            ReadOutcome::Data { ready, .. } => assert_eq!(ready, SimTime::from_ns(1)),
            o => panic!("unexpected {o:?}"),
        }
        match sb.read(0, 4, SimTime::ZERO).unwrap() {
            ReadOutcome::Data { ready, .. } => assert_eq!(ready, SimTime::from_ns(2)),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn null_env_exhausts_immediately() {
        let mut env = NullEnv;
        let mut sb = StreamBuffer::new(StreamBufferConfig::default());
        env.refill_stream(0, 0, SimTime::ZERO, &mut sb);
        assert!(sb.is_exhausted(0));
    }

    #[test]
    fn banks_round_trip() {
        let mut env = SyntheticEnv::new(1, 4);
        env.set_banks(&[1, 2, 3, 4, 5], 4);
        let (b1, _) = env.next_input_bank(0, SimTime::ZERO).unwrap();
        assert_eq!(&b1[..], &[1, 2, 3, 4]);
        let (b2, _) = env.next_input_bank(0, SimTime::ZERO).unwrap();
        assert_eq!(&b2[..], &[5]);
        assert!(env.next_input_bank(0, SimTime::ZERO).is_none());
        env.drain_bank(0, Bytes::from_static(&[9]), SimTime::ZERO);
        assert_eq!(env.bank_output(), &[9]);
    }
}
