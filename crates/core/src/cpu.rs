//! The cycle-level in-order core interpreter.

use crate::regions::{layout, DramWindow, PingPong};
use crate::{CoreConfig, EngineKind, StreamEnv};
use assasin_isa::{csr, AluOp, BranchCond, Instr, Program};
use assasin_mem::{
    AccessKind, MemHierarchy, ReadOutcome, Scratchpad, ServedBy, SharedDram, StreamBuffer,
};
use assasin_sim::stats::CycleBreakdown;
use assasin_sim::SimTime;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Dynamic instruction mix, used for reporting and to parameterize the UDP
/// analytical model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrMix {
    /// Instructions retired.
    pub total: u64,
    /// Simple ALU operations.
    pub alu: u64,
    /// Multiply/divide operations.
    pub muldiv: u64,
    /// Memory loads (cache/scratchpad/staging).
    pub loads: u64,
    /// Memory stores.
    pub stores: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Conditional branches taken.
    pub taken: u64,
    /// Unconditional jumps.
    pub jumps: u64,
    /// Stream loads.
    pub stream_loads: u64,
    /// Stream stores.
    pub stream_stores: u64,
}

/// Execution state of a core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreState {
    /// Executing instructions.
    Running,
    /// Stopped: explicit `halt`, or a `StreamLoad` on an exhausted stream
    /// (the paper's completion convention, after which firmware resets the
    /// core).
    Halted,
    /// An unrecoverable model error (bad address, starved stream): a bug in
    /// the embedding, surfaced loudly.
    Wedged(String),
}

/// Why [`Core::run`] returned: the information an event-driven scheduler
/// needs to pick the next deadline without polling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The core halted (explicit `halt`, or exhausted input stream).
    Halted,
    /// The core hit an unrecoverable model error; the message is in
    /// [`Core::state`].
    Wedged,
    /// The deadline was reached mid-execution. The core cannot retire its
    /// next instruction before the contained time (the boundary of the
    /// first cycle past the deadline), so any deadline below it is a no-op.
    BlockedUntil(SimTime),
}

/// A single-cycle ALU micro-op in fused form: `rd = op(rs1, src)` where
/// `src` is either a register index or a pre-resolved immediate. `Lui`
/// lowers to `add rd, x0, imm` (x0 is hardwired zero, so the result is the
/// pre-shifted immediate) — one shape covers all three simple ALU forms.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AluUop {
    op: AluOp,
    rd: u8,
    rs1: u8,
    /// `src` is an immediate (else a register index).
    imm: bool,
    src: u32,
}

/// One predecoded instruction: register fields resolved to raw indices,
/// immediates pre-shifted/cast to their execution form, and multi-cycle
/// ALU stalls baked in at decode, so the dispatch loop does no per-step
/// field conversion beyond a single bounds check on the slot fetch.
///
/// The pair variants (`Alu2`, `AluBranch`, `AluJal`, `SlAlu`, `SlBranch`,
/// `Sl2`, `BrBr`, `LdAlu`, `LdBranch`) are macro-op fusions
/// produced by [`fuse`]: a fused slot sits at the *first* instruction's
/// index and executes both halves in one dispatch, while the second
/// instruction keeps its original slot at its own index — so any branch or
/// `jalr` landing between the pair executes exactly the unfused tail.
/// Fusion is timing-transparent: each half charges its own base cycle, and
/// the pair re-checks the run deadline between halves (see
/// [`Core::exec_slot`]), so epoch-sliced execution retires the same
/// instruction at the same cycle as unfused code.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Slot {
    /// Single-cycle register-register ALU operation.
    Alu {
        op: AluOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    /// Multi-cycle mul/div with the extra stall cycles pre-resolved from
    /// [`CoreConfig::mul_cycles`]/[`CoreConfig::div_cycles`].
    MulDiv {
        op: AluOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
        stall: u64,
    },
    AluImm {
        op: AluOp,
        rd: u8,
        rs1: u8,
        imm: u32,
    },
    /// `Lui` with the `imm << 12` shift already applied.
    Lui {
        rd: u8,
        imm: u32,
    },
    Load {
        width: u8,
        signed: bool,
        rd: u8,
        base: u8,
        offset: u32,
    },
    Store {
        width: u8,
        rs: u8,
        base: u8,
        offset: u32,
    },
    Branch {
        cond: BranchCond,
        rs1: u8,
        rs2: u8,
        target: u32,
    },
    Jal {
        rd: u8,
        target: u32,
    },
    Jalr {
        rd: u8,
        base: u8,
        offset: u32,
    },
    Halt,
    StreamLoad {
        rd: u8,
        sid: u8,
        width: u8,
    },
    StreamStore {
        sid: u8,
        width: u8,
        rs: u8,
    },
    StreamAvail {
        rd: u8,
        sid: u8,
    },
    StreamEos {
        rd: u8,
        sid: u8,
    },
    BufSwap {
        bank: u8,
    },
    CsrR {
        rd: u8,
        csr: u16,
    },
    /// Fused pair of single-cycle ALU ops.
    Alu2 {
        a: AluUop,
        b: AluUop,
    },
    /// Single-cycle ALU op fused with the following conditional branch.
    AluBranch {
        a: AluUop,
        cond: BranchCond,
        rs1: u8,
        rs2: u8,
        target: u32,
    },
    /// Single-cycle ALU op fused with the following `jal`.
    AluJal {
        a: AluUop,
        rd: u8,
        target: u32,
    },
    /// Stream load fused with the following single-cycle ALU op.
    SlAlu {
        rd: u8,
        sid: u8,
        width: u8,
        b: AluUop,
    },
    /// Stream load fused with the following conditional branch.
    SlBranch {
        rd: u8,
        sid: u8,
        width: u8,
        cond: BranchCond,
        rs1: u8,
        rs2: u8,
        target: u32,
    },
    /// Fused pair of stream loads.
    Sl2 {
        rd1: u8,
        sid1: u8,
        w1: u8,
        rd2: u8,
        sid2: u8,
        w2: u8,
    },
    /// Fused pair of conditional branches (fall-through into the second).
    BrBr {
        c1: BranchCond,
        rs1a: u8,
        rs2a: u8,
        t1: u32,
        c2: BranchCond,
        rs1b: u8,
        rs2b: u8,
        t2: u32,
    },
    /// Memory load fused with the following single-cycle ALU op.
    LdAlu {
        width: u8,
        signed: bool,
        rd: u8,
        base: u8,
        offset: u32,
        b: AluUop,
    },
    /// Memory load fused with the following conditional branch.
    LdBranch {
        width: u8,
        signed: bool,
        rd: u8,
        base: u8,
        offset: u32,
        cond: BranchCond,
        rs1: u8,
        rs2: u8,
        target: u32,
    },
}

/// The fusable single-cycle ALU forms, as a micro-op.
fn as_uop(s: Slot) -> Option<AluUop> {
    match s {
        Slot::Alu { op, rd, rs1, rs2 } => Some(AluUop {
            op,
            rd,
            rs1,
            imm: false,
            src: rs2 as u32,
        }),
        Slot::AluImm { op, rd, rs1, imm } => Some(AluUop {
            op,
            rd,
            rs1,
            imm: true,
            src: imm,
        }),
        Slot::Lui { rd, imm } => Some(AluUop {
            op: AluOp::Add,
            rd,
            rs1: 0,
            imm: true,
            src: imm,
        }),
        _ => None,
    }
}

/// Macro-op fusion pass over the predecoded array. Every index whose
/// original pair matches a pattern gets a fused slot; the second
/// instruction's slot is *kept* at its own index (fused slots may overlap:
/// a run `a b c` fuses to `[ab, bc, c]`, and execution entering at any
/// index retires exactly the original sequence).
fn fuse(slots: &mut [Slot]) {
    let orig: Vec<Slot> = slots.to_vec();
    for i in 0..orig.len().saturating_sub(1) {
        let next = orig[i + 1];
        if let Some(a) = as_uop(orig[i]) {
            if let Some(b) = as_uop(next) {
                slots[i] = Slot::Alu2 { a, b };
            } else if let Slot::Branch {
                cond,
                rs1,
                rs2,
                target,
            } = next
            {
                slots[i] = Slot::AluBranch {
                    a,
                    cond,
                    rs1,
                    rs2,
                    target,
                };
            } else if let Slot::Jal { rd, target } = next {
                slots[i] = Slot::AluJal { a, rd, target };
            }
        } else if let Slot::StreamLoad { rd, sid, width } = orig[i] {
            if let Some(b) = as_uop(next) {
                slots[i] = Slot::SlAlu { rd, sid, width, b };
            } else if let Slot::Branch {
                cond,
                rs1,
                rs2,
                target,
            } = next
            {
                slots[i] = Slot::SlBranch {
                    rd,
                    sid,
                    width,
                    cond,
                    rs1,
                    rs2,
                    target,
                };
            } else if let Slot::StreamLoad {
                rd: rd2,
                sid: sid2,
                width: w2,
            } = next
            {
                slots[i] = Slot::Sl2 {
                    rd1: rd,
                    sid1: sid,
                    w1: width,
                    rd2,
                    sid2,
                    w2,
                };
            }
        } else if let Slot::Branch {
            cond: c1,
            rs1: rs1a,
            rs2: rs2a,
            target: t1,
        } = orig[i]
        {
            if let Slot::Branch {
                cond: c2,
                rs1: rs1b,
                rs2: rs2b,
                target: t2,
            } = next
            {
                slots[i] = Slot::BrBr {
                    c1,
                    rs1a,
                    rs2a,
                    t1,
                    c2,
                    rs1b,
                    rs2b,
                    t2,
                };
            }
        } else if let Slot::Load {
            width,
            signed,
            rd,
            base,
            offset,
        } = orig[i]
        {
            if let Some(b) = as_uop(next) {
                slots[i] = Slot::LdAlu {
                    width,
                    signed,
                    rd,
                    base,
                    offset,
                    b,
                };
            } else if let Slot::Branch {
                cond,
                rs1,
                rs2,
                target,
            } = next
            {
                slots[i] = Slot::LdBranch {
                    width,
                    signed,
                    rd,
                    base,
                    offset,
                    cond,
                    rs1,
                    rs2,
                    target,
                };
            }
        }
    }
}

/// Predecodes a program into the dense execution array the dispatch loop
/// runs from, then runs the [`fuse`] pass. A representation change only:
/// every slot sequence executes exactly as the corresponding [`Instr`]s
/// did.
fn predecode(program: &Program, cfg: &CoreConfig) -> Arc<[Slot]> {
    let mut slots: Vec<Slot> = program
        .instrs()
        .iter()
        .map(|&i| match i {
            Instr::Alu { op, rd, rs1, rs2 } if op.is_muldiv() => {
                let lat = if matches!(op, AluOp::Mul | AluOp::Mulh | AluOp::Mulhu) {
                    cfg.mul_cycles
                } else {
                    cfg.div_cycles
                };
                Slot::MulDiv {
                    op,
                    rd: rd.index(),
                    rs1: rs1.index(),
                    rs2: rs2.index(),
                    stall: lat.saturating_sub(1) as u64,
                }
            }
            Instr::Alu { op, rd, rs1, rs2 } => Slot::Alu {
                op,
                rd: rd.index(),
                rs1: rs1.index(),
                rs2: rs2.index(),
            },
            Instr::AluImm { op, rd, rs1, imm } => Slot::AluImm {
                op,
                rd: rd.index(),
                rs1: rs1.index(),
                imm: imm as u32,
            },
            Instr::Lui { rd, imm } => Slot::Lui {
                rd: rd.index(),
                imm: imm << 12,
            },
            Instr::Load {
                width,
                signed,
                rd,
                base,
                offset,
            } => Slot::Load {
                width,
                signed,
                rd: rd.index(),
                base: base.index(),
                offset: offset as u32,
            },
            Instr::Store {
                width,
                rs,
                base,
                offset,
            } => Slot::Store {
                width,
                rs: rs.index(),
                base: base.index(),
                offset: offset as u32,
            },
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => Slot::Branch {
                cond,
                rs1: rs1.index(),
                rs2: rs2.index(),
                target,
            },
            Instr::Jal { rd, target } => Slot::Jal {
                rd: rd.index(),
                target,
            },
            Instr::Jalr { rd, base, offset } => Slot::Jalr {
                rd: rd.index(),
                base: base.index(),
                offset: offset as u32,
            },
            Instr::Halt => Slot::Halt,
            Instr::StreamLoad { rd, sid, width } => Slot::StreamLoad {
                rd: rd.index(),
                sid,
                width,
            },
            Instr::StreamStore { sid, width, rs } => Slot::StreamStore {
                sid,
                width,
                rs: rs.index(),
            },
            Instr::StreamAvail { rd, sid } => Slot::StreamAvail {
                rd: rd.index(),
                sid,
            },
            Instr::StreamEos { rd, sid } => Slot::StreamEos {
                rd: rd.index(),
                sid,
            },
            Instr::BufSwap { bank } => Slot::BufSwap { bank },
            Instr::CsrR { rd, csr } => Slot::CsrR {
                rd: rd.index(),
                csr,
            },
        })
        .collect();
    fuse(&mut slots);
    slots.into()
}

/// Predecode-cache key. The only [`CoreConfig`] inputs to predecode are
/// the mul/div latencies (baked into `MulDiv` stalls), so programs shared
/// across engine variants lower once. The program itself is keyed by its
/// content fingerprint; a hit is verified by full instruction comparison,
/// so a fingerprint collision can never alias two programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CodeKey {
    fingerprint: u64,
    len: usize,
    mul_cycles: u32,
    div_cycles: u32,
}

/// A cached lowering: the source program (kept for exact hit
/// verification) and the shared predecoded slots.
type CachedCode = (Program, Arc<[Slot]>);

static CODE_CACHE: OnceLock<Mutex<HashMap<CodeKey, CachedCode>>> = OnceLock::new();

/// Bound on retained lowerings — far above any real sweep's distinct
/// (program, latency) count, but keeps a pathological generator from
/// growing the cache without limit.
const CODE_CACHE_CAP: usize = 4096;

/// Dedupes [`predecode`] across cores and sweep points: identical programs
/// lowered with identical latencies share one `Arc` (which also makes
/// "same code?" an exact pointer comparison — see [`Core::shares_code`]).
fn predecode_cached(program: &Program, cfg: &CoreConfig) -> Arc<[Slot]> {
    let key = CodeKey {
        fingerprint: program.fingerprint(),
        len: program.len(),
        mul_cycles: cfg.mul_cycles,
        div_cycles: cfg.div_cycles,
    };
    let cache = CODE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("predecode cache poisoned");
    if let Some((cached, code)) = cache.get(&key) {
        if cached.instrs() == program.instrs() {
            return code.clone();
        }
        // Fingerprint collision: serve a fresh lowering, leave the cache.
        return predecode(program, cfg);
    }
    let code = predecode(program, cfg);
    if cache.len() >= CODE_CACHE_CAP {
        cache.clear();
    }
    cache.insert(key, (program.clone(), code.clone()));
    code
}

/// One in-order scalar core with the Table IV memory structures attached.
#[derive(Debug)]
pub struct Core {
    id: usize,
    cfg: CoreConfig,
    regs: [u32; 32],
    pc: u32,
    /// Predecoded execution array (see [`Slot`]); `pc` indexes into it.
    /// Shared via the predecode cache: cores built from the same program
    /// and latency config point at the same allocation.
    code: Arc<[Slot]>,
    cycle: u64,
    state: CoreState,
    scratchpad: Scratchpad,
    sbuf: StreamBuffer,
    hierarchy: Option<MemHierarchy>,
    window: Option<DramWindow>,
    staging: Option<PingPong>,
    breakdown: CycleBreakdown,
    mix: InstrMix,
}

impl Core {
    /// Builds a core. `dram` is required for configurations with a cache
    /// hierarchy (Baseline, Prefetch, AssasinSb$).
    ///
    /// # Panics
    ///
    /// Panics if the configuration needs a DRAM handle and none is given,
    /// or if [`CoreConfig::kind`] is [`EngineKind::Udp`] (UDP lanes are
    /// modeled by [`UdpLane`](crate::UdpLane), not by this interpreter).
    pub fn new(id: usize, cfg: CoreConfig, program: Program, dram: Option<SharedDram>) -> Self {
        assert!(
            cfg.kind != EngineKind::Udp,
            "UDP lanes are modeled analytically, not by Core"
        );
        let hierarchy = cfg.hierarchy.map(|h| {
            MemHierarchy::new(
                h,
                dram.clone()
                    .expect("cache hierarchy requires a DRAM handle"),
            )
        });
        let staging = (cfg.kind == EngineKind::AssasinSp).then(|| PingPong::new(cfg.staging_bytes));
        let code = predecode_cached(&program, &cfg);
        Core {
            id,
            cfg,
            regs: [0; 32],
            pc: 0,
            code,
            cycle: 0,
            state: CoreState::Running,
            scratchpad: Scratchpad::new(cfg.scratchpad_bytes as usize),
            sbuf: StreamBuffer::new(cfg.streambuffer),
            hierarchy,
            window: None,
            staging,
            breakdown: CycleBreakdown::default(),
            mix: InstrMix::default(),
        }
    }

    /// This core's id (used when one [`StreamEnv`] serves many cores).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The configuration this core was built with.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Current state.
    pub fn state(&self) -> &CoreState {
        &self.state
    }

    /// Cycles elapsed on this core's clock.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Current program counter (instruction index), for hang diagnostics.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Instructions retired.
    pub fn mix(&self) -> &InstrMix {
        &self.mix
    }

    /// Cycle decomposition (Figure 5).
    pub fn breakdown(&self) -> &CycleBreakdown {
        &self.breakdown
    }

    /// This core's current local time.
    pub fn local_time(&self) -> SimTime {
        self.cfg.clock.cycle_time(SimTime::ZERO, self.cycle)
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: assasin_isa::Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    /// Writes an architectural register (kernel launch arguments).
    pub fn set_reg(&mut self, r: assasin_isa::Reg, v: u32) {
        self.set_reg_idx(r.index(), v);
    }

    /// Register write by predecoded index (x0 stays hardwired to zero).
    #[inline]
    fn set_reg_idx(&mut self, rd: u8, v: u32) {
        if rd != 0 {
            self.regs[rd as usize] = v;
        }
    }

    /// The function-state scratchpad (firmware preloads state here).
    pub fn scratchpad_mut(&mut self) -> &mut Scratchpad {
        &mut self.scratchpad
    }

    /// Immutable scratchpad view (result extraction).
    pub fn scratchpad(&self) -> &Scratchpad {
        &self.scratchpad
    }

    /// The streambuffer (firmware prefill / final flush).
    pub fn sbuf_mut(&mut self) -> &mut StreamBuffer {
        &mut self.sbuf
    }

    /// Streambuffer view.
    pub fn sbuf(&self) -> &StreamBuffer {
        &self.sbuf
    }

    /// Attaches the DRAM staging window (Baseline/Prefetch/Sb$ data path).
    pub fn set_window(&mut self, window: DramWindow) {
        self.window = Some(window);
    }

    /// The DRAM staging window, if attached.
    pub fn window(&self) -> Option<&DramWindow> {
        self.window.as_ref()
    }

    /// Mutable DRAM staging window (the firmware stages pages into it).
    pub fn window_mut(&mut self) -> Option<&mut DramWindow> {
        self.window.as_mut()
    }

    /// Cache/prefetch counters, if a hierarchy is attached.
    pub fn hierarchy(&self) -> Option<&MemHierarchy> {
        self.hierarchy.as_ref()
    }

    /// True when both cores run the *same* predecoded code object. Thanks
    /// to the predecode cache this is an exact "identical program and
    /// latency config" test in one pointer comparison — the lane batcher
    /// keys on it.
    pub fn shares_code(&self, other: &Core) -> bool {
        Arc::ptr_eq(&self.code, &other.code)
    }

    /// The predecoded code's allocation identity — the lane batcher's
    /// partition key (equal pointers ⇔ identical program and latency
    /// config, via the predecode cache).
    pub(crate) fn code_ptr(&self) -> *const () {
        Arc::as_ptr(&self.code) as *const ()
    }

    /// Serializes every predecode-independent field: architectural
    /// registers, `pc`, local clock, run state, scratchpad, streambuffer,
    /// the optional hierarchy/window/staging structures, and the cycle and
    /// instruction-mix counters. The predecoded `code`, the config and the
    /// shared DRAM handle are *not* encoded — a restore target is built
    /// with [`Core::new`] from the same program and config, which
    /// reproduces them (via the predecode cache, usually for free).
    pub fn save_state(&self, enc: &mut assasin_snap::Encoder) {
        enc.u64(self.id as u64);
        for r in self.regs {
            enc.u32(r);
        }
        enc.u32(self.pc);
        enc.u64(self.cycle);
        match &self.state {
            CoreState::Running => enc.u8(0),
            CoreState::Halted => enc.u8(1),
            CoreState::Wedged(msg) => {
                enc.u8(2);
                enc.str(msg);
            }
        }
        self.scratchpad.save_state(enc);
        self.sbuf.save_state(enc);
        match &self.hierarchy {
            Some(h) => {
                enc.bool(true);
                h.save_state(enc);
            }
            None => enc.bool(false),
        }
        match &self.window {
            Some(w) => {
                enc.bool(true);
                w.save_state(enc);
            }
            None => enc.bool(false),
        }
        match &self.staging {
            Some(s) => {
                enc.bool(true);
                s.save_state(enc);
            }
            None => enc.bool(false),
        }
        let b = &self.breakdown;
        for v in [
            b.busy,
            b.stall_l1,
            b.stall_l2,
            b.stall_dram,
            b.stall_scratchpad,
            b.stall_stream,
            b.stall_swap,
        ] {
            enc.u64(v);
        }
        let m = &self.mix;
        for v in [
            m.total,
            m.alu,
            m.muldiv,
            m.loads,
            m.stores,
            m.branches,
            m.taken,
            m.jumps,
            m.stream_loads,
            m.stream_stores,
        ] {
            enc.u64(v);
        }
    }

    /// Restores [`Core::save_state`] bytes onto a freshly built core.
    /// `self` must come from [`Core::new`] with the same id, config and
    /// program the snapshot was taken under.
    ///
    /// # Errors
    ///
    /// Fails on truncation, an id mismatch, or a hierarchy/staging
    /// presence mismatch (the snapshot was taken under a different
    /// engine configuration).
    pub fn load_snapshot(
        &mut self,
        dec: &mut assasin_snap::Decoder<'_>,
    ) -> Result<(), assasin_snap::SnapError> {
        let id = dec.u64()?;
        if id != self.id as u64 {
            return Err(assasin_snap::SnapError::Malformed(format!(
                "core id mismatch: snapshot {id}, target {}",
                self.id
            )));
        }
        let mut regs = [0u32; 32];
        for r in &mut regs {
            *r = dec.u32()?;
        }
        let pc = dec.u32()?;
        let cycle = dec.u64()?;
        let state = match dec.u8()? {
            0 => CoreState::Running,
            1 => CoreState::Halted,
            2 => CoreState::Wedged(dec.str()?.to_string()),
            t => {
                return Err(assasin_snap::SnapError::Malformed(format!(
                    "unknown core state tag {t}"
                )))
            }
        };
        let scratchpad = Scratchpad::restore_state(dec)?;
        let sbuf = StreamBuffer::restore_state(dec)?;
        let h_present = dec.bool()?;
        if h_present != self.hierarchy.is_some() {
            return Err(assasin_snap::SnapError::Malformed(
                "core hierarchy presence mismatch".into(),
            ));
        }
        if let Some(h) = self.hierarchy.as_mut() {
            h.load_snapshot(dec)?;
        }
        let window = if dec.bool()? {
            Some(DramWindow::restore_state(dec)?)
        } else {
            None
        };
        let s_present = dec.bool()?;
        if s_present != self.staging.is_some() {
            return Err(assasin_snap::SnapError::Malformed(
                "core staging presence mismatch".into(),
            ));
        }
        let staging = if s_present {
            Some(PingPong::restore_state(dec)?)
        } else {
            None
        };
        let breakdown = CycleBreakdown {
            busy: dec.u64()?,
            stall_l1: dec.u64()?,
            stall_l2: dec.u64()?,
            stall_dram: dec.u64()?,
            stall_scratchpad: dec.u64()?,
            stall_stream: dec.u64()?,
            stall_swap: dec.u64()?,
        };
        let mix = InstrMix {
            total: dec.u64()?,
            alu: dec.u64()?,
            muldiv: dec.u64()?,
            loads: dec.u64()?,
            stores: dec.u64()?,
            branches: dec.u64()?,
            taken: dec.u64()?,
            jumps: dec.u64()?,
            stream_loads: dec.u64()?,
            stream_stores: dec.u64()?,
        };
        self.regs = regs;
        self.pc = pc;
        self.cycle = cycle;
        self.state = state;
        self.scratchpad = scratchpad;
        self.sbuf = sbuf;
        self.window = window;
        self.staging = staging;
        self.breakdown = breakdown;
        self.mix = mix;
        Ok(())
    }

    /// The slot at the current `pc`, or `None` past the end of the program
    /// (which the scalar loop turns into a wedge — see
    /// [`Core::wedge_pc_overrun`]).
    #[inline(always)]
    pub(crate) fn fetch_slot(&self) -> Option<Slot> {
        self.code.get(self.pc as usize).copied()
    }

    /// Wedges with the same diagnostic the scalar fetch path produces when
    /// `pc` runs past the end of the program.
    pub(crate) fn wedge_pc_overrun(&mut self) {
        self.wedge("pc past end of program".into());
    }

    /// Flushes `n` batched retirements into the unconditional
    /// per-instruction counters (`mix.total` plus one base busy cycle
    /// each). The dispatch loops accumulate locally and flush once per
    /// call; these counters are only observed between epochs.
    pub(crate) fn flush_retired(&mut self, n: u64) {
        self.mix.total += n;
        self.breakdown.busy += n;
    }

    fn wedge(&mut self, msg: String) {
        self.state = CoreState::Wedged(format!("core {} @pc {}: {msg}", self.id, self.pc));
    }

    /// Charges `extra` stall cycles into a breakdown bucket.
    fn charge(&mut self, extra: u64, bucket: fn(&mut CycleBreakdown) -> &mut u64) {
        *bucket(&mut self.breakdown) += extra;
        self.cycle += extra;
    }

    /// Converts an absolute completion time into extra stall cycles beyond
    /// the instruction's base cycle, advancing nothing.
    fn stall_cycles(&self, issue: SimTime, complete: SimTime) -> u64 {
        // Steady-state accesses complete within the issue cycle; skip the
        // division entirely (ceil(0) - 1 saturates to 0 anyway).
        if complete <= issue {
            return 0;
        }
        let dur = complete.saturating_since(issue);
        self.cfg.clock.dur_to_cycles_ceil(dur).saturating_sub(1)
    }

    /// Runs until `deadline` (exclusive) or until the core stops. Returns
    /// *why* it stopped; a still-running core reports the earliest time a
    /// larger deadline could make it retire another instruction, which the
    /// SSD's event-driven scheduler uses to skip dead epochs.
    ///
    /// The unconditional per-instruction counters (`mix.total`, the base
    /// busy cycle) are accumulated locally and flushed once per call —
    /// they are only observed between epochs, and keeping them out of the
    /// dispatch loop measurably speeds up the interpreter. Cycle counts
    /// and stall buckets stay exact per instruction (timing depends on
    /// them mid-step).
    ///
    /// The `CoreState` check lives only in the dispatch loop (`exec_slot`
    /// assumes a running core); the deadline is pre-converted to a cycle
    /// count so the per-instruction bound is one integer compare.
    pub fn run(&mut self, env: &mut dyn StreamEnv, deadline: SimTime) -> RunOutcome {
        let period = self.cfg.clock.period_ps();
        self.run_cycles(env, deadline.as_ps() / period);
        match self.state {
            CoreState::Running => {
                // Stalls are charged eagerly (the local clock jumps past
                // them), so the next instruction retires in cycle
                // `self.cycle` — observable once the deadline covers the
                // end of that cycle.
                RunOutcome::BlockedUntil(SimTime::from_ps((self.cycle + 1) * period))
            }
            CoreState::Halted => RunOutcome::Halted,
            CoreState::Wedged(_) => RunOutcome::Wedged,
        }
    }

    /// The dispatch loop shared by [`Core::run`], [`Core::run_to_halt`]
    /// and the lane executor: runs while the core is running and its clock
    /// is below `cycle_limit`, then flushes the batched per-instruction
    /// counters.
    pub(crate) fn run_cycles(&mut self, env: &mut dyn StreamEnv, cycle_limit: u64) {
        let mut retired = 0u64;
        while self.state == CoreState::Running && self.cycle < cycle_limit {
            retired += self.step_inner(env, cycle_limit) as u64;
        }
        self.flush_retired(retired);
    }

    /// Runs to completion (no deadline). Mostly for tests; the SSD uses
    /// bounded epochs. Batches the per-instruction counters like
    /// [`Core::run`].
    pub fn run_to_halt(&mut self, env: &mut dyn StreamEnv) -> &CoreState {
        self.run_cycles(env, u64::MAX);
        &self.state
    }

    /// Executes one instruction. (The limit of `cycle + 1` makes a fused
    /// pair stop after its first half, so `step` retires exactly one
    /// architectural instruction.)
    pub fn step(&mut self, env: &mut dyn StreamEnv) {
        if self.state != CoreState::Running {
            return;
        }
        let n = self.step_inner(env, self.cycle + 1);
        self.flush_retired(n as u64);
    }

    /// The issue time of the instruction dispatched at `cycle` — computed
    /// lazily, only by the handlers that model memory or stream timing
    /// (ALU and control flow never pay the conversion).
    fn issue_at(&self, cycle: u64) -> SimTime {
        self.cfg.clock.cycle_time(SimTime::ZERO, cycle)
    }

    /// Fetches and dispatches one slot. Returns the number of instructions
    /// retired: 0 on a fetch wedge, 2 when a fused pair completed, else 1.
    #[inline(always)]
    fn step_inner(&mut self, env: &mut dyn StreamEnv, limit: u64) -> u32 {
        let Some(&slot) = self.code.get(self.pc as usize) else {
            self.wedge("pc past end of program".into());
            return 0;
        };
        self.exec_slot(slot, env, limit)
    }

    /// Executes one single-cycle ALU micro-op (one half of a fused pair).
    #[inline(always)]
    fn exec_uop(&mut self, u: AluUop) {
        let a = self.regs[u.rs1 as usize];
        let b = if u.imm {
            u.src
        } else {
            self.regs[u.src as usize]
        };
        let v = alu_eval(u.op, a, b);
        self.set_reg_idx(u.rd, v);
        self.mix.alu += 1;
    }

    /// Dispatches one predecoded slot (two architectural instructions for
    /// the fused variants). Returns the retired count, which the callers
    /// batch into `mix.total` plus base busy cycles.
    ///
    /// `limit` is the run deadline in cycles: a fused pair re-checks it
    /// between halves and stops with `pc` on the second instruction when
    /// the first half crossed it, so epoch-sliced execution retires the
    /// same instructions at the same cycles as unfused dispatch.
    ///
    /// Assumes the core is running — the state check is hoisted into the
    /// dispatch loops ([`Core::run_cycles`], [`Core::step`], and the lane
    /// executor in `lanes.rs`).
    #[inline(always)]
    pub(crate) fn exec_slot(&mut self, slot: Slot, env: &mut dyn StreamEnv, limit: u64) -> u32 {
        let issue_cycle = self.cycle;
        let mut next_pc = self.pc + 1;
        // Base cost: one cycle, charged up front; stalls add on top.
        self.cycle += 1;

        match slot {
            Slot::Alu { op, rd, rs1, rs2 } => {
                let a = self.regs[rs1 as usize];
                let b = self.regs[rs2 as usize];
                let v = alu_eval(op, a, b);
                self.set_reg_idx(rd, v);
                self.mix.alu += 1;
            }
            Slot::MulDiv {
                op,
                rd,
                rs1,
                rs2,
                stall,
            } => {
                let a = self.regs[rs1 as usize];
                let b = self.regs[rs2 as usize];
                let v = alu_eval(op, a, b);
                self.set_reg_idx(rd, v);
                self.mix.muldiv += 1;
                self.breakdown.busy += stall;
                self.cycle += stall;
            }
            Slot::AluImm { op, rd, rs1, imm } => {
                let a = self.regs[rs1 as usize];
                let v = alu_eval(op, a, imm);
                self.set_reg_idx(rd, v);
                self.mix.alu += 1;
            }
            Slot::Lui { rd, imm } => {
                self.set_reg_idx(rd, imm);
                self.mix.alu += 1;
            }
            Slot::Alu2 { a, b } => {
                self.exec_uop(a);
                if self.cycle >= limit {
                    self.pc += 1;
                    return 1;
                }
                self.cycle += 1;
                self.exec_uop(b);
                self.pc += 2;
                return 2;
            }
            Slot::AluBranch {
                a,
                cond,
                rs1,
                rs2,
                target,
            } => {
                self.exec_uop(a);
                if self.cycle >= limit {
                    self.pc += 1;
                    return 1;
                }
                self.cycle += 1;
                self.mix.branches += 1;
                let x = self.regs[rs1 as usize];
                let y = self.regs[rs2 as usize];
                if branch_eval(cond, x, y) {
                    self.mix.taken += 1;
                    self.pc = target;
                    let pen = self.cfg.branch_penalty as u64;
                    self.breakdown.busy += pen;
                    self.cycle += pen;
                } else {
                    self.pc += 2;
                }
                return 2;
            }
            Slot::AluJal { a, rd, target } => {
                self.exec_uop(a);
                if self.cycle >= limit {
                    self.pc += 1;
                    return 1;
                }
                self.cycle += 1;
                self.mix.jumps += 1;
                let link = self.pc + 2;
                self.set_reg_idx(rd, link);
                self.pc = target;
                let pen = self.cfg.branch_penalty as u64;
                self.breakdown.busy += pen;
                self.cycle += pen;
                return 2;
            }
            Slot::SlAlu { rd, sid, width, b } => {
                self.mix.stream_loads += 1;
                match self.stream_load(env, sid as u32, width as u32, self.issue_at(issue_cycle)) {
                    Ok(Some(v)) => self.set_reg_idx(rd, v),
                    // Halted on an exhausted stream: `pc` stays on the
                    // fused index, matching the scalar early return.
                    Ok(None) => return 1,
                    Err(msg) => {
                        self.wedge(msg);
                        return 1;
                    }
                }
                if self.cycle >= limit {
                    self.pc += 1;
                    return 1;
                }
                self.cycle += 1;
                self.exec_uop(b);
                self.pc += 2;
                return 2;
            }
            Slot::SlBranch {
                rd,
                sid,
                width,
                cond,
                rs1,
                rs2,
                target,
            } => {
                self.mix.stream_loads += 1;
                match self.stream_load(env, sid as u32, width as u32, self.issue_at(issue_cycle)) {
                    Ok(Some(v)) => self.set_reg_idx(rd, v),
                    Ok(None) => return 1, // halted on exhausted stream
                    Err(msg) => {
                        self.wedge(msg);
                        return 1;
                    }
                }
                if self.cycle >= limit {
                    self.pc += 1;
                    return 1;
                }
                self.cycle += 1;
                self.mix.branches += 1;
                let x = self.regs[rs1 as usize];
                let y = self.regs[rs2 as usize];
                if branch_eval(cond, x, y) {
                    self.mix.taken += 1;
                    self.pc = target;
                    let pen = self.cfg.branch_penalty as u64;
                    self.breakdown.busy += pen;
                    self.cycle += pen;
                } else {
                    self.pc += 2;
                }
                return 2;
            }
            Slot::Sl2 {
                rd1,
                sid1,
                w1,
                rd2,
                sid2,
                w2,
            } => {
                self.mix.stream_loads += 1;
                match self.stream_load(env, sid1 as u32, w1 as u32, self.issue_at(issue_cycle)) {
                    Ok(Some(v)) => self.set_reg_idx(rd1, v),
                    Ok(None) => return 1, // halted on exhausted stream
                    Err(msg) => {
                        self.wedge(msg);
                        return 1;
                    }
                }
                if self.cycle >= limit {
                    self.pc += 1;
                    return 1;
                }
                let issue2 = self.cycle;
                self.cycle += 1;
                self.mix.stream_loads += 1;
                match self.stream_load(env, sid2 as u32, w2 as u32, self.issue_at(issue2)) {
                    Ok(Some(v)) => self.set_reg_idx(rd2, v),
                    // Second half halted/wedged: `pc` rests on the second
                    // instruction, exactly where unfused dispatch stops.
                    Ok(None) => {
                        self.pc += 1;
                        return 2;
                    }
                    Err(msg) => {
                        self.wedge(msg);
                        self.pc += 1;
                        return 2;
                    }
                }
                self.pc += 2;
                return 2;
            }
            Slot::BrBr {
                c1,
                rs1a,
                rs2a,
                t1,
                c2,
                rs1b,
                rs2b,
                t2,
            } => {
                self.mix.branches += 1;
                let x = self.regs[rs1a as usize];
                let y = self.regs[rs2a as usize];
                if branch_eval(c1, x, y) {
                    self.mix.taken += 1;
                    self.pc = t1;
                    let pen = self.cfg.branch_penalty as u64;
                    self.breakdown.busy += pen;
                    self.cycle += pen;
                    return 1;
                }
                if self.cycle >= limit {
                    self.pc += 1;
                    return 1;
                }
                self.cycle += 1;
                self.mix.branches += 1;
                let x = self.regs[rs1b as usize];
                let y = self.regs[rs2b as usize];
                if branch_eval(c2, x, y) {
                    self.mix.taken += 1;
                    self.pc = t2;
                    let pen = self.cfg.branch_penalty as u64;
                    self.breakdown.busy += pen;
                    self.cycle += pen;
                } else {
                    self.pc += 2;
                }
                return 2;
            }
            Slot::LdAlu {
                width,
                signed,
                rd,
                base,
                offset,
                b,
            } => {
                self.mix.loads += 1;
                let addr = self.regs[base as usize].wrapping_add(offset) as u64;
                match self.mem_load(addr, width as u32, self.issue_at(issue_cycle)) {
                    Ok(raw) => {
                        let v = if signed {
                            sign_extend(raw, width as u32)
                        } else {
                            raw
                        };
                        self.set_reg_idx(rd, v);
                    }
                    Err(msg) => {
                        self.wedge(msg);
                        return 1;
                    }
                }
                if self.cycle >= limit {
                    self.pc += 1;
                    return 1;
                }
                self.cycle += 1;
                self.exec_uop(b);
                self.pc += 2;
                return 2;
            }
            Slot::LdBranch {
                width,
                signed,
                rd,
                base,
                offset,
                cond,
                rs1,
                rs2,
                target,
            } => {
                self.mix.loads += 1;
                let addr = self.regs[base as usize].wrapping_add(offset) as u64;
                match self.mem_load(addr, width as u32, self.issue_at(issue_cycle)) {
                    Ok(raw) => {
                        let v = if signed {
                            sign_extend(raw, width as u32)
                        } else {
                            raw
                        };
                        self.set_reg_idx(rd, v);
                    }
                    Err(msg) => {
                        self.wedge(msg);
                        return 1;
                    }
                }
                if self.cycle >= limit {
                    self.pc += 1;
                    return 1;
                }
                self.cycle += 1;
                self.mix.branches += 1;
                let x = self.regs[rs1 as usize];
                let y = self.regs[rs2 as usize];
                if branch_eval(cond, x, y) {
                    self.mix.taken += 1;
                    self.pc = target;
                    let pen = self.cfg.branch_penalty as u64;
                    self.breakdown.busy += pen;
                    self.cycle += pen;
                } else {
                    self.pc += 2;
                }
                return 2;
            }
            Slot::Load {
                width,
                signed,
                rd,
                base,
                offset,
            } => {
                self.mix.loads += 1;
                let addr = self.regs[base as usize].wrapping_add(offset) as u64;
                match self.mem_load(addr, width as u32, self.issue_at(issue_cycle)) {
                    Ok(raw) => {
                        let v = if signed {
                            sign_extend(raw, width as u32)
                        } else {
                            raw
                        };
                        self.set_reg_idx(rd, v);
                    }
                    Err(msg) => {
                        self.wedge(msg);
                        return 1;
                    }
                }
            }
            Slot::Store {
                width,
                rs,
                base,
                offset,
            } => {
                self.mix.stores += 1;
                let addr = self.regs[base as usize].wrapping_add(offset) as u64;
                let value = self.regs[rs as usize];
                if let Err(msg) =
                    self.mem_store(addr, width as u32, value, self.issue_at(issue_cycle))
                {
                    self.wedge(msg);
                    return 1;
                }
            }
            Slot::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                self.mix.branches += 1;
                let a = self.regs[rs1 as usize];
                let b = self.regs[rs2 as usize];
                if branch_eval(cond, a, b) {
                    self.mix.taken += 1;
                    next_pc = target;
                    let pen = self.cfg.branch_penalty as u64;
                    self.breakdown.busy += pen;
                    self.cycle += pen;
                }
            }
            Slot::Jal { rd, target } => {
                self.mix.jumps += 1;
                self.set_reg_idx(rd, self.pc + 1);
                next_pc = target;
                let pen = self.cfg.branch_penalty as u64;
                self.breakdown.busy += pen;
                self.cycle += pen;
            }
            Slot::Jalr { rd, base, offset } => {
                self.mix.jumps += 1;
                let t = self.regs[base as usize].wrapping_add(offset);
                self.set_reg_idx(rd, self.pc + 1);
                next_pc = t;
                let pen = self.cfg.branch_penalty as u64;
                self.breakdown.busy += pen;
                self.cycle += pen;
            }
            Slot::Halt => {
                self.state = CoreState::Halted;
                return 1;
            }
            Slot::StreamLoad { rd, sid, width } => {
                self.mix.stream_loads += 1;
                match self.stream_load(env, sid as u32, width as u32, self.issue_at(issue_cycle)) {
                    Ok(Some(v)) => self.set_reg_idx(rd, v),
                    Ok(None) => return 1, // halted on exhausted stream
                    Err(msg) => {
                        self.wedge(msg);
                        return 1;
                    }
                }
            }
            Slot::StreamStore { sid, width, rs } => {
                self.mix.stream_stores += 1;
                let value = self.regs[rs as usize];
                if let Err(msg) = self.stream_store(
                    env,
                    sid as u32,
                    width as u32,
                    value,
                    self.issue_at(issue_cycle),
                ) {
                    self.wedge(msg);
                    return 1;
                }
            }
            Slot::StreamAvail { rd, sid } => {
                env.refill_stream(
                    self.id,
                    sid as u32,
                    self.issue_at(issue_cycle),
                    &mut self.sbuf,
                );
                let avail = self
                    .sbuf
                    .in_bytes_available(sid as u32)
                    .min(u32::MAX as u64);
                self.set_reg_idx(rd, avail as u32);
            }
            Slot::StreamEos { rd, sid } => {
                env.refill_stream(
                    self.id,
                    sid as u32,
                    self.issue_at(issue_cycle),
                    &mut self.sbuf,
                );
                let eos = self.sbuf.is_exhausted(sid as u32);
                self.set_reg_idx(rd, eos as u32);
            }
            Slot::BufSwap { bank } => {
                if let Err(msg) = self.buf_swap(env, bank, self.issue_at(issue_cycle)) {
                    self.wedge(msg);
                    return 1;
                }
            }
            Slot::CsrR { rd, csr: num } => {
                let v = self.read_csr(num);
                self.set_reg_idx(rd, v);
            }
        }
        self.pc = next_pc;
        1
    }

    fn read_csr(&self, num: u16) -> u32 {
        match num {
            csr::CYCLE => self.cycle as u32,
            Self::CSR_IN_BANK_LEN => self
                .staging
                .as_ref()
                .map(|s| s.in_len() as u32)
                .unwrap_or(0),
            n if (0x800..0x808).contains(&n) => self
                .sbuf
                .in_csrs((n - 0x800) as u32)
                .map(|c| c.0)
                .unwrap_or(0) as u32,
            n if (0x810..0x818).contains(&n) => self
                .sbuf
                .in_csrs((n - 0x810) as u32)
                .map(|c| c.1)
                .unwrap_or(0) as u32,
            n if (0x820..0x828).contains(&n) => self
                .sbuf
                .out_csrs((n - 0x820) as u32)
                .map(|c| c.0)
                .unwrap_or(0) as u32,
            n if (0x830..0x838).contains(&n) => self
                .sbuf
                .out_csrs((n - 0x830) as u32)
                .map(|c| c.1)
                .unwrap_or(0) as u32,
            _ => 0,
        }
    }

    /// CSR holding the valid length of the current AssasinSp input bank.
    pub const CSR_IN_BANK_LEN: u16 = 0xC10;

    // ------------------------------------------------------------- memory

    fn mem_load(&mut self, addr: u64, width: u32, issue: SimTime) -> Result<u32, String> {
        if addr >= layout::STAGING_OUT_BASE {
            return Err(format!("load from output staging window {addr:#x}"));
        }
        if addr >= layout::STAGING_IN_BASE {
            let off = addr - layout::STAGING_IN_BASE;
            let Some(staging) = &self.staging else {
                return Err("staging access without ping-pong buffers".into());
            };
            if off as usize + width as usize > staging.in_len() {
                return Err(format!("staging load past bank length at {off:#x}"));
            }
            let v = staging.load_in(off, width);
            let extra = self.cfg.scratchpad_cycles.saturating_sub(1) as u64;
            self.charge(extra, |b| &mut b.stall_scratchpad);
            return Ok(v);
        }
        if addr >= layout::DRAM_BASE {
            let off = addr - layout::DRAM_BASE;
            let Some(window) = &self.window else {
                return Err("DRAM access without a staging window".into());
            };
            if !window.contains(off, width) {
                return Err(format!("DRAM load outside window at {off:#x}"));
            }
            let Some(hier) = &mut self.hierarchy else {
                return Err("DRAM access without a cache hierarchy".into());
            };
            let (complete, served) =
                hier.access(AccessKind::Load, self.pc as u64, off, width, issue);
            let value = window.load(off, width);
            let avail = window.avail_at(off);
            let stall = self.stall_cycles(issue, complete);
            let bucket: fn(&mut CycleBreakdown) -> &mut u64 = match served {
                ServedBy::L1 => |b| &mut b.stall_l1,
                ServedBy::L2 => |b| &mut b.stall_l2,
                ServedBy::Dram | ServedBy::Prefetch => |b| &mut b.stall_dram,
            };
            self.charge(stall, bucket);
            // Wait further if the firmware has not staged the page yet.
            if avail > complete {
                let extra = self.stall_cycles(issue, avail).saturating_sub(stall);
                self.charge(extra, |b| &mut b.stall_stream);
            }
            return Ok(value);
        }
        // Scratchpad.
        match self.scratchpad.load(addr, width) {
            Ok(v) => {
                let extra = self.cfg.scratchpad_cycles.saturating_sub(1) as u64;
                self.charge(extra, |b| &mut b.stall_scratchpad);
                Ok(v as u32)
            }
            Err(e) => Err(format!("scratchpad load failed: {e}")),
        }
    }

    fn mem_store(
        &mut self,
        addr: u64,
        width: u32,
        value: u32,
        issue: SimTime,
    ) -> Result<(), String> {
        if addr >= layout::STAGING_OUT_BASE {
            let off = addr - layout::STAGING_OUT_BASE;
            let Some(staging) = &mut self.staging else {
                return Err("staging access without ping-pong buffers".into());
            };
            if off as usize + width as usize > staging.bank_bytes() as usize {
                return Err(format!("staging store past bank at {off:#x}"));
            }
            staging.store_out(off, width, value);
            let extra = self.cfg.scratchpad_cycles.saturating_sub(1) as u64;
            self.charge(extra, |b| &mut b.stall_scratchpad);
            return Ok(());
        }
        if addr >= layout::STAGING_IN_BASE {
            return Err(format!("store into input staging window {addr:#x}"));
        }
        if addr >= layout::DRAM_BASE {
            let off = addr - layout::DRAM_BASE;
            let Some(window) = &mut self.window else {
                return Err("DRAM access without a staging window".into());
            };
            if !window.contains(off, width) {
                return Err(format!("DRAM store outside window at {off:#x}"));
            }
            window.store(off, width, value);
            let Some(hier) = &mut self.hierarchy else {
                return Err("DRAM access without a cache hierarchy".into());
            };
            let (complete, _) = hier.access(AccessKind::Store, self.pc as u64, off, width, issue);
            let stall = self.stall_cycles(issue, complete);
            self.charge(stall, |b| &mut b.stall_l1);
            return Ok(());
        }
        self.scratchpad
            .store(addr, width, value as u64)
            .map_err(|e| format!("scratchpad store failed: {e}"))?;
        let extra = self.cfg.scratchpad_cycles.saturating_sub(1) as u64;
        self.charge(extra, |b| &mut b.stall_scratchpad);
        Ok(())
    }

    // ------------------------------------------------------------- streams

    fn stream_load(
        &mut self,
        env: &mut dyn StreamEnv,
        sid: u32,
        width: u32,
        issue: SimTime,
    ) -> Result<Option<u32>, String> {
        {
            match self.sbuf.read(sid, width, issue) {
                Ok(ReadOutcome::Data {
                    value,
                    ready,
                    freed_pages,
                }) => {
                    let stall = self.stall_cycles(issue, ready);
                    self.charge(stall, |b| &mut b.stall_stream);
                    if freed_pages > 0 {
                        let now = self.local_time();
                        env.refill_stream(self.id, sid, now, &mut self.sbuf);
                    }
                    Ok(Some(value as u32))
                }
                Ok(ReadOutcome::Blocked) => {
                    env.refill_stream(self.id, sid, issue, &mut self.sbuf);
                    match self.sbuf.read(sid, width, issue) {
                        Ok(ReadOutcome::Blocked) => {
                            Err(format!("stream {sid} starved after refill"))
                        }
                        Ok(ReadOutcome::Exhausted) => {
                            self.state = CoreState::Halted;
                            Ok(None)
                        }
                        Ok(ReadOutcome::Data {
                            value,
                            ready,
                            freed_pages,
                        }) => {
                            let stall = self.stall_cycles(issue, ready);
                            self.charge(stall, |b| &mut b.stall_stream);
                            if freed_pages > 0 {
                                let now = self.local_time();
                                env.refill_stream(self.id, sid, now, &mut self.sbuf);
                            }
                            Ok(Some(value as u32))
                        }
                        Err(e) => Err(format!("stream load failed: {e}")),
                    }
                }
                Ok(ReadOutcome::Exhausted) => {
                    self.state = CoreState::Halted;
                    Ok(None)
                }
                Err(e) => Err(format!("stream load failed: {e}")),
            }
        }
    }

    fn stream_store(
        &mut self,
        env: &mut dyn StreamEnv,
        sid: u32,
        width: u32,
        value: u32,
        issue: SimTime,
    ) -> Result<(), String> {
        let outcome = self
            .sbuf
            .write(sid, width, value as u64, issue)
            .map_err(|e| format!("stream store failed: {e}"))?;
        let stall = self.stall_cycles(issue, outcome.ready);
        self.charge(stall, |b| &mut b.stall_swap);
        if let Some(page) = outcome.completed_page {
            let now = self.local_time();
            let done = env.drain_page(self.id, sid, page, now);
            self.sbuf
                .note_drain(sid, done)
                .map_err(|e| format!("drain bookkeeping failed: {e}"))?;
        }
        Ok(())
    }

    fn buf_swap(
        &mut self,
        env: &mut dyn StreamEnv,
        bank: u8,
        issue: SimTime,
    ) -> Result<(), String> {
        let Some(_) = self.staging else {
            return Err("buf.swap without ping-pong buffers".into());
        };
        match bank {
            0 => {
                match env.next_input_bank(self.id, issue) {
                    Some((data, ready)) => {
                        let staging = self.staging.as_mut().expect("checked");
                        staging.install_input(data);
                        let stall = self.stall_cycles(issue, ready);
                        self.charge(stall, |b| &mut b.stall_swap);
                    }
                    None => {
                        self.staging.as_mut().expect("checked").set_exhausted();
                    }
                }
                Ok(())
            }
            1 => {
                let staging = self.staging.as_mut().expect("checked");
                let prev_done = staging.drain_done();
                let data = staging.take_output();
                let stall = self.stall_cycles(issue, prev_done);
                self.charge(stall, |b| &mut b.stall_swap);
                let now = self.local_time().max(prev_done);
                let done = env.drain_bank(self.id, data, now);
                self.staging.as_mut().expect("checked").set_drain_done(done);
                Ok(())
            }
            other => Err(format!("buf.swap of unknown bank {other}")),
        }
    }
}

fn sign_extend(v: u32, width: u32) -> u32 {
    match width {
        1 => v as u8 as i8 as i32 as u32,
        2 => v as u16 as i16 as i32 as u32,
        _ => v,
    }
}

#[allow(clippy::manual_checked_ops)] // RISC-V semantics spelled explicitly
#[inline(always)]
fn alu_eval(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Slt => ((a as i32) < (b as i32)) as u32,
        AluOp::Sltu => (a < b) as u32,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        AluOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
        AluOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == i32::MIN as u32 && b == u32::MAX {
                a
            } else {
                ((a as i32) / (b as i32)) as u32
            }
        }
        AluOp::Divu => {
            if b == 0 {
                u32::MAX
            } else {
                a / b
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else if a == i32::MIN as u32 && b == u32::MAX {
                0
            } else {
                ((a as i32) % (b as i32)) as u32
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

#[inline(always)]
fn branch_eval(cond: BranchCond, a: u32, b: u32) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => (a as i32) < (b as i32),
        BranchCond::Ge => (a as i32) >= (b as i32),
        BranchCond::Ltu => a < b,
        BranchCond::Geu => a >= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NullEnv, SyntheticEnv};
    use assasin_isa::{Assembler, Reg};

    fn run_program(asm: Assembler, cfg: CoreConfig) -> Core {
        let program = asm.finish().expect("assembles");
        let mut core = Core::new(0, cfg, program, None);
        core.run_to_halt(&mut NullEnv);
        core
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut asm = Assembler::new();
        asm.li(Reg::A0, 21);
        asm.li(Reg::A1, 2);
        asm.mul(Reg::A2, Reg::A0, Reg::A1);
        asm.halt();
        let core = run_program(asm, CoreConfig::assasin_sb());
        assert_eq!(core.state(), &CoreState::Halted);
        assert_eq!(core.reg(Reg::A2), 42);
        // li (2) + li (2)... actually each li of a small const is 1 addi.
        assert_eq!(core.mix().total, 4);
        // mul pays 3 cycles, everything else 1.
        assert_eq!(core.cycles(), 3 + 3);
    }

    #[test]
    fn x0_is_hardwired() {
        let mut asm = Assembler::new();
        asm.li(Reg::ZERO, 99);
        asm.addi(Reg::A0, Reg::ZERO, 5);
        asm.halt();
        let core = run_program(asm, CoreConfig::assasin_sb());
        assert_eq!(core.reg(Reg::ZERO), 0);
        assert_eq!(core.reg(Reg::A0), 5);
    }

    #[test]
    fn loop_counts_correctly() {
        // Sum 1..=10 with a countdown loop.
        let mut asm = Assembler::new();
        asm.li(Reg::A0, 10);
        asm.li(Reg::A1, 0);
        let top = asm.label();
        asm.bind(top);
        asm.add(Reg::A1, Reg::A1, Reg::A0);
        asm.addi(Reg::A0, Reg::A0, -1);
        asm.bnez(Reg::A0, top);
        asm.halt();
        let core = run_program(asm, CoreConfig::assasin_sb());
        assert_eq!(core.reg(Reg::A1), 55);
        assert_eq!(core.mix().taken, 9);
        assert_eq!(core.mix().branches, 10);
    }

    #[test]
    fn snapshot_roundtrip_continues_identically() {
        // Sum a long countdown so a mid-run deadline lands inside the loop.
        let mut asm = Assembler::new();
        asm.li(Reg::A0, 500);
        asm.li(Reg::A1, 0);
        let top = asm.label();
        asm.bind(top);
        asm.add(Reg::A1, Reg::A1, Reg::A0);
        asm.addi(Reg::A0, Reg::A0, -1);
        asm.bnez(Reg::A0, top);
        asm.halt();
        let program = asm.finish().expect("assembles");
        let cfg = CoreConfig::assasin_sb();
        let mut original = Core::new(0, cfg, program.clone(), None);
        original.run(&mut NullEnv, SimTime::from_ns(100));
        assert_eq!(original.state(), &CoreState::Running, "deadline mid-loop");

        let mut enc = assasin_snap::Encoder::new();
        original.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = Core::new(0, cfg, program, None);
        let mut dec = assasin_snap::Decoder::new(&bytes);
        restored.load_snapshot(&mut dec).expect("load snapshot");
        dec.finish().expect("snapshot fully consumed");

        // Canonical bytes: re-saving the restored core is byte-identical.
        let mut enc2 = assasin_snap::Encoder::new();
        restored.save_state(&mut enc2);
        assert_eq!(bytes, enc2.into_bytes());

        // Continuation: both cores finish in lockstep.
        original.run_to_halt(&mut NullEnv);
        restored.run_to_halt(&mut NullEnv);
        assert_eq!(original.state(), restored.state());
        assert_eq!(original.cycles(), restored.cycles());
        assert_eq!(original.reg(Reg::A1), restored.reg(Reg::A1));
        assert_eq!(original.mix(), restored.mix());
        assert_eq!(original.breakdown(), restored.breakdown());
    }

    #[test]
    fn snapshot_rejects_mismatched_target() {
        let mut asm = Assembler::new();
        asm.halt();
        let program = asm.finish().expect("assembles");
        let core = Core::new(3, CoreConfig::assasin_sb(), program.clone(), None);
        let mut enc = assasin_snap::Encoder::new();
        core.save_state(&mut enc);
        let bytes = enc.into_bytes();
        // Wrong id: the section was routed to the wrong core.
        let mut other = Core::new(4, CoreConfig::assasin_sb(), program, None);
        let mut dec = assasin_snap::Decoder::new(&bytes);
        assert!(matches!(
            other.load_snapshot(&mut dec),
            Err(assasin_snap::SnapError::Malformed(_))
        ));
    }

    #[test]
    fn riscv_division_semantics() {
        let mut asm = Assembler::new();
        asm.li(Reg::A0, 7);
        asm.li(Reg::A1, 0);
        asm.div(Reg::A2, Reg::A0, Reg::A1); // div by zero -> all ones
        asm.rem(Reg::A3, Reg::A0, Reg::A1); // rem by zero -> dividend
        asm.halt();
        let core = run_program(asm, CoreConfig::assasin_sb());
        assert_eq!(core.reg(Reg::A2), u32::MAX);
        assert_eq!(core.reg(Reg::A3), 7);
    }

    #[test]
    fn scratchpad_roundtrip_and_latency() {
        let mut asm = Assembler::new();
        asm.li(Reg::A0, 0x1234);
        asm.sw(Reg::A0, Reg::ZERO, 16);
        asm.lw(Reg::A1, Reg::ZERO, 16);
        asm.halt();
        let mut cfg = CoreConfig::assasin_sp();
        cfg.scratchpad_cycles = 2;
        let core = run_program(asm, cfg);
        assert_eq!(core.reg(Reg::A1), 0x1234);
        assert_eq!(
            core.breakdown().stall_scratchpad,
            2,
            "one extra cycle per access"
        );
    }

    #[test]
    fn stream_sum_matches_golden() {
        // Sum bytes of stream 0, write the 4-byte total to stream 0 out on
        // exhaustion... (stream loads hang at end, so accumulate in sp).
        let mut asm = Assembler::new();
        let top = asm.label();
        asm.bind(top);
        asm.stream_load(Reg::A0, 0, 1);
        asm.add(Reg::A1, Reg::A1, Reg::A0);
        asm.sw(Reg::A1, Reg::ZERO, 0); // keep latest sum in scratchpad
        asm.j(top);
        let program = asm.finish().unwrap();

        let data: Vec<u8> = (0..=255u8).collect();
        let golden: u32 = data.iter().map(|&b| b as u32).sum();

        let mut env = SyntheticEnv::new(8, 64);
        env.set_input(0, &data);
        let mut core = Core::new(0, CoreConfig::assasin_sb(), program, None);
        core.run_to_halt(&mut env);
        assert_eq!(core.state(), &CoreState::Halted);
        assert_eq!(core.scratchpad().load(0, 4).unwrap() as u32, golden);
        assert_eq!(core.mix().stream_loads as usize, data.len() + 1);
    }

    #[test]
    fn stream_copy_roundtrip() {
        // Copy stream 0 -> out stream 0, word at a time.
        let mut asm = Assembler::new();
        let top = asm.label();
        asm.bind(top);
        asm.stream_load(Reg::A0, 0, 4);
        asm.stream_store(0, 4, Reg::A0);
        asm.j(top);
        let program = asm.finish().unwrap();

        let data: Vec<u8> = (0..1024u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut env = SyntheticEnv::new(8, 256);
        env.set_input(0, &data);
        let mut core = Core::new(0, CoreConfig::assasin_sb(), program, None);
        core.run_to_halt(&mut env);
        // Flush the partial final page like the firmware would.
        if let Some(tail) = core.sbuf_mut().flush(0).unwrap() {
            env.drain_page(0, 0, tail, SimTime::ZERO);
        }
        assert_eq!(env.output(0), &data[..]);
    }

    #[test]
    fn stream_stall_accounting_under_slow_input() {
        let mut asm = Assembler::new();
        let top = asm.label();
        asm.bind(top);
        asm.stream_load(Reg::A0, 0, 4);
        asm.j(top);
        let program = asm.finish().unwrap();

        let data = vec![0u8; 64 * 1024];
        let mut env = SyntheticEnv::new(8, 4096);
        env.set_input(0, &data);
        env.set_rate(Some(0.5e9)); // 0.5 GB/s: slower than the core scans
        let mut core = Core::new(0, CoreConfig::assasin_sb(), program, None);
        core.run_to_halt(&mut env);
        assert_eq!(core.state(), &CoreState::Halted);
        assert!(
            core.breakdown().stall_stream > core.breakdown().busy,
            "input-bound run must be dominated by stream stalls: {:?}",
            core.breakdown()
        );
    }

    #[test]
    fn dram_window_load_uses_hierarchy() {
        use assasin_mem::Dram;
        let mut asm = Assembler::new();
        asm.lui(Reg::S0, 0x10000); // DRAM_BASE
        asm.lw(Reg::A0, Reg::S0, 0);
        asm.lw(Reg::A1, Reg::S0, 4);
        asm.halt();
        let program = asm.finish().unwrap();
        let dram = Dram::lpddr5_8gbps().into_shared();
        let mut core = Core::new(0, CoreConfig::baseline(), program, Some(dram));
        let mut w = DramWindow::new(4096, 4096);
        w.stage(0, &[1, 0, 0, 0, 2, 0, 0, 0], SimTime::ZERO);
        core.set_window(w);
        core.run_to_halt(&mut NullEnv);
        assert_eq!(core.state(), &CoreState::Halted);
        assert_eq!(core.reg(Reg::A0), 1);
        assert_eq!(core.reg(Reg::A1), 2);
        // First lw misses to DRAM, second hits L1.
        assert!(core.breakdown().stall_dram > 0);
        let (hits, misses) = core.hierarchy().unwrap().l1_counters().unwrap();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn pingpong_swap_flow() {
        // Scan banks byte by byte until exhausted; count bytes in a3.
        let mut asm = Assembler::new();
        let outer = asm.label();
        let done = asm.label();
        asm.bind(outer);
        asm.buf_swap(0);
        asm.csrr(Reg::A0, Core::CSR_IN_BANK_LEN);
        asm.beqz(Reg::A0, done);
        asm.lui(Reg::S0, 0x20000); // STAGING_IN_BASE
        asm.li(Reg::T0, 0);
        let inner = asm.label();
        asm.bind(inner);
        asm.add(Reg::T1, Reg::S0, Reg::T0);
        asm.lbu(Reg::T2, Reg::T1, 0);
        asm.add(Reg::A3, Reg::A3, Reg::T2);
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.bltu(Reg::T0, Reg::A0, inner);
        asm.j(outer);
        asm.bind(done);
        asm.halt();
        let program = asm.finish().unwrap();

        let data: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        let golden: u32 = data.iter().map(|&b| b as u32).sum();
        let mut env = SyntheticEnv::new(1, 64);
        env.set_banks(&data, 128);
        let mut core = Core::new(0, CoreConfig::assasin_sp(), program, None);
        core.run_to_halt(&mut env);
        assert_eq!(core.state(), &CoreState::Halted, "{:?}", core.state());
        assert_eq!(core.reg(Reg::A3), golden);
    }

    #[test]
    fn wedges_on_bad_address() {
        let mut asm = Assembler::new();
        asm.lui(Reg::S0, 0x0F000);
        asm.lw(Reg::A0, Reg::S0, 0); // far past scratchpad
        asm.halt();
        let program = asm.finish().unwrap();
        let mut core = Core::new(0, CoreConfig::assasin_sb(), program, None);
        core.run_to_halt(&mut NullEnv);
        assert!(matches!(core.state(), CoreState::Wedged(_)));
    }

    #[test]
    fn deadline_bounds_execution() {
        let mut asm = Assembler::new();
        let top = asm.label();
        asm.bind(top);
        asm.addi(Reg::A0, Reg::A0, 1);
        asm.j(top);
        let program = asm.finish().unwrap();
        let mut core = Core::new(0, CoreConfig::assasin_sb(), program, None);
        core.run(&mut NullEnv, SimTime::from_us(1));
        assert_eq!(core.state(), &CoreState::Running);
        let c1 = core.cycles();
        assert!((990..=1010).contains(&c1), "cycles {c1}");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::{CoreConfig, NullEnv, SyntheticEnv};
    use assasin_isa::{csr, Assembler, Reg};

    fn run(asm: Assembler) -> Core {
        let mut core = Core::new(0, CoreConfig::assasin_sb(), asm.finish().unwrap(), None);
        core.run_to_halt(&mut NullEnv);
        core
    }

    #[test]
    fn csr_cycle_counts_up() {
        let mut asm = Assembler::new();
        asm.csrr(Reg::A0, csr::CYCLE);
        asm.nop();
        asm.nop();
        asm.csrr(Reg::A1, csr::CYCLE);
        asm.halt();
        let core = run(asm);
        assert!(core.reg(Reg::A1) > core.reg(Reg::A0));
    }

    #[test]
    fn stream_csrs_track_head_and_tail() {
        let mut asm = Assembler::new();
        asm.stream_load(Reg::A0, 0, 4);
        asm.stream_store(1, 4, Reg::A0);
        asm.csrr(Reg::A2, csr::in_head(0));
        asm.csrr(Reg::A3, csr::out_tail(1));
        asm.halt();
        let mut env = SyntheticEnv::new(8, 64);
        env.set_input(0, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut core = Core::new(0, CoreConfig::assasin_sb(), asm.finish().unwrap(), None);
        core.run_to_halt(&mut env);
        assert_eq!(core.state(), &CoreState::Halted);
        assert_eq!(core.reg(Reg::A2), 4, "in head after one word");
        assert_eq!(core.reg(Reg::A3), 4, "out tail after one word");
    }

    #[test]
    fn stream_avail_and_eos_report_state() {
        let mut asm = Assembler::new();
        asm.stream_avail(Reg::A0, 0); // triggers refill: full input queued
        asm.stream_eos(Reg::A1, 0); // not exhausted yet
        asm.stream_load(Reg::A2, 0, 4);
        asm.stream_eos(Reg::A3, 0); // all consumed + closed -> 1
        asm.halt();
        let mut env = SyntheticEnv::new(8, 64);
        env.set_input(0, &[9, 0, 0, 0]);
        let mut core = Core::new(0, CoreConfig::assasin_sb(), asm.finish().unwrap(), None);
        core.run_to_halt(&mut env);
        assert_eq!(core.reg(Reg::A0), 4, "four bytes available");
        assert_eq!(core.reg(Reg::A1), 0, "not exhausted");
        assert_eq!(core.reg(Reg::A2), 9);
        assert_eq!(core.reg(Reg::A3), 1, "exhausted after consuming");
    }

    #[test]
    fn call_and_return_through_ra() {
        let mut asm = Assembler::new();
        let func = asm.label();
        let done = asm.label();
        asm.li(Reg::A0, 5);
        asm.jal(Reg::RA, func);
        asm.j(done);
        asm.bind(func);
        asm.addi(Reg::A0, Reg::A0, 37);
        asm.ret();
        asm.bind(done);
        asm.halt();
        let core = run(asm);
        assert_eq!(core.reg(Reg::A0), 42);
        assert_eq!(core.state(), &CoreState::Halted);
    }

    #[test]
    fn narrow_loads_sign_extend() {
        let mut asm = Assembler::new();
        asm.li(Reg::T0, 0xFF); // byte 0xFF in scratchpad
        asm.sb(Reg::T0, Reg::ZERO, 0);
        asm.lb(Reg::A0, Reg::ZERO, 0); // signed: -1
        asm.lbu(Reg::A1, Reg::ZERO, 0); // unsigned: 255
        asm.li(Reg::T0, 0x8000);
        asm.sh(Reg::T0, Reg::ZERO, 4);
        asm.lh(Reg::A2, Reg::ZERO, 4);
        asm.lhu(Reg::A3, Reg::ZERO, 4);
        asm.halt();
        let core = run(asm);
        assert_eq!(core.reg(Reg::A0), u32::MAX);
        assert_eq!(core.reg(Reg::A1), 255);
        assert_eq!(core.reg(Reg::A2), 0xFFFF_8000);
        assert_eq!(core.reg(Reg::A3), 0x8000);
    }

    #[test]
    fn shift_semantics_match_riscv() {
        let mut asm = Assembler::new();
        asm.li(Reg::T0, -8);
        asm.srai(Reg::A0, Reg::T0, 1); // arithmetic: -4
        asm.srli(Reg::A1, Reg::T0, 1); // logical: big positive
        asm.li(Reg::T1, 33);
        asm.sll(Reg::A2, Reg::T0, Reg::T1); // shamt masked to 1
        asm.halt();
        let core = run(asm);
        assert_eq!(core.reg(Reg::A0) as i32, -4);
        assert_eq!(core.reg(Reg::A1), (-8i32 as u32) >> 1);
        assert_eq!(core.reg(Reg::A2), (-8i32 as u32) << 1);
    }

    #[test]
    fn mulh_variants() {
        let mut asm = Assembler::new();
        asm.li(Reg::T0, -2);
        asm.li(Reg::T1, 3);
        asm.mulh(Reg::A0, Reg::T0, Reg::T1); // signed high of -6 = -1
        asm.mulhu(Reg::A1, Reg::T0, Reg::T1); // unsigned high of huge product
        asm.halt();
        let core = run(asm);
        assert_eq!(core.reg(Reg::A0), u32::MAX);
        let expect = ((0xFFFF_FFFEu64 * 3) >> 32) as u32;
        assert_eq!(core.reg(Reg::A1), expect);
    }

    #[test]
    fn wedges_on_store_to_input_staging() {
        let mut asm = Assembler::new();
        asm.lui(Reg::S0, 0x20000);
        asm.sw(Reg::A0, Reg::S0, 0);
        asm.halt();
        let mut core = Core::new(0, CoreConfig::assasin_sp(), asm.finish().unwrap(), None);
        core.run_to_halt(&mut NullEnv);
        assert!(matches!(core.state(), CoreState::Wedged(m) if m.contains("input staging")));
    }

    #[test]
    fn wedges_on_pc_past_end() {
        let mut asm = Assembler::new();
        asm.nop(); // falls off the end
        let mut core = Core::new(0, CoreConfig::assasin_sb(), asm.finish().unwrap(), None);
        core.run_to_halt(&mut NullEnv);
        assert!(matches!(core.state(), CoreState::Wedged(m) if m.contains("past end")));
    }

    #[test]
    fn taken_branches_cost_the_penalty() {
        // Two programs: taken vs not-taken branch.
        let build = |taken: bool| {
            let mut asm = Assembler::new();
            let l = asm.label();
            asm.li(Reg::T0, if taken { 0 } else { 1 });
            asm.beqz(Reg::T0, l);
            asm.nop();
            asm.bind(l);
            asm.halt();
            let mut core = Core::new(0, CoreConfig::assasin_sb(), asm.finish().unwrap(), None);
            core.run_to_halt(&mut NullEnv);
            core.cycles()
        };
        let taken = build(true);
        let not_taken = build(false);
        // Taken: li + beq(1+2) + halt = 5; not taken: li + beq + nop + halt = 4.
        assert_eq!(taken, 5);
        assert_eq!(not_taken, 4);
    }
}
