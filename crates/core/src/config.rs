//! Table IV configurations.

use assasin_mem::{HierarchyConfig, StreamBufferConfig};
use assasin_sim::Clock;

/// Which in-SSD compute-engine architecture a core models (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// State-of-the-art general-purpose computational SSD (Figure 4):
    /// data staged in SSD DRAM, accessed through an L1+L2 cache hierarchy.
    Baseline,
    /// Baseline plus the DCPT prefetcher.
    Prefetch,
    /// ASSASIN with conventional ping-pong scratchpads staging flash data
    /// (bypassing DRAM) and a function-state scratchpad.
    AssasinSp,
    /// ASSASIN with the streambuffer and the stream ISA extension.
    AssasinSb,
    /// AssasinSb plus an L1 data cache backed by DRAM for oversized
    /// function state.
    AssasinSbCache,
    /// The UDP accelerator lane (application-specific comparator),
    /// modeled analytically by [`UdpLane`](crate::UdpLane).
    Udp,
}

impl EngineKind {
    /// All six evaluated configurations, in the paper's order.
    pub const ALL: [EngineKind; 6] = [
        EngineKind::Baseline,
        EngineKind::Udp,
        EngineKind::Prefetch,
        EngineKind::AssasinSp,
        EngineKind::AssasinSb,
        EngineKind::AssasinSbCache,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Baseline => "Baseline",
            EngineKind::Prefetch => "Prefetch",
            EngineKind::AssasinSp => "AssasinSp",
            EngineKind::AssasinSb => "AssasinSb",
            EngineKind::AssasinSbCache => "AssasinSb$",
            EngineKind::Udp => "UDP",
        }
    }

    /// True for the variants that source flash data directly (bypassing
    /// SSD DRAM): the three ASSASIN variants.
    pub fn bypasses_dram(self) -> bool {
        matches!(
            self,
            EngineKind::AssasinSp | EngineKind::AssasinSb | EngineKind::AssasinSbCache
        )
    }

    /// True for variants that use the stream ISA extension.
    pub fn has_stream_isa(self) -> bool {
        matches!(self, EngineKind::AssasinSb | EngineKind::AssasinSbCache)
    }
}

/// Full per-core configuration.
#[derive(Debug, Clone, Copy)]
pub struct CoreConfig {
    /// Which Table IV engine this core models.
    pub kind: EngineKind,
    /// Core clock (1 GHz nominal; Section VI-F adjusts it).
    pub clock: Clock,
    /// Function-state scratchpad size in bytes (64 KiB for ASSASIN
    /// variants, 256 KiB for UDP).
    pub scratchpad_bytes: u32,
    /// Scratchpad access time in cycles (1 nominal; 2 after the
    /// Section VI-F timing adjustment for AssasinSp).
    pub scratchpad_cycles: u32,
    /// Streambuffer shape (Sb variants).
    pub streambuffer: StreamBufferConfig,
    /// Cache hierarchy (Baseline, Prefetch, Sb$).
    pub hierarchy: Option<HierarchyConfig>,
    /// Ping-pong staging bank size in bytes (Sp variant): 64 KiB input +
    /// 64 KiB output.
    pub staging_bytes: u32,
    /// Taken-branch penalty cycles (ibex-class front end).
    pub branch_penalty: u32,
    /// Multiply latency in cycles.
    pub mul_cycles: u32,
    /// Divide latency in cycles.
    pub div_cycles: u32,
}

impl CoreConfig {
    fn common(kind: EngineKind) -> CoreConfig {
        CoreConfig {
            kind,
            clock: Clock::default(),
            scratchpad_bytes: 64 * 1024,
            scratchpad_cycles: 1,
            streambuffer: StreamBufferConfig::default(),
            hierarchy: None,
            staging_bytes: 64 * 1024,
            branch_penalty: 2,
            mul_cycles: 3,
            div_cycles: 35,
        }
    }

    /// Table IV `Baseline`: L1D 32K/8way + L2 256K/16way over DRAM.
    pub fn baseline() -> CoreConfig {
        CoreConfig {
            hierarchy: Some(HierarchyConfig::baseline()),
            ..CoreConfig::common(EngineKind::Baseline)
        }
    }

    /// Table IV `Prefetch`: Baseline plus DCPT.
    pub fn prefetch() -> CoreConfig {
        CoreConfig {
            hierarchy: Some(HierarchyConfig::with_prefetcher()),
            ..CoreConfig::common(EngineKind::Prefetch)
        }
    }

    /// Table IV `AssasinSp`: 64 KiB function-state scratchpad plus
    /// 64 KiB + 64 KiB input/output ping-pong staging scratchpads.
    pub fn assasin_sp() -> CoreConfig {
        CoreConfig::common(EngineKind::AssasinSp)
    }

    /// Table IV `AssasinSb`: 64 KiB scratchpad plus 64 KiB input and
    /// 64 KiB output streambuffers (S=8, P=2) with the stream ISA.
    pub fn assasin_sb() -> CoreConfig {
        CoreConfig::common(EngineKind::AssasinSb)
    }

    /// Table IV `AssasinSb$`: AssasinSb plus a 32 KiB 8-way L1D backed by
    /// DRAM.
    pub fn assasin_sb_cache() -> CoreConfig {
        CoreConfig {
            hierarchy: Some(assasin_mem::HierarchyConfig {
                l2: None,
                ..assasin_mem::HierarchyConfig::baseline()
            }),
            ..CoreConfig::common(EngineKind::AssasinSbCache)
        }
    }

    /// Table IV `UDP`: 256 KiB private scratchpad, data copied in from
    /// DRAM by the firmware. (Executed analytically — see
    /// [`UdpLane`](crate::UdpLane).)
    pub fn udp() -> CoreConfig {
        CoreConfig {
            scratchpad_bytes: 256 * 1024,
            ..CoreConfig::common(EngineKind::Udp)
        }
    }

    /// Configuration for `kind`, with nominal (pre-Section-VI-F) timing.
    pub fn for_kind(kind: EngineKind) -> CoreConfig {
        match kind {
            EngineKind::Baseline => CoreConfig::baseline(),
            EngineKind::Prefetch => CoreConfig::prefetch(),
            EngineKind::AssasinSp => CoreConfig::assasin_sp(),
            EngineKind::AssasinSb => CoreConfig::assasin_sb(),
            EngineKind::AssasinSbCache => CoreConfig::assasin_sb_cache(),
            EngineKind::Udp => CoreConfig::udp(),
        }
    }

    /// Applies the Section VI-F timing adjustment: AssasinSb variants run
    /// with an 11% shorter clock period (the streambuffer removes the
    /// dcache from the critical path); AssasinSp scratchpad accesses take
    /// 2 cycles.
    pub fn timing_adjusted(mut self) -> CoreConfig {
        match self.kind {
            EngineKind::AssasinSb | EngineKind::AssasinSbCache => {
                self.clock = Clock::from_period_ps(890);
            }
            EngineKind::AssasinSp => {
                self.scratchpad_cycles = 2;
            }
            _ => {}
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_shapes() {
        assert!(CoreConfig::baseline().hierarchy.is_some());
        assert!(CoreConfig::baseline().hierarchy.unwrap().l2.is_some());
        assert!(!CoreConfig::baseline().hierarchy.unwrap().prefetch);
        assert!(CoreConfig::prefetch().hierarchy.unwrap().prefetch);
        assert!(CoreConfig::assasin_sp().hierarchy.is_none());
        assert!(CoreConfig::assasin_sb().hierarchy.is_none());
        let sbc = CoreConfig::assasin_sb_cache().hierarchy.unwrap();
        assert!(sbc.l1.is_some() && sbc.l2.is_none());
        assert_eq!(CoreConfig::udp().scratchpad_bytes, 256 * 1024);
    }

    #[test]
    fn adjusted_timing_matches_section_vi_f() {
        let sb = CoreConfig::assasin_sb().timing_adjusted();
        assert_eq!(sb.clock.period_ps(), 890);
        let sp = CoreConfig::assasin_sp().timing_adjusted();
        assert_eq!(sp.scratchpad_cycles, 2);
        assert_eq!(sp.clock.period_ps(), 1000);
        let base = CoreConfig::baseline().timing_adjusted();
        assert_eq!(base.clock.period_ps(), 1000);
    }

    #[test]
    fn kind_predicates() {
        assert!(EngineKind::AssasinSb.bypasses_dram());
        assert!(!EngineKind::Baseline.bypasses_dram());
        assert!(EngineKind::AssasinSbCache.has_stream_isa());
        assert!(!EngineKind::AssasinSp.has_stream_isa());
        assert_eq!(EngineKind::ALL.len(), 6);
        assert_eq!(EngineKind::AssasinSbCache.label(), "AssasinSb$");
    }
}
