//! Analytical model of a UDP accelerator lane (Table IV's comparator).
//!
//! UDP ("Unstructured Data Processor", Fang et al.) is the paper's
//! application-specific comparator: lanes with private scratchpads, a
//! multiway-dispatch ISA that folds branch chains into single dispatch
//! steps, and operation fusion for unstructured-data processing. The paper
//! runs UDPSim; we model the lane analytically from the *measured* dynamic
//! instruction mix of the scalar kernel:
//!
//! * conditional branches and jumps fold into multiway dispatch (free);
//! * remaining operations fuse at [`UdpLane::FUSION`] ops/cycle;
//! * multiply/divide keep their multi-cycle latencies (no fusion);
//! * data reaches the lane only after the firmware copies it from SSD DRAM
//!   into the lane scratchpad, so the *SSD-level* data path (and its memory
//!   wall) is identical to Baseline — that part is modeled by the SSD, not
//!   here.
//!
//! This preserves the two behaviours Figures 13/14/22 need from UDP: it
//! accelerates branchy parsing-style code (~1.3x on PSF, the paper's own
//! number) and it stays DRAM-fed, so it cannot beat the memory wall.

use crate::InstrMix;
use assasin_sim::Clock;

/// Dynamic profile of a kernel, extracted from a functional run of the
/// scalar version ([`InstrMix`]) over a known input size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// Retired instructions per input byte.
    pub instr_per_byte: f64,
    /// Fraction of instructions that are conditional branches or jumps.
    pub branch_frac: f64,
    /// Fraction of instructions that are multiply/divide.
    pub muldiv_frac: f64,
    /// Output bytes produced per input byte.
    pub out_per_in: f64,
}

impl KernelProfile {
    /// Builds a profile from a measured mix over `bytes_in` input bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_in` is zero or no instructions retired.
    pub fn from_mix(mix: &InstrMix, bytes_in: u64, bytes_out: u64) -> Self {
        assert!(bytes_in > 0, "profile needs a non-empty input");
        assert!(mix.total > 0, "profile needs retired instructions");
        KernelProfile {
            instr_per_byte: mix.total as f64 / bytes_in as f64,
            branch_frac: (mix.branches + mix.jumps) as f64 / mix.total as f64,
            muldiv_frac: mix.muldiv as f64 / mix.total as f64,
            out_per_in: bytes_out as f64 / bytes_in as f64,
        }
    }
}

/// One UDP lane.
#[derive(Debug, Clone, Copy)]
pub struct UdpLane {
    clock: Clock,
    mul_cycles: u32,
    div_cycles: u32,
}

impl UdpLane {
    /// Net throughput factor of the UDP lane relative to the scalar
    /// instruction count of the scratchpad-walking kernel: multiway
    /// dispatch folds branch resolution (no misprediction/penalty cycles),
    /// but the lane lacks the scalar core's forwarding on integer
    /// accumulation chains. Calibrated so the SSD-level UDP result
    /// reproduces the paper's own UDPSim number (~1.3x over Baseline on
    /// the PSF pipeline, Section VI-C).
    pub const FUSION: f64 = 0.85;

    /// Creates a lane at the given clock (1 GHz in Table IV).
    pub fn new(clock: Clock) -> Self {
        UdpLane {
            clock,
            mul_cycles: 3,
            div_cycles: 35,
        }
    }

    /// Compute cycles the lane needs per input byte for a kernel with the
    /// given profile.
    ///
    /// Multiway dispatch folds branch resolution into issuing the next
    /// operation bundle and fuses simple operations, giving a constant
    /// [`UdpLane::FUSION`] speedup over the scalar instruction stream —
    /// calibrated against the paper's own UDPSim result (1.3x over
    /// Baseline on PSF, Section VI-C). Multi-cycle mul/div do not fuse.
    pub fn cycles_per_byte(&self, p: &KernelProfile) -> f64 {
        let muldiv = p.instr_per_byte * p.muldiv_frac;
        let plain = (p.instr_per_byte - muldiv).max(0.0);
        let mul_latency = (self.mul_cycles + self.div_cycles) as f64 / 2.0;
        plain / Self::FUSION + muldiv * mul_latency
    }

    /// Peak compute throughput in bytes/second for a kernel profile
    /// (before any SSD-level memory limits).
    pub fn compute_bps(&self, p: &KernelProfile) -> f64 {
        let cpb = self.cycles_per_byte(p);
        if cpb <= 0.0 {
            return f64::INFINITY;
        }
        self.clock.freq_hz() / cpb
    }

    /// The lane's clock.
    pub fn clock(&self) -> Clock {
        self.clock
    }
}

impl Default for UdpLane {
    fn default() -> Self {
        UdpLane::new(Clock::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(ipb: f64, branch: f64, muldiv: f64) -> KernelProfile {
        KernelProfile {
            instr_per_byte: ipb,
            branch_frac: branch,
            muldiv_frac: muldiv,
            out_per_in: 1.0,
        }
    }

    #[test]
    fn fusion_is_uniform_over_plain_work() {
        let lane = UdpLane::default();
        let branchy = profile(6.0, 0.4, 0.0);
        let straight = profile(6.0, 0.0, 0.0);
        // Branches fold into dispatch at the same fused rate.
        assert!((lane.cycles_per_byte(&branchy) - lane.cycles_per_byte(&straight)).abs() < 1e-12);
    }

    #[test]
    fn muldiv_is_not_fused() {
        let lane = UdpLane::default();
        let with_mul = profile(4.0, 0.0, 0.25);
        let without = profile(4.0, 0.0, 0.0);
        assert!(lane.cycles_per_byte(&with_mul) > lane.cycles_per_byte(&without));
    }

    #[test]
    fn profile_from_mix() {
        let mix = InstrMix {
            total: 1000,
            branches: 200,
            jumps: 100,
            muldiv: 50,
            ..Default::default()
        };
        let p = KernelProfile::from_mix(&mix, 500, 250);
        assert!((p.instr_per_byte - 2.0).abs() < 1e-12);
        assert!((p.branch_frac - 0.3).abs() < 1e-12);
        assert!((p.muldiv_frac - 0.05).abs() < 1e-12);
        assert!((p.out_per_in - 0.5).abs() < 1e-12);
    }

    #[test]
    fn throughput_is_clock_over_cpb() {
        let lane = UdpLane::default();
        let p = profile(UdpLane::FUSION, 0.0, 0.0);
        // FUSION ipb at the FUSION rate -> 1 cycle/byte -> 1 GB/s at 1 GHz.
        assert!((lane.compute_bps(&p) - 1e9).abs() < 1e3);
    }
}
