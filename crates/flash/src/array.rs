//! The multi-channel flash array.

use crate::counters;
use crate::fault::{FaultConfig, PageHealth, ReliabilityStats};
use crate::{FlashChip, FlashError, FlashGeometry, FlashTiming, PhysPageAddr};
use assasin_sim::{SimDur, SimTime, Timeline};
use bytes::Bytes;

/// Per-channel traffic statistics, reported in Figure 18.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Bytes read out of the channel.
    pub bytes_read: u64,
    /// Bytes written into the channel.
    pub bytes_written: u64,
    /// Page reads served.
    pub page_reads: u64,
    /// Page programs served.
    pub page_programs: u64,
}

#[derive(Debug, Clone)]
struct Channel {
    bus: Timeline,
    chips: Vec<FlashChip>,
    stats: ChannelStats,
}

/// The flash array: channels of interleaved chips behind per-channel buses,
/// managed by one flash controller each (Section II-A, Figure 2).
///
/// Read timing: the chip senses the page (tR, chip busy), then the page
/// streams over the channel bus (bus busy for `page_bytes / bus_rate`).
/// Write timing: the bus delivers data to the chip's page register first,
/// then the chip programs (tPROG). Chips on the same channel overlap their
/// array operations and contend only for the bus — the rank-level
/// parallelism analogy of Section II-A.
///
/// Cloning an array is cheap: chip page stores are copy-on-write
/// ([`FlashChip`]), so a clone shares every programmed page until one side
/// writes.
#[derive(Debug, Clone)]
pub struct FlashArray {
    geom: FlashGeometry,
    timing: FlashTiming,
    /// Bus time for one full page, precomputed from `timing` — every page
    /// op pays this, and recomputing it per page (a float division) was
    /// measurable in plan scheduling.
    page_xfer: SimDur,
    channels: Vec<Channel>,
    fault: FaultConfig,
    /// Cumulative reliability counters; deliberately NOT cleared by
    /// `reset_stats`/`reset_time` — faults during dataset loading are part
    /// of the device's history.
    rel: ReliabilityStats,
}

impl FlashArray {
    /// Creates an erased array with fault injection disabled.
    pub fn new(geom: FlashGeometry, timing: FlashTiming) -> Self {
        Self::with_faults(geom, timing, FaultConfig::disabled())
    }

    /// Creates an erased array with the given fault-injection config.
    pub fn with_faults(geom: FlashGeometry, timing: FlashTiming, fault: FaultConfig) -> Self {
        let channels = (0..geom.channels)
            .map(|ch| Channel {
                bus: Timeline::new(format!("channel-{ch}")),
                chips: (0..geom.chips_per_channel)
                    .map(|c| FlashChip::new(&geom, ch, c))
                    .collect(),
                stats: ChannelStats::default(),
            })
            .collect();
        FlashArray {
            geom,
            timing,
            page_xfer: timing.transfer_time(geom.page_bytes),
            channels,
            fault,
            rel: ReliabilityStats::default(),
        }
    }

    /// The active fault-injection config.
    pub fn fault_config(&self) -> &FaultConfig {
        &self.fault
    }

    /// Cumulative reliability counters for this array (never reset between
    /// experiment phases).
    pub fn reliability_stats(&self) -> ReliabilityStats {
        self.rel
    }

    /// The configured geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geom
    }

    /// The configured timing.
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    /// Channel-bus occupancy of one full page transfer (precomputed).
    pub fn page_transfer_time(&self) -> SimDur {
        self.page_xfer
    }

    fn check(&self, addr: PhysPageAddr) -> Result<(), FlashError> {
        if self.geom.contains(addr) {
            Ok(())
        } else {
            Err(FlashError::OutOfRange(addr))
        }
    }

    /// Returns a page's data without touching timelines or stats — the
    /// firmware's control-plane view for task decomposition. `None` for
    /// out-of-range or unwritten pages.
    pub fn peek_page(&self, addr: PhysPageAddr) -> Option<Bytes> {
        if !self.geom.contains(addr) {
            return None;
        }
        self.channels[addr.channel as usize].chips[addr.chip as usize].peek(&self.geom, addr)
    }

    /// Reads a page: returns its data and the time the last byte crosses
    /// the channel bus (when a consumer — DRAM stager, streambuffer — has
    /// the full page).
    ///
    /// # Errors
    ///
    /// Fails if the address is out of range or the page was never
    /// programmed.
    pub fn read_page(
        &mut self,
        addr: PhysPageAddr,
        ready: SimTime,
    ) -> Result<(Bytes, SimTime), FlashError> {
        self.read_page_detailed(addr, ready)
            .map(|(data, done, _)| (data, done))
    }

    /// Like [`FlashArray::read_page`], but also exposes the ECC outcome
    /// ([`PageHealth`]) so the FTL can account retries and corrections.
    ///
    /// # Errors
    ///
    /// Same as [`FlashArray::read_page`], plus
    /// [`FlashError::Uncorrectable`] when fault injection deems the page
    /// unreadable after the full read-retry ladder (the chip time for every
    /// sense is still charged).
    pub fn read_page_detailed(
        &mut self,
        addr: PhysPageAddr,
        ready: SimTime,
    ) -> Result<(Bytes, SimTime, PageHealth), FlashError> {
        self.check(addr)?;
        let page_bytes = self.geom.page_bytes;
        let t_read = self.timing.t_read;
        let xfer = self.page_xfer;
        let fault = self.fault;
        let channel = &mut self.channels[addr.channel as usize];
        let (data, sensed, health) = match channel.chips[addr.chip as usize]
            .sense(&self.geom, &fault, addr, ready, t_read)
        {
            Ok(ok) => ok,
            Err(e) => {
                if let FlashError::Uncorrectable { .. } = e {
                    self.rel.page_reads += 1;
                    self.rel.uncorrectable += 1;
                    self.rel.read_retries += fault.read_retry_limit as u64;
                    counters::record_uncorrectable(fault.read_retry_limit as u64);
                }
                return Err(e);
            }
        };
        self.rel.page_reads += 1;
        if fault.enabled {
            self.rel.read_retries += health.retries() as u64;
            if health.corrected() {
                self.rel.ecc_corrected += 1;
            }
            counters::record_read(health.retries() as u64, health.corrected());
        }
        let bus_grant = channel.bus.acquire(sensed, xfer);
        channel.stats.bytes_read += page_bytes as u64;
        channel.stats.page_reads += 1;
        Ok((data, bus_grant.end, health))
    }

    /// Writes (programs) a page: the bus moves data in, then the chip
    /// programs. Returns program completion time.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range addresses, wrong page sizes, or programming a
    /// page that has not been erased.
    pub fn write_page(
        &mut self,
        addr: PhysPageAddr,
        data: Bytes,
        ready: SimTime,
    ) -> Result<SimTime, FlashError> {
        self.write_page_detailed(addr, data, ready)
            .map(|(_, prog)| prog)
    }

    /// Like [`FlashArray::write_page`], but exposes both the bus-transfer
    /// completion (when the source buffer frees) and the program
    /// completion (when the data is durable). Chips program in the
    /// background, so back-to-back writes pipeline across chips.
    ///
    /// # Errors
    ///
    /// Same as [`FlashArray::write_page`].
    pub fn write_page_detailed(
        &mut self,
        addr: PhysPageAddr,
        data: Bytes,
        ready: SimTime,
    ) -> Result<(SimTime, SimTime), FlashError> {
        self.check(addr)?;
        let xfer = self.page_xfer;
        let t_prog = self.timing.t_prog;
        let page_bytes = self.geom.page_bytes;
        let fault = self.fault;
        let channel = &mut self.channels[addr.channel as usize];
        let bus_grant = channel.bus.acquire(ready, xfer);
        let done = match channel.chips[addr.chip as usize].program(
            &self.geom,
            &fault,
            addr,
            data,
            bus_grant.end,
            t_prog,
        ) {
            Ok(done) => done,
            Err(e) => {
                if let FlashError::ProgramFailed(_) = e {
                    self.rel.program_fails += 1;
                    self.rel.grown_bad_blocks += 1;
                    counters::record_grown_bad();
                }
                return Err(e);
            }
        };
        channel.stats.bytes_written += page_bytes as u64;
        channel.stats.page_programs += 1;
        Ok((bus_grant.end, done))
    }

    /// Erases a block on a chip. Returns completion time.
    ///
    /// # Errors
    ///
    /// Fails if the (channel, chip, plane, block) tuple is out of range.
    pub fn erase_block(
        &mut self,
        channel: u32,
        chip: u32,
        plane: u32,
        block: u32,
        ready: SimTime,
    ) -> Result<SimTime, FlashError> {
        let probe = PhysPageAddr {
            channel,
            chip,
            plane,
            block,
            page: 0,
        };
        self.check(probe)?;
        let t_erase = self.timing.t_erase;
        let fault = self.fault;
        let ch = &mut self.channels[channel as usize];
        match ch.chips[chip as usize].erase_block(&self.geom, &fault, plane, block, ready, t_erase)
        {
            Ok(done) => Ok(done),
            Err(e) => {
                if let FlashError::EraseFailed { .. } = e {
                    self.rel.erase_fails += 1;
                    self.rel.grown_bad_blocks += 1;
                    counters::record_grown_bad();
                }
                Err(e)
            }
        }
    }

    /// True if the block has been marked grown-bad.
    pub fn is_bad_block(&self, channel: u32, chip: u32, plane: u32, block: u32) -> bool {
        self.channels[channel as usize].chips[chip as usize].is_bad(&self.geom, plane, block)
    }

    /// Times the block has been erased (wear / program-epoch accounting).
    pub fn erase_count(&self, channel: u32, chip: u32, plane: u32, block: u32) -> u32 {
        self.channels[channel as usize].chips[chip as usize].erase_count(&self.geom, plane, block)
    }

    /// True if the page holds programmed data.
    pub fn is_written(&self, addr: PhysPageAddr) -> bool {
        self.geom.contains(addr)
            && self.channels[addr.channel as usize].chips[addr.chip as usize]
                .is_written(&self.geom, addr)
    }

    /// Traffic statistics for one channel.
    pub fn channel_stats(&self, channel: u32) -> ChannelStats {
        self.channels[channel as usize].stats
    }

    /// Bus busy time for one channel.
    pub fn channel_busy(&self, channel: u32) -> SimDur {
        self.channels[channel as usize].bus.busy_time()
    }

    /// When the channel bus next frees.
    pub fn channel_free_at(&self, channel: u32) -> SimTime {
        self.channels[channel as usize].bus.free_at()
    }

    /// Aggregate peak read bandwidth of the array in bytes/second.
    pub fn peak_read_bw(&self) -> f64 {
        self.geom.channels as f64 * self.timing.channel_read_bw()
    }

    /// Resets per-channel statistics (steady-state measurement windows).
    pub fn reset_stats(&mut self) {
        for ch in &mut self.channels {
            ch.stats = ChannelStats::default();
            ch.bus.reset_stats();
        }
    }

    /// Returns every chip and bus to idle at t = 0, keeping data (used
    /// between dataset loading and the measured run).
    pub fn reset_time(&mut self) {
        for ch in &mut self.channels {
            ch.stats = ChannelStats::default();
            ch.bus.reset_time();
            for chip in &mut ch.chips {
                chip.reset_time();
            }
        }
    }

    /// Total programmed pages across every chip (fork-cost accounting).
    pub fn written_pages(&self) -> u64 {
        self.channels
            .iter()
            .flat_map(|ch| ch.chips.iter())
            .map(|c| c.written_pages() as u64)
            .sum()
    }

    /// Serializes every channel (bus schedule, traffic stats, chips) and
    /// the reliability counters. Geometry, timing and fault config are NOT
    /// encoded — they come from the device config at restore, which the
    /// SSD-level container validates.
    pub fn save_state(&self, enc: &mut assasin_snap::Encoder) {
        for ch in &self.channels {
            ch.bus.save_state(enc);
            enc.u64(ch.stats.bytes_read);
            enc.u64(ch.stats.bytes_written);
            enc.u64(ch.stats.page_reads);
            enc.u64(ch.stats.page_programs);
            for chip in &ch.chips {
                chip.save_state(enc);
            }
        }
        enc.u64(self.rel.page_reads);
        enc.u64(self.rel.ecc_corrected);
        enc.u64(self.rel.read_retries);
        enc.u64(self.rel.uncorrectable);
        enc.u64(self.rel.program_fails);
        enc.u64(self.rel.erase_fails);
        enc.u64(self.rel.grown_bad_blocks);
    }

    /// Restores a snapshot taken by [`FlashArray::save_state`] onto this
    /// freshly-constructed array (same geometry/timing/fault).
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    pub fn load_snapshot(
        &mut self,
        dec: &mut assasin_snap::Decoder<'_>,
    ) -> Result<(), assasin_snap::SnapError> {
        for ch in &mut self.channels {
            ch.bus = Timeline::restore_state(dec)?;
            ch.stats = ChannelStats {
                bytes_read: dec.u64()?,
                bytes_written: dec.u64()?,
                page_reads: dec.u64()?,
                page_programs: dec.u64()?,
            };
            for chip in &mut ch.chips {
                chip.load_snapshot(dec)?;
            }
        }
        self.rel = ReliabilityStats {
            page_reads: dec.u64()?,
            ecc_corrected: dec.u64()?,
            read_retries: dec.u64()?,
            uncorrectable: dec.u64()?,
            program_fails: dec.u64()?,
            erase_fails: dec.u64()?,
            grown_bad_blocks: dec.u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(geom: &FlashGeometry, fill: u8) -> Bytes {
        Bytes::from(vec![fill; geom.page_bytes as usize])
    }

    fn addr(channel: u32, chip: u32, page: u32) -> PhysPageAddr {
        PhysPageAddr {
            channel,
            chip,
            plane: 0,
            block: 0,
            page,
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let geom = FlashGeometry::small_for_tests();
        let mut arr = FlashArray::new(geom, FlashTiming::default());
        arr.write_page(addr(0, 0, 0), filled(&geom, 0x5A), SimTime::ZERO)
            .unwrap();
        let (data, _) = arr.read_page(addr(0, 0, 0), SimTime::from_ms(1)).unwrap();
        assert_eq!(data, filled(&geom, 0x5A));
        assert_eq!(arr.channel_stats(0).page_reads, 1);
        assert_eq!(arr.channel_stats(0).bytes_written, geom.page_bytes as u64);
    }

    #[test]
    fn out_of_range_is_error() {
        let geom = FlashGeometry::small_for_tests();
        let mut arr = FlashArray::new(geom, FlashTiming::default());
        let bad = addr(99, 0, 0);
        assert_eq!(
            arr.read_page(bad, SimTime::ZERO).unwrap_err(),
            FlashError::OutOfRange(bad)
        );
    }

    #[test]
    fn chip_interleaving_overlaps_sense() {
        let geom = FlashGeometry::small_for_tests();
        let timing = FlashTiming::default();
        let mut arr = FlashArray::new(geom, timing);
        arr.write_page(addr(0, 0, 0), filled(&geom, 1), SimTime::ZERO)
            .unwrap();
        arr.write_page(addr(0, 1, 0), filled(&geom, 2), SimTime::ZERO)
            .unwrap();
        // Issue both reads at the same late time: senses overlap on the two
        // chips, transfers serialize on the bus.
        let t0 = SimTime::from_ms(10);
        let (_, a) = arr.read_page(addr(0, 0, 0), t0).unwrap();
        let (_, b) = arr.read_page(addr(0, 1, 0), t0).unwrap();
        let xfer = timing.transfer_time(geom.page_bytes);
        assert_eq!(a, t0 + timing.t_read + xfer);
        // Second page only pays the extra bus slot, not a second full tR.
        assert_eq!(b, t0 + timing.t_read + xfer + xfer);
    }

    #[test]
    fn same_chip_reads_serialize_on_tr() {
        let geom = FlashGeometry::small_for_tests();
        let timing = FlashTiming::default();
        let mut arr = FlashArray::new(geom, timing);
        arr.write_page(addr(0, 0, 0), filled(&geom, 1), SimTime::ZERO)
            .unwrap();
        arr.write_page(addr(0, 0, 1), filled(&geom, 2), SimTime::ZERO)
            .unwrap();
        let t0 = SimTime::from_ms(10);
        let (_, a) = arr.read_page(addr(0, 0, 0), t0).unwrap();
        let (_, b) = arr.read_page(addr(0, 0, 1), t0).unwrap();
        assert!(b.since(a) >= timing.t_read);
    }

    #[test]
    fn erase_enables_rewrite() {
        let geom = FlashGeometry::small_for_tests();
        let mut arr = FlashArray::new(geom, FlashTiming::default());
        arr.write_page(addr(1, 1, 0), filled(&geom, 1), SimTime::ZERO)
            .unwrap();
        assert!(arr.is_written(addr(1, 1, 0)));
        arr.erase_block(1, 1, 0, 0, SimTime::ZERO).unwrap();
        assert!(!arr.is_written(addr(1, 1, 0)));
        arr.write_page(addr(1, 1, 0), filled(&geom, 9), SimTime::ZERO)
            .unwrap();
    }

    #[test]
    fn peak_bw_is_channels_times_rate() {
        let arr = FlashArray::new(FlashGeometry::default(), FlashTiming::default());
        assert!((arr.peak_read_bw() - 8.0e9).abs() < 1.0);
    }
}
