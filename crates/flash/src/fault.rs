//! Deterministic NAND fault injection: raw bit errors, ECC, read-retry.
//!
//! Real NAND does not fail structurally — it fails *statistically*: every
//! sense returns some raw bit errors, the controller's ECC corrects up to a
//! fixed budget per page, and marginal pages are re-sensed with shifted read
//! references (read-retry) until they correct or are declared uncorrectable.
//! Programs and erases can fail outright, growing the bad-block list.
//! SimpleSSD and Amber both argue that holistic SSD evaluation must model
//! these internal reliability behaviors; this module adds them to the
//! functional array without disturbing the fault-free timing model.
//!
//! Everything is **deterministic**: error counts are drawn from a counter-
//! based RNG (splitmix64 finalizer) keyed on `(seed, physical page, program
//! epoch, op sequence)`, so a replay of the same operation sequence draws
//! byte-identical faults — the property the reliability experiment's
//! determinism test pins. No global RNG state is shared between chips, so
//! parallel sweeps stay reproducible.
//!
//! The error-count draw approximates a Poisson(λ) with a clamped normal:
//! λ = `page_bits · raw_ber · (1 + wear_factor · erase_count) · retention ·
//! retry_shrink^attempt`, and the deviate's z-score comes from an
//! Irwin–Hall sum of four uniforms (bounded ±2√3). The bounded tail is
//! deliberate: with λ well under the ECC budget the page always corrects,
//! and the retry ladder's geometric shrink makes each re-sense strictly
//! more likely to succeed — mirroring how shifted read references recover
//! retention-shifted cells. (`f64` add/mul/sqrt are IEEE-exact, so the
//! draws are bit-stable across platforms; no `ln`/`exp` involved.)

use serde::{Deserialize, Serialize};

/// Fault-injection knobs for a [`FlashArray`](crate::FlashArray).
///
/// `enabled: false` (the default) short-circuits every fault check, so a
/// fault-free array is byte-identical — in data, timing and stats — to one
/// built before this model existed; golden report hashes pin that.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Master switch; `false` bypasses all draws and checks.
    pub enabled: bool,
    /// Seed mixed into every draw; same seed ⇒ byte-identical replay.
    pub seed: u64,
    /// Raw bit-error probability per stored bit on the first sense.
    pub raw_ber: f64,
    /// BER multiplier per block erase: `1 + wear_factor * erase_count`.
    pub wear_factor: f64,
    /// Retention-stress multiplier on the BER (1.0 = freshly written).
    pub retention: f64,
    /// Correctable raw bit errors per page (the ECC budget, e.g. BCH-t).
    pub ecc_bits: u32,
    /// Maximum read-retry re-senses after the initial sense.
    pub read_retry_limit: u32,
    /// Residual error fraction surviving each retry level's shifted read
    /// reference (geometric shrink of λ).
    pub retry_shrink: f64,
    /// Probability a program operation fails, growing the block bad.
    pub program_fail_prob: f64,
    /// Probability an erase operation fails, growing the block bad.
    pub erase_fail_prob: f64,
}

impl FaultConfig {
    /// Fault injection off; all other knobs at their documented defaults.
    pub fn disabled() -> Self {
        FaultConfig {
            enabled: false,
            seed: 0,
            raw_ber: 0.0,
            wear_factor: 1e-3,
            retention: 1.0,
            ecc_bits: 40,
            read_retry_limit: 4,
            retry_shrink: 0.25,
            program_fail_prob: 0.0,
            erase_fail_prob: 0.0,
        }
    }

    /// Fault injection on at the given seed and raw BER, everything else
    /// default — the shape the reliability sweep uses.
    pub fn with_ber(seed: u64, raw_ber: f64) -> Self {
        FaultConfig {
            enabled: true,
            seed,
            raw_ber,
            ..FaultConfig::disabled()
        }
    }

    /// Mean raw bit errors for one sense of a `page_bits`-bit page in a
    /// block erased `erase_count` times, at retry level `attempt`
    /// (0 = initial sense).
    fn lambda(&self, page_bits: u64, erase_count: u32, attempt: u32) -> f64 {
        page_bits as f64
            * self.raw_ber
            * (1.0 + self.wear_factor * erase_count as f64)
            * self.retention
            * self.retry_shrink.powi(attempt as i32)
    }

    /// Draws the raw bit-error count for one sense. Pure: the outcome
    /// depends only on the config and the key material.
    pub(crate) fn draw_errors(
        &self,
        page_bits: u64,
        erase_count: u32,
        attempt: u32,
        key: u64,
    ) -> u32 {
        let lambda = self.lambda(page_bits, erase_count, attempt);
        if lambda <= 0.0 {
            return 0;
        }
        // Irwin–Hall(4): sum of four uniforms, mean 2, variance 1/3.
        let mut sum = 0.0;
        for i in 0..4u64 {
            sum += unit(mix(key ^ mix(attempt as u64 + 1) ^ mix(0x5EED + i)));
        }
        let z = (sum - 2.0) * SQRT_3;
        let errors = lambda + z * lambda.sqrt();
        if errors <= 0.0 {
            0
        } else {
            errors.round() as u32
        }
    }

    /// Deterministic Bernoulli draw for a program failure.
    pub(crate) fn draw_program_fail(&self, key: u64) -> bool {
        self.program_fail_prob > 0.0 && unit(mix(key ^ PROGRAM_SALT)) < self.program_fail_prob
    }

    /// Deterministic Bernoulli draw for an erase failure.
    pub(crate) fn draw_erase_fail(&self, key: u64) -> bool {
        self.erase_fail_prob > 0.0 && unit(mix(key ^ ERASE_SALT)) < self.erase_fail_prob
    }

    /// Key material for one operation: the seed, the page's linear index
    /// (or block identity for erases), the program epoch (block erase
    /// count — data written after an erase sees fresh draws), and a
    /// monotone per-chip sequence number (so SSD-level re-reads of the
    /// same page re-draw instead of replaying the same marginal sense).
    pub(crate) fn op_key(&self, linear: u64, epoch: u32, seq: u64) -> u64 {
        mix(self.seed ^ mix(linear ^ 0x9E37_79B9_7F4A_7C15) ^ mix(epoch as u64) ^ mix(seq))
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

const SQRT_3: f64 = 1.732_050_807_568_877_2;
const PROGRAM_SALT: u64 = 0xBAD0_B10C_0000_0001;
const ERASE_SALT: u64 = 0xE1A5_E5A1_7C0F_FEE5;

/// splitmix64 finalizer: a bijective avalanche mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in [0, 1) from the top 53 bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// ECC outcome of a successful (correctable) page read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageHealth {
    /// No raw bit errors.
    Clean,
    /// Corrected within the ECC budget on the first sense.
    Corrected {
        /// Raw bit errors corrected.
        bits: u32,
    },
    /// Needed `retries` read-retry re-senses before correcting.
    Retried {
        /// Re-senses beyond the initial sense.
        retries: u32,
        /// Raw bit errors corrected on the final sense.
        bits: u32,
    },
}

impl PageHealth {
    /// Re-senses charged beyond the initial one.
    pub fn retries(self) -> u32 {
        match self {
            PageHealth::Retried { retries, .. } => retries,
            _ => 0,
        }
    }

    /// True if ECC had to correct at least one bit.
    pub fn corrected(self) -> bool {
        !matches!(self, PageHealth::Clean)
    }
}

/// Cumulative reliability counters for one [`FlashArray`](crate::FlashArray).
///
/// Never reset by the experiment-phase `reset_time`/`reset_stats` calls:
/// faults during dataset loading (program failures growing bad blocks) are
/// part of the device's history and must stay visible in reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReliabilityStats {
    /// Pages sensed through the timed read path.
    pub page_reads: u64,
    /// Pages that needed ECC correction (with or without retries).
    pub ecc_corrected: u64,
    /// Read-retry re-senses charged beyond initial senses.
    pub read_retries: u64,
    /// Reads that stayed uncorrectable after the full retry ladder.
    pub uncorrectable: u64,
    /// Program operations that failed, growing their block bad.
    pub program_fails: u64,
    /// Erase operations that failed, growing their block bad.
    pub erase_fails: u64,
    /// Blocks grown bad (program + erase failures).
    pub grown_bad_blocks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ber: f64) -> FaultConfig {
        FaultConfig::with_ber(0xA55A, ber)
    }

    #[test]
    fn disabled_config_draws_nothing() {
        let c = FaultConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.draw_errors(4096 * 8, 100, 0, 42), 0);
        assert!(!c.draw_program_fail(42));
        assert!(!c.draw_erase_fail(42));
    }

    #[test]
    fn draws_are_deterministic() {
        let c = cfg(1e-3);
        let key = c.op_key(77, 3, 9);
        assert_eq!(
            c.draw_errors(4096 * 8, 3, 1, key),
            c.draw_errors(4096 * 8, 3, 1, key)
        );
        assert_eq!(c.draw_program_fail(key), c.draw_program_fail(key));
    }

    #[test]
    fn distinct_keys_decorrelate() {
        let c = cfg(1e-3);
        let a: Vec<u32> = (0..64)
            .map(|i| c.draw_errors(4096 * 8, 0, 0, c.op_key(i, 0, 0)))
            .collect();
        let b: Vec<u32> = (0..64)
            .map(|i| c.draw_errors(4096 * 8, 0, 0, c.op_key(i, 1, 0)))
            .collect();
        assert_ne!(a, b, "program epoch must change the draws");
        let distinct: std::collections::BTreeSet<_> = a.iter().collect();
        assert!(distinct.len() > 4, "draws vary across pages: {a:?}");
    }

    #[test]
    fn error_counts_track_lambda() {
        let c = cfg(1e-3);
        let page_bits = 4096 * 8;
        let lambda = page_bits as f64 * 1e-3;
        let mean: f64 = (0..256)
            .map(|i| c.draw_errors(page_bits, 0, 0, c.op_key(i, 0, i)) as f64)
            .sum::<f64>()
            / 256.0;
        assert!(
            (mean - lambda).abs() < lambda * 0.2,
            "mean {mean} vs lambda {lambda}"
        );
    }

    #[test]
    fn retries_shrink_the_error_count() {
        let c = cfg(1e-2);
        let page_bits = 4096 * 8;
        let key = c.op_key(5, 0, 0);
        let first = c.draw_errors(page_bits, 0, 0, key);
        let third = c.draw_errors(page_bits, 0, 3, key);
        assert!(
            third < first / 8,
            "retry level 3 ({third}) should be far below level 0 ({first})"
        );
    }

    #[test]
    fn wear_and_retention_scale_errors_up() {
        let c = cfg(1e-3);
        let worn = FaultConfig {
            wear_factor: 0.1,
            ..c
        };
        assert!(worn.lambda(4096 * 8, 50, 0) > c.lambda(4096 * 8, 50, 0));
        let stale = FaultConfig {
            retention: 4.0,
            ..c
        };
        assert!(stale.lambda(4096 * 8, 0, 0) > c.lambda(4096 * 8, 0, 0));
    }

    #[test]
    fn fail_draws_respect_probability_extremes() {
        let never = FaultConfig {
            program_fail_prob: 0.0,
            erase_fail_prob: 0.0,
            ..cfg(0.0)
        };
        let always = FaultConfig {
            program_fail_prob: 1.0,
            erase_fail_prob: 1.0,
            ..cfg(0.0)
        };
        for k in 0..32 {
            assert!(!never.draw_program_fail(k) && !never.draw_erase_fail(k));
            assert!(always.draw_program_fail(k) && always.draw_erase_fail(k));
        }
    }
}
