//! Flash operation errors.

use crate::PhysPageAddr;
use std::error::Error;
use std::fmt;

/// Errors returned by flash array operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// The address does not exist in the configured geometry.
    OutOfRange(PhysPageAddr),
    /// A read targeted a page that was never programmed since erase.
    UnwrittenPage(PhysPageAddr),
    /// NAND cannot program a page twice without an intervening block erase.
    ProgramWithoutErase(PhysPageAddr),
    /// Page data length does not match the geometry's page size.
    BadPageSize {
        /// Offending address.
        addr: PhysPageAddr,
        /// Bytes supplied.
        got: usize,
        /// Bytes required.
        want: usize,
    },
    /// Raw bit errors exceeded ECC even after the full read-retry ladder.
    Uncorrectable {
        /// Offending address.
        addr: PhysPageAddr,
        /// Raw bit errors on the final (best) retry level.
        errors: u32,
    },
    /// A program operation failed; the block is now grown-bad.
    ProgramFailed(PhysPageAddr),
    /// An erase operation failed; the block is now grown-bad.
    EraseFailed {
        /// Channel of the failed block.
        channel: u32,
        /// Chip of the failed block.
        chip: u32,
        /// Plane of the failed block.
        plane: u32,
        /// The block that failed to erase.
        block: u32,
    },
    /// The operation targeted a block already marked grown-bad.
    GrownBad(PhysPageAddr),
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::OutOfRange(a) => write!(f, "address {a} outside flash geometry"),
            FlashError::UnwrittenPage(a) => write!(f, "read of unwritten page {a}"),
            FlashError::ProgramWithoutErase(a) => {
                write!(f, "program of already-written page {a} without erase")
            }
            FlashError::BadPageSize { addr, got, want } => {
                write!(f, "page {addr} data is {got} bytes, geometry wants {want}")
            }
            FlashError::Uncorrectable { addr, errors } => {
                write!(
                    f,
                    "uncorrectable media error at {addr}: {errors} raw bit errors after read-retry"
                )
            }
            FlashError::ProgramFailed(a) => write!(f, "program failed at {a}; block grown bad"),
            FlashError::EraseFailed {
                channel,
                chip,
                plane,
                block,
            } => write!(
                f,
                "erase failed at ch{channel}.chip{chip}.pl{plane}.blk{block}; block grown bad"
            ),
            FlashError::GrownBad(a) => write!(f, "operation on grown-bad block at {a}"),
        }
    }
}

impl Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_concise() {
        let a = PhysPageAddr {
            channel: 0,
            chip: 0,
            plane: 0,
            block: 0,
            page: 0,
        };
        let msg = FlashError::UnwrittenPage(a).to_string();
        assert!(msg.starts_with("read of unwritten page"));
        let msg = FlashError::BadPageSize {
            addr: a,
            got: 3,
            want: 4096,
        }
        .to_string();
        assert!(msg.contains("3 bytes"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<FlashError>();
    }
}
