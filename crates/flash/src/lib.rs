//! NAND flash array model — functional *and* timed.
//!
//! This crate replaces MQSim in the paper's methodology (Section VI-A,
//! Figure 11). It models the SSD back-end of Section II: multiple flash
//! channels, each with several independently-operating chips sharing one
//! ONFI-style bus, with page-granularity read/program and block-granularity
//! erase (Figure 3).
//!
//! The model is *functional*: pages store real bytes, so the kernels that
//! run above it (AES, RAID, filters) compute real results. It is also
//! *timed*: each chip and each channel bus is a FIFO [`Timeline`], so chip
//! interleaving, bus contention and the 1 GB/s-per-channel service rate of
//! the paper's configuration all emerge structurally.
//!
//! ```
//! use assasin_flash::{FlashArray, FlashGeometry, FlashTiming, PhysPageAddr};
//! use assasin_sim::SimTime;
//! use bytes::Bytes;
//!
//! let geom = FlashGeometry::small_for_tests();
//! let mut array = FlashArray::new(geom, FlashTiming::default());
//! let addr = PhysPageAddr { channel: 0, chip: 0, plane: 0, block: 0, page: 0 };
//! let page = Bytes::from(vec![7u8; geom.page_bytes as usize]);
//! array.write_page(addr, page.clone(), SimTime::ZERO)?;
//! let (data, arrival) = array.read_page(addr, SimTime::ZERO)?;
//! assert_eq!(data, page);
//! assert!(arrival > SimTime::ZERO);
//! # Ok::<(), assasin_flash::FlashError>(())
//! ```
//!
//! [`Timeline`]: assasin_sim::Timeline

mod array;
mod chip;
mod counters;
mod error;
mod fault;
mod geometry;
mod timing;

pub use array::{ChannelStats, FlashArray};
pub use chip::FlashChip;
pub use counters::{reliability_counters, ReliabilityCounters};
pub use error::FlashError;
pub use fault::{FaultConfig, PageHealth, ReliabilityStats};
pub use geometry::{FlashGeometry, PhysPageAddr};
pub use timing::FlashTiming;
