//! NAND and channel-interface timing parameters.

use assasin_sim::SimDur;
use serde::{Deserialize, Serialize};

/// Timing parameters of the flash chips and the channel interface.
///
/// Defaults give each channel the 1 GB/s read/write service rate of the
/// paper's evaluated SSD (Section VI-A): a 4 KiB page occupies the channel
/// bus for ~4 µs, and with tR = 20 µs, five or more interleaved chips keep
/// the bus saturated (the default geometry provides eight).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashTiming {
    /// Array-to-page-register sense time (tR).
    pub t_read: SimDur,
    /// Page-register-to-array program time (tPROG).
    pub t_prog: SimDur,
    /// Block erase time (tBERS).
    pub t_erase: SimDur,
    /// Channel bus transfer rate in bytes/second (ONFI interface).
    pub channel_bytes_per_sec: f64,
}

impl FlashTiming {
    /// Bus occupancy for transferring `bytes` over the channel.
    pub fn transfer_time(&self, bytes: u32) -> SimDur {
        SimDur::from_secs_f64(bytes as f64 / self.channel_bytes_per_sec)
    }

    /// Peak sustained read bandwidth of one channel in bytes/second,
    /// assuming enough chip interleaving to hide tR.
    pub fn channel_read_bw(&self) -> f64 {
        self.channel_bytes_per_sec
    }

    /// Minimum number of chips that must interleave on one channel to
    /// saturate the bus for reads of `page_bytes` pages.
    pub fn chips_to_saturate(&self, page_bytes: u32) -> u32 {
        let xfer = self.transfer_time(page_bytes).as_ps() as f64;
        if xfer == 0.0 {
            return 1;
        }
        ((self.t_read.as_ps() as f64 + xfer) / xfer).ceil() as u32
    }
}

impl Default for FlashTiming {
    fn default() -> Self {
        FlashTiming {
            t_read: SimDur::from_us(20),
            t_prog: SimDur::from_us(200),
            t_erase: SimDur::from_ms(2),
            channel_bytes_per_sec: 1.0e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_transfer_rate_is_1gbps() {
        let t = FlashTiming::default();
        // 4096 bytes at 1 GB/s = 4.096 us
        assert_eq!(t.transfer_time(4096), SimDur::from_ns(4096));
    }

    #[test]
    fn default_geometry_saturates_channel() {
        let t = FlashTiming::default();
        // tR=20us, xfer=4.096us -> ceil(24.096/4.096) = 6 chips needed.
        let need = t.chips_to_saturate(4096);
        assert_eq!(need, 6);
        // Default geometry provides 8 chips/channel — headroom over 6.
        assert!(need <= 8);
    }
}
