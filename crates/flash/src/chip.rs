//! A single flash chip: page store plus busy timeline.

use crate::{FlashError, FlashGeometry, PhysPageAddr};
use assasin_sim::{SimDur, SimTime, Timeline};
use bytes::Bytes;
use std::collections::HashMap;

/// One flash chip (logical die): stores page contents and models the chip's
/// busy time for sense/program/erase operations.
///
/// Pages are stored sparsely; an unprogrammed page reads back as an error,
/// matching NAND semantics where a page must be programmed after erase
/// before it holds data.
#[derive(Debug, Clone)]
pub struct FlashChip {
    /// Page contents, keyed by page index linear within this chip.
    pages: HashMap<u64, Bytes>,
    busy: Timeline,
    reads: u64,
    programs: u64,
    erases: u64,
}

impl FlashChip {
    /// Creates an erased chip.
    pub fn new(channel: u32, chip: u32) -> Self {
        FlashChip {
            pages: HashMap::new(),
            busy: Timeline::new(format!("chip-{channel}.{chip}")),
            reads: 0,
            programs: 0,
            erases: 0,
        }
    }

    fn page_key(geom: &FlashGeometry, addr: PhysPageAddr) -> u64 {
        (addr.plane as u64 * geom.blocks_per_plane as u64 + addr.block as u64)
            * geom.pages_per_block as u64
            + addr.page as u64
    }

    /// Returns a page's data without modeling any timing or stats — the
    /// firmware's control-plane view (used e.g. to locate record
    /// boundaries for task decomposition).
    pub fn peek(&self, geom: &FlashGeometry, addr: PhysPageAddr) -> Option<Bytes> {
        self.pages.get(&Self::page_key(geom, addr)).cloned()
    }

    /// Senses a page into the page register. Returns the page data and the
    /// time the register is loaded (before any bus transfer).
    pub fn sense(
        &mut self,
        geom: &FlashGeometry,
        addr: PhysPageAddr,
        ready: SimTime,
        t_read: SimDur,
    ) -> Result<(Bytes, SimTime), FlashError> {
        let key = Self::page_key(geom, addr);
        let data = self
            .pages
            .get(&key)
            .cloned()
            .ok_or(FlashError::UnwrittenPage(addr))?;
        let grant = self.busy.acquire(ready, t_read);
        self.reads += 1;
        Ok((data, grant.end))
    }

    /// Programs a page from the page register; `data_ready` is when the bus
    /// finished delivering data. Returns program completion time.
    pub fn program(
        &mut self,
        geom: &FlashGeometry,
        addr: PhysPageAddr,
        data: Bytes,
        data_ready: SimTime,
        t_prog: SimDur,
    ) -> Result<SimTime, FlashError> {
        if data.len() != geom.page_bytes as usize {
            return Err(FlashError::BadPageSize {
                addr,
                got: data.len(),
                want: geom.page_bytes as usize,
            });
        }
        let key = Self::page_key(geom, addr);
        if self.pages.contains_key(&key) {
            return Err(FlashError::ProgramWithoutErase(addr));
        }
        self.pages.insert(key, data);
        let grant = self.busy.acquire(data_ready, t_prog);
        self.programs += 1;
        Ok(grant.end)
    }

    /// Erases a whole block, freeing its pages. Returns completion time.
    pub fn erase_block(
        &mut self,
        geom: &FlashGeometry,
        plane: u32,
        block: u32,
        ready: SimTime,
        t_erase: SimDur,
    ) -> SimTime {
        let base = (plane as u64 * geom.blocks_per_plane as u64 + block as u64)
            * geom.pages_per_block as u64;
        for page in 0..geom.pages_per_block as u64 {
            self.pages.remove(&(base + page));
        }
        let grant = self.busy.acquire(ready, t_erase);
        self.erases += 1;
        grant.end
    }

    /// True if the page currently holds programmed data.
    pub fn is_written(&self, geom: &FlashGeometry, addr: PhysPageAddr) -> bool {
        self.pages.contains_key(&Self::page_key(geom, addr))
    }

    /// When the chip next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.busy.free_at()
    }

    /// Cumulative busy time.
    pub fn busy_time(&self) -> SimDur {
        self.busy.busy_time()
    }

    /// (reads, programs, erases) counters, for wear accounting.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (self.reads, self.programs, self.erases)
    }

    /// Number of currently-programmed pages.
    pub fn written_pages(&self) -> usize {
        self.pages.len()
    }

    /// Returns the chip to idle at t = 0, keeping data (between phases).
    pub fn reset_time(&mut self) {
        self.busy.reset_time();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(block: u32, page: u32) -> PhysPageAddr {
        PhysPageAddr {
            channel: 0,
            chip: 0,
            plane: 0,
            block,
            page,
        }
    }

    fn page(geom: &FlashGeometry, fill: u8) -> Bytes {
        Bytes::from(vec![fill; geom.page_bytes as usize])
    }

    #[test]
    fn program_then_sense_roundtrips() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(0, 0);
        let t = FlashTimingFixture::default();
        chip.program(&geom, addr(0, 0), page(&geom, 0xAB), SimTime::ZERO, t.prog)
            .unwrap();
        let (data, done) = chip
            .sense(&geom, addr(0, 0), SimTime::ZERO, t.read)
            .unwrap();
        assert_eq!(data, page(&geom, 0xAB));
        // Sense queues behind the in-flight program on the same chip.
        assert_eq!(done, SimTime::ZERO + t.prog + t.read);
    }

    #[test]
    fn sense_unwritten_fails() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(0, 0);
        let err = chip
            .sense(&geom, addr(0, 1), SimTime::ZERO, SimDur::from_us(20))
            .unwrap_err();
        assert_eq!(err, FlashError::UnwrittenPage(addr(0, 1)));
    }

    #[test]
    fn double_program_requires_erase() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(0, 0);
        let t = FlashTimingFixture::default();
        chip.program(&geom, addr(1, 0), page(&geom, 1), SimTime::ZERO, t.prog)
            .unwrap();
        let err = chip
            .program(&geom, addr(1, 0), page(&geom, 2), SimTime::ZERO, t.prog)
            .unwrap_err();
        assert_eq!(err, FlashError::ProgramWithoutErase(addr(1, 0)));
        chip.erase_block(&geom, 0, 1, SimTime::ZERO, t.erase);
        chip.program(&geom, addr(1, 0), page(&geom, 2), SimTime::ZERO, t.prog)
            .unwrap();
        let (data, _) = chip
            .sense(&geom, addr(1, 0), SimTime::ZERO, t.read)
            .unwrap();
        assert_eq!(data, page(&geom, 2));
    }

    #[test]
    fn bad_page_size_rejected() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(0, 0);
        let err = chip
            .program(
                &geom,
                addr(0, 0),
                Bytes::from_static(b"short"),
                SimTime::ZERO,
                SimDur::from_us(200),
            )
            .unwrap_err();
        assert!(matches!(err, FlashError::BadPageSize { got: 5, .. }));
    }

    #[test]
    fn erase_clears_only_target_block() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(0, 0);
        let t = FlashTimingFixture::default();
        chip.program(&geom, addr(0, 0), page(&geom, 1), SimTime::ZERO, t.prog)
            .unwrap();
        chip.program(&geom, addr(1, 0), page(&geom, 2), SimTime::ZERO, t.prog)
            .unwrap();
        chip.erase_block(&geom, 0, 0, SimTime::ZERO, t.erase);
        assert!(!chip.is_written(&geom, addr(0, 0)));
        assert!(chip.is_written(&geom, addr(1, 0)));
        assert_eq!(chip.op_counts().2, 1);
    }

    struct FlashTimingFixture {
        read: SimDur,
        prog: SimDur,
        erase: SimDur,
    }

    impl Default for FlashTimingFixture {
        fn default() -> Self {
            FlashTimingFixture {
                read: SimDur::from_us(20),
                prog: SimDur::from_us(200),
                erase: SimDur::from_ms(2),
            }
        }
    }
}
