//! A single flash chip: page store plus busy timeline.

use crate::fault::{FaultConfig, PageHealth};
use crate::{FlashError, FlashGeometry, PhysPageAddr};
use assasin_sim::{SimDur, SimTime, Timeline};
use bytes::Bytes;
use std::sync::Arc;

/// One flash chip (logical die): stores page contents and models the chip's
/// busy time for sense/program/erase operations.
///
/// Pages are stored sparsely; an unprogrammed page reads back as an error,
/// matching NAND semantics where a page must be programmed after erase
/// before it holds data.
///
/// The store is a two-level array — an outer slot per block (allocated on
/// first program) holding one `Option<Bytes>` slot per page — so a sense is
/// two bounds-checked indexes rather than a hash. Plan scheduling senses
/// every input page of a run up front, which made the hash the hottest part
/// of the flash model.
///
/// Block page stores are `Arc`-backed so cloning a chip (forking a device
/// image for a sweep point) shares every programmed page; the first program
/// or erase touching a shared block pays one block-sized copy
/// (`Arc::make_mut`), reads never copy.
#[derive(Debug, Clone)]
pub struct FlashChip {
    /// Page contents: outer index `plane * blocks_per_plane + block`,
    /// inner index the page within the block.
    blocks: Vec<Option<Arc<Vec<Option<Bytes>>>>>,
    pages_per_block: usize,
    /// Programmed-page count (kept so wear accounting stays O(1)).
    written: usize,
    busy: Timeline,
    reads: u64,
    programs: u64,
    erases: u64,
    /// Per-block erase count — the fault model's "program epoch": data
    /// written after an erase sees fresh error draws.
    erase_counts: Vec<u32>,
    /// Per-block grown-bad flags (program/erase failures).
    bad: Vec<bool>,
    /// Monotone fault-draw sequence, so a re-read of the same page draws a
    /// fresh error count instead of replaying the same marginal sense.
    fault_seq: u64,
    /// This chip's (channel, chip) coordinates, for error context.
    channel: u32,
    chip: u32,
}

impl FlashChip {
    /// Creates an erased chip shaped for `geom`.
    pub fn new(geom: &FlashGeometry, channel: u32, chip: u32) -> Self {
        let n_blocks = geom.planes_per_chip as usize * geom.blocks_per_plane as usize;
        FlashChip {
            blocks: vec![None; n_blocks],
            pages_per_block: geom.pages_per_block as usize,
            written: 0,
            busy: Timeline::new(format!("chip-{channel}.{chip}")),
            reads: 0,
            programs: 0,
            erases: 0,
            erase_counts: vec![0; n_blocks],
            bad: vec![false; n_blocks],
            fault_seq: 0,
            channel,
            chip,
        }
    }

    fn block_index(geom: &FlashGeometry, plane: u32, block: u32) -> usize {
        plane as usize * geom.blocks_per_plane as usize + block as usize
    }

    fn slot(&self, geom: &FlashGeometry, addr: PhysPageAddr) -> Option<&Bytes> {
        self.blocks
            .get(Self::block_index(geom, addr.plane, addr.block))?
            .as_ref()?
            .get(addr.page as usize)?
            .as_ref()
    }

    /// Returns a page's data without modeling any timing or stats — the
    /// firmware's control-plane view (used e.g. to locate record
    /// boundaries for task decomposition).
    pub fn peek(&self, geom: &FlashGeometry, addr: PhysPageAddr) -> Option<Bytes> {
        self.slot(geom, addr).cloned()
    }

    /// Senses a page into the page register. Returns the page data, the
    /// time the register is loaded (before any bus transfer) and the ECC
    /// outcome.
    ///
    /// With fault injection enabled, the ECC model classifies the drawn
    /// raw-bit-error count: within budget on the first sense is clean or
    /// corrected; beyond budget triggers read-retry, each level re-sensing
    /// the page (a full extra `t_read` charged on the chip timeline) with
    /// a shifted read reference that geometrically shrinks the residual
    /// errors. A page still beyond budget after `read_retry_limit` levels
    /// is [`FlashError::Uncorrectable`] — the chip time for every sense is
    /// still charged, as a real controller would have spent it.
    pub fn sense(
        &mut self,
        geom: &FlashGeometry,
        fault: &FaultConfig,
        addr: PhysPageAddr,
        ready: SimTime,
        t_read: SimDur,
    ) -> Result<(Bytes, SimTime, PageHealth), FlashError> {
        let data = self
            .slot(geom, addr)
            .cloned()
            .ok_or(FlashError::UnwrittenPage(addr))?;
        if !fault.enabled {
            let grant = self.busy.acquire(ready, t_read);
            self.reads += 1;
            return Ok((data, grant.end, PageHealth::Clean));
        }
        let bi = Self::block_index(geom, addr.plane, addr.block);
        let epoch = self.erase_counts[bi];
        let key = fault.op_key(geom.linear_index(addr), epoch, self.fault_seq);
        self.fault_seq += 1;
        let page_bits = geom.page_bytes as u64 * 8;
        let mut result = Err(0u32);
        for attempt in 0..=fault.read_retry_limit {
            let errors = fault.draw_errors(page_bits, epoch, attempt, key);
            if errors <= fault.ecc_bits {
                result = Ok((attempt, errors));
                break;
            }
            result = Err(errors);
        }
        let senses = match result {
            Ok((attempt, _)) => attempt + 1,
            Err(_) => fault.read_retry_limit + 1,
        };
        let grant = self.busy.acquire_repeated(ready, t_read, senses);
        self.reads += senses as u64;
        match result {
            Ok((0, 0)) => Ok((data, grant.end, PageHealth::Clean)),
            Ok((0, bits)) => Ok((data, grant.end, PageHealth::Corrected { bits })),
            Ok((retries, bits)) => Ok((data, grant.end, PageHealth::Retried { retries, bits })),
            Err(errors) => Err(FlashError::Uncorrectable { addr, errors }),
        }
    }

    /// Programs a page from the page register; `data_ready` is when the bus
    /// finished delivering data. Returns program completion time.
    ///
    /// With fault injection enabled, a program can fail: the chip is still
    /// occupied for `t_prog`, nothing is stored, and the block is marked
    /// grown-bad. Programs targeting an already grown-bad block are
    /// rejected up front.
    pub fn program(
        &mut self,
        geom: &FlashGeometry,
        fault: &FaultConfig,
        addr: PhysPageAddr,
        data: Bytes,
        data_ready: SimTime,
        t_prog: SimDur,
    ) -> Result<SimTime, FlashError> {
        if data.len() != geom.page_bytes as usize {
            return Err(FlashError::BadPageSize {
                addr,
                got: data.len(),
                want: geom.page_bytes as usize,
            });
        }
        let bi = Self::block_index(geom, addr.plane, addr.block);
        if fault.enabled && self.bad[bi] {
            return Err(FlashError::GrownBad(addr));
        }
        let pages_per_block = self.pages_per_block;
        let block = Arc::make_mut(
            self.blocks[bi].get_or_insert_with(|| Arc::new(vec![None; pages_per_block])),
        );
        let slot = &mut block[addr.page as usize];
        if slot.is_some() {
            return Err(FlashError::ProgramWithoutErase(addr));
        }
        if fault.enabled {
            let key = fault.op_key(
                geom.linear_index(addr),
                self.erase_counts[bi],
                self.fault_seq,
            );
            self.fault_seq += 1;
            if fault.draw_program_fail(key) {
                self.bad[bi] = true;
                self.busy.acquire(data_ready, t_prog);
                self.programs += 1;
                return Err(FlashError::ProgramFailed(addr));
            }
        }
        *slot = Some(data);
        self.written += 1;
        let grant = self.busy.acquire(data_ready, t_prog);
        self.programs += 1;
        Ok(grant.end)
    }

    /// Erases a whole block, freeing its pages. Returns completion time.
    ///
    /// With fault injection enabled, an erase can fail: the chip is still
    /// occupied for `t_erase`, the block keeps its stale contents and is
    /// marked grown-bad. Erases of an already grown-bad block are rejected.
    pub fn erase_block(
        &mut self,
        geom: &FlashGeometry,
        fault: &FaultConfig,
        plane: u32,
        block: u32,
        ready: SimTime,
        t_erase: SimDur,
    ) -> Result<SimTime, FlashError> {
        let bi = Self::block_index(geom, plane, block);
        let probe = PhysPageAddr {
            channel: self.channel,
            chip: self.chip,
            plane,
            block,
            page: 0,
        };
        if fault.enabled {
            if self.bad[bi] {
                return Err(FlashError::GrownBad(probe));
            }
            let key = fault.op_key(
                geom.linear_index(probe),
                self.erase_counts[bi],
                self.fault_seq,
            );
            self.fault_seq += 1;
            if fault.draw_erase_fail(key) {
                self.bad[bi] = true;
                self.busy.acquire(ready, t_erase);
                self.erases += 1;
                return Err(FlashError::EraseFailed {
                    channel: self.channel,
                    chip: self.chip,
                    plane,
                    block,
                });
            }
        }
        if let Some(pages) = self.blocks[bi].take() {
            self.written -= pages.iter().filter(|p| p.is_some()).count();
        }
        let grant = self.busy.acquire(ready, t_erase);
        self.erases += 1;
        self.erase_counts[bi] += 1;
        Ok(grant.end)
    }

    /// Times this block has been erased (the fault model's program epoch).
    pub fn erase_count(&self, geom: &FlashGeometry, plane: u32, block: u32) -> u32 {
        self.erase_counts[Self::block_index(geom, plane, block)]
    }

    /// True if the block has been marked grown-bad by a failed program or
    /// erase.
    pub fn is_bad(&self, geom: &FlashGeometry, plane: u32, block: u32) -> bool {
        self.bad[Self::block_index(geom, plane, block)]
    }

    /// True if the page currently holds programmed data.
    pub fn is_written(&self, geom: &FlashGeometry, addr: PhysPageAddr) -> bool {
        self.slot(geom, addr).is_some()
    }

    /// When the chip next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.busy.free_at()
    }

    /// Cumulative busy time.
    pub fn busy_time(&self) -> SimDur {
        self.busy.busy_time()
    }

    /// (reads, programs, erases) counters, for wear accounting.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (self.reads, self.programs, self.erases)
    }

    /// Number of currently-programmed pages.
    pub fn written_pages(&self) -> usize {
        self.written
    }

    /// Returns the chip to idle at t = 0, keeping data (between phases).
    pub fn reset_time(&mut self) {
        self.busy.reset_time();
    }

    /// Serializes the chip. The page store uses a sparse encoding: only
    /// allocated blocks appear (prefixed with their index), and within a
    /// block each page carries a presence flag — a freshly-loaded device
    /// with most blocks untouched costs a handful of bytes per empty block
    /// instead of `pages_per_block` empty slots.
    pub fn save_state(&self, enc: &mut assasin_snap::Encoder) {
        enc.u32(self.channel);
        enc.u32(self.chip);
        enc.len_of(self.blocks.iter().filter(|b| b.is_some()).count());
        for (bi, block) in self.blocks.iter().enumerate() {
            let Some(pages) = block else { continue };
            enc.len_of(bi);
            for page in pages.iter() {
                match page {
                    Some(data) => {
                        enc.bool(true);
                        enc.bytes(data);
                    }
                    None => enc.bool(false),
                }
            }
        }
        enc.len_of(self.written);
        self.busy.save_state(enc);
        enc.u64(self.reads);
        enc.u64(self.programs);
        enc.u64(self.erases);
        for &e in &self.erase_counts {
            enc.u32(e);
        }
        for &b in &self.bad {
            enc.bool(b);
        }
        enc.u64(self.fault_seq);
    }

    /// Restores a snapshot taken by [`FlashChip::save_state`] onto this
    /// freshly-constructed chip (same geometry and coordinates).
    ///
    /// # Errors
    ///
    /// Fails on truncation, a coordinate mismatch (the section belongs to a
    /// different chip), or block/page indexes outside the geometry.
    pub fn load_snapshot(
        &mut self,
        dec: &mut assasin_snap::Decoder<'_>,
    ) -> Result<(), assasin_snap::SnapError> {
        let (channel, chip) = (dec.u32()?, dec.u32()?);
        if (channel, chip) != (self.channel, self.chip) {
            return Err(assasin_snap::SnapError::Malformed(format!(
                "chip section for ({channel}, {chip}) routed to ({}, {})",
                self.channel, self.chip
            )));
        }
        self.blocks.fill(None);
        let n_blocks = dec.len_of()?;
        for _ in 0..n_blocks {
            let bi = dec.len_of()?;
            if bi >= self.blocks.len() {
                return Err(assasin_snap::SnapError::Malformed(format!(
                    "block index {bi} outside {} blocks",
                    self.blocks.len()
                )));
            }
            let mut pages = vec![None; self.pages_per_block];
            for slot in &mut pages {
                if dec.bool()? {
                    *slot = Some(Bytes::from(dec.bytes()?.to_vec()));
                }
            }
            self.blocks[bi] = Some(Arc::new(pages));
        }
        self.written = dec.len_of()?;
        self.busy = Timeline::restore_state(dec)?;
        self.reads = dec.u64()?;
        self.programs = dec.u64()?;
        self.erases = dec.u64()?;
        for e in &mut self.erase_counts {
            *e = dec.u32()?;
        }
        for b in &mut self.bad {
            *b = dec.bool()?;
        }
        self.fault_seq = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(block: u32, page: u32) -> PhysPageAddr {
        PhysPageAddr {
            channel: 0,
            chip: 0,
            plane: 0,
            block,
            page,
        }
    }

    fn page(geom: &FlashGeometry, fill: u8) -> Bytes {
        Bytes::from(vec![fill; geom.page_bytes as usize])
    }

    const NO_FAULTS: FaultConfig = FaultConfig {
        enabled: false,
        seed: 0,
        raw_ber: 0.0,
        wear_factor: 0.0,
        retention: 1.0,
        ecc_bits: 40,
        read_retry_limit: 4,
        retry_shrink: 0.25,
        program_fail_prob: 0.0,
        erase_fail_prob: 0.0,
    };

    #[test]
    fn program_then_sense_roundtrips() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(&geom, 0, 0);
        let t = FlashTimingFixture::default();
        chip.program(
            &geom,
            &NO_FAULTS,
            addr(0, 0),
            page(&geom, 0xAB),
            SimTime::ZERO,
            t.prog,
        )
        .unwrap();
        let (data, done, health) = chip
            .sense(&geom, &NO_FAULTS, addr(0, 0), SimTime::ZERO, t.read)
            .unwrap();
        assert_eq!(data, page(&geom, 0xAB));
        assert_eq!(health, PageHealth::Clean);
        // Sense queues behind the in-flight program on the same chip.
        assert_eq!(done, SimTime::ZERO + t.prog + t.read);
    }

    #[test]
    fn sense_unwritten_fails() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(&geom, 0, 0);
        let err = chip
            .sense(
                &geom,
                &NO_FAULTS,
                addr(0, 1),
                SimTime::ZERO,
                SimDur::from_us(20),
            )
            .unwrap_err();
        assert_eq!(err, FlashError::UnwrittenPage(addr(0, 1)));
    }

    #[test]
    fn double_program_requires_erase() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(&geom, 0, 0);
        let t = FlashTimingFixture::default();
        chip.program(
            &geom,
            &NO_FAULTS,
            addr(1, 0),
            page(&geom, 1),
            SimTime::ZERO,
            t.prog,
        )
        .unwrap();
        let err = chip
            .program(
                &geom,
                &NO_FAULTS,
                addr(1, 0),
                page(&geom, 2),
                SimTime::ZERO,
                t.prog,
            )
            .unwrap_err();
        assert_eq!(err, FlashError::ProgramWithoutErase(addr(1, 0)));
        chip.erase_block(&geom, &NO_FAULTS, 0, 1, SimTime::ZERO, t.erase)
            .unwrap();
        chip.program(
            &geom,
            &NO_FAULTS,
            addr(1, 0),
            page(&geom, 2),
            SimTime::ZERO,
            t.prog,
        )
        .unwrap();
        let (data, _, _) = chip
            .sense(&geom, &NO_FAULTS, addr(1, 0), SimTime::ZERO, t.read)
            .unwrap();
        assert_eq!(data, page(&geom, 2));
        assert_eq!(chip.erase_count(&geom, 0, 1), 1);
    }

    #[test]
    fn bad_page_size_rejected() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(&geom, 0, 0);
        let err = chip
            .program(
                &geom,
                &NO_FAULTS,
                addr(0, 0),
                Bytes::from_static(b"short"),
                SimTime::ZERO,
                SimDur::from_us(200),
            )
            .unwrap_err();
        assert!(matches!(err, FlashError::BadPageSize { got: 5, .. }));
    }

    #[test]
    fn erase_clears_only_target_block() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(&geom, 0, 0);
        let t = FlashTimingFixture::default();
        chip.program(
            &geom,
            &NO_FAULTS,
            addr(0, 0),
            page(&geom, 1),
            SimTime::ZERO,
            t.prog,
        )
        .unwrap();
        chip.program(
            &geom,
            &NO_FAULTS,
            addr(1, 0),
            page(&geom, 2),
            SimTime::ZERO,
            t.prog,
        )
        .unwrap();
        chip.erase_block(&geom, &NO_FAULTS, 0, 0, SimTime::ZERO, t.erase)
            .unwrap();
        assert!(!chip.is_written(&geom, addr(0, 0)));
        assert!(chip.is_written(&geom, addr(1, 0)));
        assert_eq!(chip.op_counts().2, 1);
    }

    #[test]
    fn marginal_page_retries_and_charges_extra_senses() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(&geom, 0, 0);
        let t = FlashTimingFixture::default();
        // BER high enough that the first sense always exceeds the budget
        // (lambda ~ 328 >> 40) but one retry always corrects (~82... still
        // above, two levels: ~20 < 40).
        let fault = FaultConfig::with_ber(7, 1e-2);
        chip.program(
            &geom,
            &fault,
            addr(0, 0),
            page(&geom, 9),
            SimTime::ZERO,
            t.prog,
        )
        .unwrap();
        let done_prog = chip.free_at();
        let (_, done, health) = chip
            .sense(&geom, &fault, addr(0, 0), SimTime::ZERO, t.read)
            .unwrap();
        let retries = health.retries();
        assert!(
            retries >= 1,
            "lambda far above budget must retry: {health:?}"
        );
        // Each retry re-senses: chip occupied for (1 + retries) * tR.
        assert_eq!(done, done_prog + t.read * (1 + retries as u64));
    }

    #[test]
    fn uncorrectable_page_charges_full_ladder() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(&geom, 0, 0);
        let t = FlashTimingFixture::default();
        // No retry budget and lambda far beyond ECC: always uncorrectable.
        let fault = FaultConfig {
            read_retry_limit: 0,
            ..FaultConfig::with_ber(7, 5e-2)
        };
        chip.program(
            &geom,
            &fault,
            addr(0, 0),
            page(&geom, 9),
            SimTime::ZERO,
            t.prog,
        )
        .unwrap();
        let before = chip.busy_time();
        let err = chip
            .sense(&geom, &fault, addr(0, 0), SimTime::ZERO, t.read)
            .unwrap_err();
        assert!(matches!(err, FlashError::Uncorrectable { errors, .. } if errors > 40));
        assert_eq!(
            chip.busy_time(),
            before + t.read,
            "failed sense still charged"
        );
    }

    #[test]
    fn program_failure_grows_block_bad() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(&geom, 0, 0);
        let t = FlashTimingFixture::default();
        let fault = FaultConfig {
            enabled: true,
            program_fail_prob: 1.0,
            ..FaultConfig::disabled()
        };
        let err = chip
            .program(
                &geom,
                &fault,
                addr(0, 0),
                page(&geom, 1),
                SimTime::ZERO,
                t.prog,
            )
            .unwrap_err();
        assert_eq!(err, FlashError::ProgramFailed(addr(0, 0)));
        assert!(chip.is_bad(&geom, 0, 0));
        assert!(
            !chip.is_written(&geom, addr(0, 0)),
            "failed program stores nothing"
        );
        // Follow-up program on the grown-bad block is rejected up front.
        let err = chip
            .program(
                &geom,
                &fault,
                addr(0, 1),
                page(&geom, 1),
                SimTime::ZERO,
                t.prog,
            )
            .unwrap_err();
        assert_eq!(err, FlashError::GrownBad(addr(0, 1)));
    }

    #[test]
    fn erase_failure_grows_block_bad_and_keeps_data() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(&geom, 0, 0);
        let t = FlashTimingFixture::default();
        let ok = FaultConfig {
            enabled: true,
            ..FaultConfig::disabled()
        };
        chip.program(
            &geom,
            &ok,
            addr(0, 0),
            page(&geom, 3),
            SimTime::ZERO,
            t.prog,
        )
        .unwrap();
        let fault = FaultConfig {
            erase_fail_prob: 1.0,
            ..ok
        };
        let err = chip
            .erase_block(&geom, &fault, 0, 0, SimTime::ZERO, t.erase)
            .unwrap_err();
        assert!(matches!(err, FlashError::EraseFailed { block: 0, .. }));
        assert!(chip.is_bad(&geom, 0, 0));
        assert!(
            chip.is_written(&geom, addr(0, 0)),
            "stale data survives a failed erase"
        );
        assert_eq!(
            chip.erase_count(&geom, 0, 0),
            0,
            "failed erase is not an epoch"
        );
    }

    #[test]
    fn fault_free_sense_matches_legacy_timing() {
        // The fault-injection hooks must be invisible when disabled: one
        // sense, one tR, clean health, identical counters.
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(&geom, 0, 0);
        let t = FlashTimingFixture::default();
        chip.program(
            &geom,
            &NO_FAULTS,
            addr(0, 0),
            page(&geom, 1),
            SimTime::ZERO,
            t.prog,
        )
        .unwrap();
        let busy_before = chip.busy_time();
        let (_, _, health) = chip
            .sense(&geom, &NO_FAULTS, addr(0, 0), SimTime::ZERO, t.read)
            .unwrap();
        assert_eq!(health, PageHealth::Clean);
        assert_eq!(chip.busy_time(), busy_before + t.read);
        assert_eq!(chip.op_counts().0, 1);
    }

    struct FlashTimingFixture {
        read: SimDur,
        prog: SimDur,
        erase: SimDur,
    }

    impl Default for FlashTimingFixture {
        fn default() -> Self {
            FlashTimingFixture {
                read: SimDur::from_us(20),
                prog: SimDur::from_us(200),
                erase: SimDur::from_ms(2),
            }
        }
    }
}
