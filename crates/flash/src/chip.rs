//! A single flash chip: page store plus busy timeline.

use crate::{FlashError, FlashGeometry, PhysPageAddr};
use assasin_sim::{SimDur, SimTime, Timeline};
use bytes::Bytes;

/// One flash chip (logical die): stores page contents and models the chip's
/// busy time for sense/program/erase operations.
///
/// Pages are stored sparsely; an unprogrammed page reads back as an error,
/// matching NAND semantics where a page must be programmed after erase
/// before it holds data.
///
/// The store is a two-level array — an outer slot per block (allocated on
/// first program) holding one `Option<Bytes>` slot per page — so a sense is
/// two bounds-checked indexes rather than a hash. Plan scheduling senses
/// every input page of a run up front, which made the hash the hottest part
/// of the flash model.
#[derive(Debug, Clone)]
pub struct FlashChip {
    /// Page contents: outer index `plane * blocks_per_plane + block`,
    /// inner index the page within the block.
    blocks: Vec<Option<Box<[Option<Bytes>]>>>,
    pages_per_block: usize,
    /// Programmed-page count (kept so wear accounting stays O(1)).
    written: usize,
    busy: Timeline,
    reads: u64,
    programs: u64,
    erases: u64,
}

impl FlashChip {
    /// Creates an erased chip shaped for `geom`.
    pub fn new(geom: &FlashGeometry, channel: u32, chip: u32) -> Self {
        let n_blocks = geom.planes_per_chip as usize * geom.blocks_per_plane as usize;
        FlashChip {
            blocks: vec![None; n_blocks],
            pages_per_block: geom.pages_per_block as usize,
            written: 0,
            busy: Timeline::new(format!("chip-{channel}.{chip}")),
            reads: 0,
            programs: 0,
            erases: 0,
        }
    }

    fn block_index(geom: &FlashGeometry, plane: u32, block: u32) -> usize {
        plane as usize * geom.blocks_per_plane as usize + block as usize
    }

    fn slot(&self, geom: &FlashGeometry, addr: PhysPageAddr) -> Option<&Bytes> {
        self.blocks
            .get(Self::block_index(geom, addr.plane, addr.block))?
            .as_ref()?
            .get(addr.page as usize)?
            .as_ref()
    }

    /// Returns a page's data without modeling any timing or stats — the
    /// firmware's control-plane view (used e.g. to locate record
    /// boundaries for task decomposition).
    pub fn peek(&self, geom: &FlashGeometry, addr: PhysPageAddr) -> Option<Bytes> {
        self.slot(geom, addr).cloned()
    }

    /// Senses a page into the page register. Returns the page data and the
    /// time the register is loaded (before any bus transfer).
    pub fn sense(
        &mut self,
        geom: &FlashGeometry,
        addr: PhysPageAddr,
        ready: SimTime,
        t_read: SimDur,
    ) -> Result<(Bytes, SimTime), FlashError> {
        let data = self
            .slot(geom, addr)
            .cloned()
            .ok_or(FlashError::UnwrittenPage(addr))?;
        let grant = self.busy.acquire(ready, t_read);
        self.reads += 1;
        Ok((data, grant.end))
    }

    /// Programs a page from the page register; `data_ready` is when the bus
    /// finished delivering data. Returns program completion time.
    pub fn program(
        &mut self,
        geom: &FlashGeometry,
        addr: PhysPageAddr,
        data: Bytes,
        data_ready: SimTime,
        t_prog: SimDur,
    ) -> Result<SimTime, FlashError> {
        if data.len() != geom.page_bytes as usize {
            return Err(FlashError::BadPageSize {
                addr,
                got: data.len(),
                want: geom.page_bytes as usize,
            });
        }
        let pages_per_block = self.pages_per_block;
        let block = self.blocks[Self::block_index(geom, addr.plane, addr.block)]
            .get_or_insert_with(|| vec![None; pages_per_block].into_boxed_slice());
        let slot = &mut block[addr.page as usize];
        if slot.is_some() {
            return Err(FlashError::ProgramWithoutErase(addr));
        }
        *slot = Some(data);
        self.written += 1;
        let grant = self.busy.acquire(data_ready, t_prog);
        self.programs += 1;
        Ok(grant.end)
    }

    /// Erases a whole block, freeing its pages. Returns completion time.
    pub fn erase_block(
        &mut self,
        geom: &FlashGeometry,
        plane: u32,
        block: u32,
        ready: SimTime,
        t_erase: SimDur,
    ) -> SimTime {
        if let Some(pages) = self.blocks[Self::block_index(geom, plane, block)].take() {
            self.written -= pages.iter().filter(|p| p.is_some()).count();
        }
        let grant = self.busy.acquire(ready, t_erase);
        self.erases += 1;
        grant.end
    }

    /// True if the page currently holds programmed data.
    pub fn is_written(&self, geom: &FlashGeometry, addr: PhysPageAddr) -> bool {
        self.slot(geom, addr).is_some()
    }

    /// When the chip next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.busy.free_at()
    }

    /// Cumulative busy time.
    pub fn busy_time(&self) -> SimDur {
        self.busy.busy_time()
    }

    /// (reads, programs, erases) counters, for wear accounting.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (self.reads, self.programs, self.erases)
    }

    /// Number of currently-programmed pages.
    pub fn written_pages(&self) -> usize {
        self.written
    }

    /// Returns the chip to idle at t = 0, keeping data (between phases).
    pub fn reset_time(&mut self) {
        self.busy.reset_time();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(block: u32, page: u32) -> PhysPageAddr {
        PhysPageAddr {
            channel: 0,
            chip: 0,
            plane: 0,
            block,
            page,
        }
    }

    fn page(geom: &FlashGeometry, fill: u8) -> Bytes {
        Bytes::from(vec![fill; geom.page_bytes as usize])
    }

    #[test]
    fn program_then_sense_roundtrips() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(&geom, 0, 0);
        let t = FlashTimingFixture::default();
        chip.program(&geom, addr(0, 0), page(&geom, 0xAB), SimTime::ZERO, t.prog)
            .unwrap();
        let (data, done) = chip
            .sense(&geom, addr(0, 0), SimTime::ZERO, t.read)
            .unwrap();
        assert_eq!(data, page(&geom, 0xAB));
        // Sense queues behind the in-flight program on the same chip.
        assert_eq!(done, SimTime::ZERO + t.prog + t.read);
    }

    #[test]
    fn sense_unwritten_fails() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(&geom, 0, 0);
        let err = chip
            .sense(&geom, addr(0, 1), SimTime::ZERO, SimDur::from_us(20))
            .unwrap_err();
        assert_eq!(err, FlashError::UnwrittenPage(addr(0, 1)));
    }

    #[test]
    fn double_program_requires_erase() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(&geom, 0, 0);
        let t = FlashTimingFixture::default();
        chip.program(&geom, addr(1, 0), page(&geom, 1), SimTime::ZERO, t.prog)
            .unwrap();
        let err = chip
            .program(&geom, addr(1, 0), page(&geom, 2), SimTime::ZERO, t.prog)
            .unwrap_err();
        assert_eq!(err, FlashError::ProgramWithoutErase(addr(1, 0)));
        chip.erase_block(&geom, 0, 1, SimTime::ZERO, t.erase);
        chip.program(&geom, addr(1, 0), page(&geom, 2), SimTime::ZERO, t.prog)
            .unwrap();
        let (data, _) = chip
            .sense(&geom, addr(1, 0), SimTime::ZERO, t.read)
            .unwrap();
        assert_eq!(data, page(&geom, 2));
    }

    #[test]
    fn bad_page_size_rejected() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(&geom, 0, 0);
        let err = chip
            .program(
                &geom,
                addr(0, 0),
                Bytes::from_static(b"short"),
                SimTime::ZERO,
                SimDur::from_us(200),
            )
            .unwrap_err();
        assert!(matches!(err, FlashError::BadPageSize { got: 5, .. }));
    }

    #[test]
    fn erase_clears_only_target_block() {
        let geom = FlashGeometry::small_for_tests();
        let mut chip = FlashChip::new(&geom, 0, 0);
        let t = FlashTimingFixture::default();
        chip.program(&geom, addr(0, 0), page(&geom, 1), SimTime::ZERO, t.prog)
            .unwrap();
        chip.program(&geom, addr(1, 0), page(&geom, 2), SimTime::ZERO, t.prog)
            .unwrap();
        chip.erase_block(&geom, 0, 0, SimTime::ZERO, t.erase);
        assert!(!chip.is_written(&geom, addr(0, 0)));
        assert!(chip.is_written(&geom, addr(1, 0)));
        assert_eq!(chip.op_counts().2, 1);
    }

    struct FlashTimingFixture {
        read: SimDur,
        prog: SimDur,
        erase: SimDur,
    }

    impl Default for FlashTimingFixture {
        fn default() -> Self {
            FlashTimingFixture {
                read: SimDur::from_us(20),
                prog: SimDur::from_us(200),
                erase: SimDur::from_ms(2),
            }
        }
    }
}
