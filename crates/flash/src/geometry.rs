//! Flash array geometry and physical page addressing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The physical organization of the flash array (Section II-B, Figure 3).
///
/// The default matches the paper's evaluated SSD (Section VI-A): eight
/// channels, each able to sustain 1 GB/s with several interleaved chips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlashGeometry {
    /// Number of flash channels.
    pub channels: u32,
    /// Chips (logical dies) sharing each channel bus.
    pub chips_per_channel: u32,
    /// Planes per chip.
    pub planes_per_chip: u32,
    /// Erase blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Bytes per flash page.
    pub page_bytes: u32,
}

impl FlashGeometry {
    /// Pages in one plane.
    pub fn pages_per_plane(&self) -> u64 {
        self.blocks_per_plane as u64 * self.pages_per_block as u64
    }

    /// Pages in one chip.
    pub fn pages_per_chip(&self) -> u64 {
        self.planes_per_chip as u64 * self.pages_per_plane()
    }

    /// Pages in one channel.
    pub fn pages_per_channel(&self) -> u64 {
        self.chips_per_channel as u64 * self.pages_per_chip()
    }

    /// Total pages in the array.
    pub fn total_pages(&self) -> u64 {
        self.channels as u64 * self.pages_per_channel()
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// True if `addr` names a page inside this geometry.
    pub fn contains(&self, addr: PhysPageAddr) -> bool {
        addr.channel < self.channels
            && addr.chip < self.chips_per_channel
            && addr.plane < self.planes_per_chip
            && addr.block < self.blocks_per_plane
            && addr.page < self.pages_per_block
    }

    /// Linearizes a physical address to `0..total_pages()`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside this geometry.
    pub fn linear_index(&self, addr: PhysPageAddr) -> u64 {
        assert!(self.contains(addr), "address {addr} outside geometry");
        (((addr.channel as u64 * self.chips_per_channel as u64 + addr.chip as u64)
            * self.planes_per_chip as u64
            + addr.plane as u64)
            * self.blocks_per_plane as u64
            + addr.block as u64)
            * self.pages_per_block as u64
            + addr.page as u64
    }

    /// Inverse of [`FlashGeometry::linear_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= total_pages()`.
    pub fn addr_from_linear(&self, index: u64) -> PhysPageAddr {
        assert!(index < self.total_pages(), "linear index out of range");
        let page = (index % self.pages_per_block as u64) as u32;
        let rest = index / self.pages_per_block as u64;
        let block = (rest % self.blocks_per_plane as u64) as u32;
        let rest = rest / self.blocks_per_plane as u64;
        let plane = (rest % self.planes_per_chip as u64) as u32;
        let rest = rest / self.planes_per_chip as u64;
        let chip = (rest % self.chips_per_channel as u64) as u32;
        let channel = (rest / self.chips_per_channel as u64) as u32;
        PhysPageAddr {
            channel,
            chip,
            plane,
            block,
            page,
        }
    }

    /// A tiny geometry for unit tests: 2 channels x 2 chips, 64 KiB total.
    pub fn small_for_tests() -> Self {
        FlashGeometry {
            channels: 2,
            chips_per_channel: 2,
            planes_per_chip: 1,
            blocks_per_plane: 2,
            pages_per_block: 2,
            page_bytes: 4096,
        }
    }
}

impl Default for FlashGeometry {
    /// The paper's evaluated array: 8 channels, 8 chips/channel, 4 KiB
    /// pages. Block/plane counts are sized for multi-GiB experiments while
    /// staying lazy in host memory.
    fn default() -> Self {
        FlashGeometry {
            channels: 8,
            chips_per_channel: 8,
            planes_per_chip: 2,
            blocks_per_plane: 512,
            pages_per_block: 256,
            page_bytes: 4096,
        }
    }
}

/// A physical flash page location (Section II-A: "a flash chip ID and the
/// specific location inside the chip").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhysPageAddr {
    /// Channel index.
    pub channel: u32,
    /// Chip within the channel.
    pub chip: u32,
    /// Plane within the chip.
    pub plane: u32,
    /// Erase block within the plane.
    pub block: u32,
    /// Page within the block.
    pub page: u32,
}

impl fmt::Display for PhysPageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}.chip{}.pl{}.blk{}.pg{}",
            self.channel, self.chip, self.plane, self.block, self.page
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_capacity() {
        let g = FlashGeometry::default();
        // 8 * 8 * 2 * 512 * 256 pages * 4KiB = 64 GiB
        assert_eq!(g.capacity_bytes(), 64u64 << 30);
    }

    #[test]
    fn linear_roundtrip_exhaustive_small() {
        let g = FlashGeometry::small_for_tests();
        for i in 0..g.total_pages() {
            let a = g.addr_from_linear(i);
            assert!(g.contains(a));
            assert_eq!(g.linear_index(a), i);
        }
    }

    #[test]
    fn contains_rejects_out_of_range() {
        let g = FlashGeometry::small_for_tests();
        let bad = PhysPageAddr {
            channel: g.channels,
            chip: 0,
            plane: 0,
            block: 0,
            page: 0,
        };
        assert!(!g.contains(bad));
    }

    #[test]
    #[should_panic(expected = "outside geometry")]
    fn linear_index_panics_out_of_range() {
        let g = FlashGeometry::small_for_tests();
        let bad = PhysPageAddr {
            channel: 9,
            chip: 0,
            plane: 0,
            block: 0,
            page: 0,
        };
        let _ = g.linear_index(bad);
    }

    #[test]
    fn display_is_readable() {
        let a = PhysPageAddr {
            channel: 1,
            chip: 2,
            plane: 0,
            block: 3,
            page: 4,
        };
        assert_eq!(a.to_string(), "ch1.chip2.pl0.blk3.pg4");
    }
}
