//! Process-wide reliability counters.
//!
//! The perf harness records, per experiment, how much reliability work the
//! flash layer did: read-retry re-senses, ECC corrections, uncorrectable
//! pages and grown bad blocks. Like the SSD crate's co-sim counters, these
//! are cumulative across every array in the process (atomics, so parallel
//! sweeps aggregate correctly); callers snapshot before/after a region and
//! subtract.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

static READ_RETRIES: AtomicU64 = AtomicU64::new(0);
static ECC_CORRECTED: AtomicU64 = AtomicU64::new(0);
static UNCORRECTABLE: AtomicU64 = AtomicU64::new(0);
static GROWN_BAD: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide reliability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReliabilityCounters {
    /// Read-retry re-senses beyond initial senses.
    pub read_retries: u64,
    /// Pages needing ECC correction.
    pub ecc_corrected: u64,
    /// Reads uncorrectable after the full retry ladder.
    pub uncorrectable: u64,
    /// Blocks grown bad by program/erase failures.
    pub grown_bad_blocks: u64,
}

impl ReliabilityCounters {
    /// Counter deltas since an `earlier` snapshot.
    pub fn since(self, earlier: ReliabilityCounters) -> ReliabilityCounters {
        ReliabilityCounters {
            read_retries: self.read_retries - earlier.read_retries,
            ecc_corrected: self.ecc_corrected - earlier.ecc_corrected,
            uncorrectable: self.uncorrectable - earlier.uncorrectable,
            grown_bad_blocks: self.grown_bad_blocks - earlier.grown_bad_blocks,
        }
    }
}

/// Cumulative reliability counters over all flash arrays in this process.
pub fn reliability_counters() -> ReliabilityCounters {
    ReliabilityCounters {
        read_retries: READ_RETRIES.load(Ordering::Relaxed),
        ecc_corrected: ECC_CORRECTED.load(Ordering::Relaxed),
        uncorrectable: UNCORRECTABLE.load(Ordering::Relaxed),
        grown_bad_blocks: GROWN_BAD.load(Ordering::Relaxed),
    }
}

pub(crate) fn record_read(retries: u64, corrected: bool) {
    if retries > 0 {
        READ_RETRIES.fetch_add(retries, Ordering::Relaxed);
    }
    if corrected {
        ECC_CORRECTED.fetch_add(1, Ordering::Relaxed);
    }
}

pub(crate) fn record_uncorrectable(retries: u64) {
    if retries > 0 {
        READ_RETRIES.fetch_add(retries, Ordering::Relaxed);
    }
    UNCORRECTABLE.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_grown_bad() {
    GROWN_BAD.fetch_add(1, Ordering::Relaxed);
}
