//! Multi-device SSD arrays over the single-device simulator.
//!
//! The paper evaluates ASSASIN as one computational SSD on one host
//! link. Deployments aggregate many such devices behind a shared root
//! complex, and the interesting system effects — scaling, skew,
//! degraded reads, rebuild storms — only appear at array scale. This
//! crate builds that layer on top of `assasin-ssd` without touching the
//! device model:
//!
//! * [`SsdArray`] owns N devices, either fresh or all forked from one
//!   preconditioned [`SsdImage`](assasin_ssd::SsdImage) (the PR 6
//!   clone-on-write machinery, so N-device preconditioning costs one
//!   load).
//! * [`ArrayPlacement`] is the host-side placement/erasure policy:
//!   striping, weighted (skewed) striping, K-way replication, and
//!   RAID4/RAID6 parity promoted from the device-local kernels
//!   (`assasin-kernels::raid`) to cross-device erasure with
//!   degraded-read and rebuild paths (see [`recover`]).
//! * A shared [`HostLink`](assasin_sim::HostLink) charges every
//!   host-bound byte through one root complex, so concurrent devices
//!   contend the way the paper-scale evaluation never shows.
//!
//! # Determinism contract
//!
//! With [`ArrayExec::Threaded`], each device advances on its own worker
//! thread between host-visible sync points (one array operation is one
//! sync interval). The device type is `!Send`, so workers *own* their
//! devices — built on-thread from a shared config/image — and only
//! `Send` command/reply values cross threads. Every device command
//! starts from a quiesced device (t = 0) and reports its own elapsed
//! time; all cross-device bookkeeping happens on the host afterwards:
//! per-device clocks accumulate elapsed times in issue order,
//! completions are merged in `(completion_time, device_id, seq)` order,
//! and the shared root is charged FIFO in merged order. Nothing
//! observable depends on thread scheduling, so a threaded 8-device run
//! is byte-identical to the serial run — enforced by a property test,
//! not by hope.

mod array;
mod config;
mod counters;
mod engine;
mod error;
mod placement;
pub mod recover;

pub use array::{
    ArrayRead, ArrayScomp, ArrayStats, DeviceLane, DeviceStats, LinkReport, RebuildReport,
    SsdArray, StoreReport,
};
pub use config::{ArrayConfig, ArrayExec};
pub use counters::array_counters;
pub use error::ArrayError;
pub use placement::{ArrayPlacement, ChunkLoc, StoredObject, StripeLoc};
