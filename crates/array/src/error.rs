//! Array-level error type.

use std::error::Error;
use std::fmt;

use assasin_ssd::SsdError;

/// Failures surfaced by [`SsdArray`](crate::SsdArray) operations.
#[derive(Debug)]
pub enum ArrayError {
    /// A device rejected or failed a command.
    Device {
        /// The device that failed.
        device: usize,
        /// The underlying device error.
        source: SsdError,
    },
    /// More devices are down than the placement's redundancy covers:
    /// the chunk is unrecoverable.
    DataLoss {
        /// Object whose chunk is gone.
        object: u64,
        /// Index of the unrecoverable data chunk.
        chunk: usize,
    },
    /// The operation needs a device that is currently failed (and the
    /// operation has no degraded path).
    Degraded {
        /// The failed device in the way.
        device: usize,
        /// What needed it.
        what: &'static str,
    },
    /// A device executor failed outright — a panic while running a
    /// command (payload captured in `cause`), or a command routed to a
    /// device an earlier panic took offline. The coordinator survives;
    /// the device slot can be brought back with a replacement drive.
    WorkerFailed {
        /// The device whose executor failed.
        device: usize,
        /// The captured panic payload (or offline diagnosis).
        cause: String,
    },
    /// No object with this id in the catalog.
    UnknownObject(u64),
    /// An object with this id already exists.
    DuplicateObject(u64),
    /// The array configuration is inconsistent.
    BadConfig(String),
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::Device { device, source } => {
                write!(f, "device {device}: {source}")
            }
            ArrayError::DataLoss { object, chunk } => {
                write!(
                    f,
                    "object {object} chunk {chunk} is unrecoverable: more failures than redundancy"
                )
            }
            ArrayError::Degraded { device, what } => {
                write!(f, "{what} needs failed device {device}")
            }
            ArrayError::WorkerFailed { device, cause } => {
                write!(f, "device {device} worker failed: {cause}")
            }
            ArrayError::UnknownObject(id) => write!(f, "no object {id} in the array catalog"),
            ArrayError::DuplicateObject(id) => write!(f, "object {id} already stored"),
            ArrayError::BadConfig(why) => write!(f, "bad array config: {why}"),
        }
    }
}

impl Error for ArrayError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArrayError::Device { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<ArrayError>();
    }
}
