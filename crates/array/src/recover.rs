//! Cross-device erasure math: parity generation and reconstruction.
//!
//! The device-local kernels (`assasin_kernels::raid`) compute RAID4/6
//! syndromes *inside* one SSD as a streaming workload. Promoted to
//! array scope, the same math protects chunks across devices: `P = Σ
//! d_i` and `Q = Σ g^i · d_i` over GF(256) with the field and generator
//! the kernels use (`assasin_kernels::gf256`, polynomial 0x11D,
//! `g = 2`). The coefficient index `i` is the chunk's position within
//! its stripe, matching the kernels' stream order — the unit tests pin
//! this module byte-for-byte against `raid4_golden`/`raid6_golden`.
//!
//! Streams of uneven length (a short final stripe member) are
//! zero-padded to the stripe length before coding, mirroring the
//! zero-padding flash pages already get on load.

use assasin_kernels::gf256;

/// Pads `s` to `len` with zeros.
fn padded(s: &[u8], len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    v[..s.len()].copy_from_slice(s);
    v
}

fn xor_into(acc: &mut [u8], src: &[u8]) {
    for (a, b) in acc.iter_mut().zip(src.iter()) {
        *a ^= b;
    }
}

fn mul_xor_into(acc: &mut [u8], coeff: u8, src: &[u8]) {
    for (a, b) in acc.iter_mut().zip(src.iter()) {
        *a ^= gf256::mul(coeff, *b);
    }
}

/// `a^n` in GF(256) by square-and-multiply.
fn gf_pow(mut a: u8, mut n: u32) -> u8 {
    let mut acc = 1u8;
    while n > 0 {
        if n & 1 != 0 {
            acc = gf256::mul(acc, a);
        }
        a = gf256::mul(a, a);
        n >>= 1;
    }
    acc
}

/// Multiplicative inverse in GF(256): `a^254`, since `a^255 = 1`.
///
/// # Panics
///
/// Panics on `a == 0`, which has no inverse.
pub fn gf_inv(a: u8) -> u8 {
    assert!(a != 0, "0 has no inverse in GF(256)");
    gf_pow(a, 254)
}

/// XOR parity of `streams`, each zero-padded to `len` (RAID4's `P`).
pub fn p_parity(streams: &[&[u8]], len: usize) -> Vec<u8> {
    let mut p = vec![0u8; len];
    for s in streams {
        xor_into(&mut p, s);
    }
    p
}

/// `(P, Q)` of `streams`, each zero-padded to `len`, with `Q`
/// coefficients `g^i` by stream position (RAID6).
pub fn pq_parity(streams: &[&[u8]], len: usize) -> (Vec<u8>, Vec<u8>) {
    let mut p = vec![0u8; len];
    let mut q = vec![0u8; len];
    for (i, s) in streams.iter().enumerate() {
        xor_into(&mut p, s);
        mul_xor_into(&mut q, gf256::gen_pow(i as u32), s);
    }
    (p, q)
}

/// Recovers one lost stream from XOR parity: `d_x = P ^ Σ_{i≠x} d_i`.
/// `survivors` carries `(position, bytes)` pairs; positions are not
/// needed for XOR but keep the call shape uniform.
pub fn recover_from_p(survivors: &[(usize, &[u8])], p: &[u8]) -> Vec<u8> {
    let mut d = p.to_vec();
    for (_, s) in survivors {
        xor_into(&mut d, s);
    }
    d
}

/// Recovers the lost stream at position `lost` from `Q` alone:
/// `d_x = (Q ^ Σ_{i≠x} g^i d_i) / g^x`. Used when `P`'s device is down
/// too but `Q` survives.
pub fn recover_from_q(survivors: &[(usize, &[u8])], q: &[u8], lost: usize) -> Vec<u8> {
    let mut num = q.to_vec();
    for &(i, s) in survivors {
        mul_xor_into(&mut num, gf256::gen_pow(i as u32), s);
    }
    let inv = gf_inv(gf256::gen_pow(lost as u32));
    for b in num.iter_mut() {
        *b = gf256::mul(inv, *b);
    }
    num
}

/// Recovers two lost streams at positions `x < y` from `P` and `Q`:
///
/// ```text
/// p' = P ^ Σ survivors           (= d_x ^ d_y)
/// q' = Q ^ Σ g^i·survivors       (= g^x·d_x ^ g^y·d_y)
/// d_x = (q' ^ g^y·p') / (g^x ^ g^y),   d_y = p' ^ d_x
/// ```
///
/// `g^x ≠ g^y` for distinct positions below the field order, so the
/// divisor never vanishes.
///
/// # Panics
///
/// Panics if `x == y`.
pub fn recover_two(
    survivors: &[(usize, &[u8])],
    p: &[u8],
    q: &[u8],
    x: usize,
    y: usize,
) -> (Vec<u8>, Vec<u8>) {
    assert!(x != y, "two-loss recovery needs two distinct positions");
    let mut p_syn = p.to_vec();
    let mut q_syn = q.to_vec();
    for &(i, s) in survivors {
        xor_into(&mut p_syn, s);
        mul_xor_into(&mut q_syn, gf256::gen_pow(i as u32), s);
    }
    let gx = gf256::gen_pow(x as u32);
    let gy = gf256::gen_pow(y as u32);
    let inv = gf_inv(gx ^ gy);
    let mut dx = vec![0u8; p.len()];
    let mut dy = vec![0u8; p.len()];
    for i in 0..p.len() {
        let rx = gf256::mul(inv, q_syn[i] ^ gf256::mul(gy, p_syn[i]));
        dx[i] = rx;
        dy[i] = p_syn[i] ^ rx;
    }
    (dx, dy)
}

/// Zero-pads every stream to `len` (callers hand survivors whose true
/// byte counts differ on a short final stripe).
pub fn pad_streams(streams: &[(usize, &[u8])], len: usize) -> Vec<(usize, Vec<u8>)> {
    streams.iter().map(|&(i, s)| (i, padded(s, len))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use assasin_kernels::raid::{raid4_golden, raid6_golden};

    fn streams() -> Vec<Vec<u8>> {
        // 4 deterministic pseudo-random streams, the kernel's
        // DATA_STREAMS shape.
        (0..4u64)
            .map(|s| {
                let mut x = 0x9e3779b97f4a7c15u64.wrapping_mul(s + 1);
                (0..64)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        (x >> 32) as u8
                    })
                    .collect()
            })
            .collect()
    }

    fn refs(v: &[Vec<u8>]) -> Vec<&[u8]> {
        v.iter().map(|s| s.as_slice()).collect()
    }

    #[test]
    fn p_parity_matches_raid4_kernel_golden() {
        let data = streams();
        assert_eq!(p_parity(&refs(&data), 64), raid4_golden(&refs(&data)));
    }

    #[test]
    fn pq_parity_matches_raid6_kernel_golden() {
        let data = streams();
        let (p, q) = pq_parity(&refs(&data), 64);
        let golden = raid6_golden(&refs(&data));
        let (gp, gq): (Vec<u8>, Vec<u8>) = golden
            .chunks_exact(2)
            .map(|pair| (pair[0], pair[1]))
            .unzip();
        assert_eq!(p, gp);
        assert_eq!(q, gq);
    }

    #[test]
    fn gf_inverse_inverts_every_nonzero_element() {
        for a in 1..=255u8 {
            assert_eq!(gf256::mul(a, gf_inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    fn single_loss_recovers_from_p_or_q() {
        let data = streams();
        let (p, q) = pq_parity(&refs(&data), 64);
        for lost in 0..4 {
            let survivors: Vec<(usize, &[u8])> = data
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != lost)
                .map(|(i, s)| (i, s.as_slice()))
                .collect();
            assert_eq!(recover_from_p(&survivors, &p), data[lost], "P, lost {lost}");
            assert_eq!(
                recover_from_q(&survivors, &q, lost),
                data[lost],
                "Q, lost {lost}"
            );
        }
    }

    #[test]
    fn double_loss_recovers_from_p_and_q() {
        let data = streams();
        let (p, q) = pq_parity(&refs(&data), 64);
        for x in 0..4 {
            for y in (x + 1)..4 {
                let survivors: Vec<(usize, &[u8])> = data
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != x && i != y)
                    .map(|(i, s)| (i, s.as_slice()))
                    .collect();
                let (dx, dy) = recover_two(&survivors, &p, &q, x, y);
                assert_eq!(dx, data[x], "lost ({x},{y})");
                assert_eq!(dy, data[y], "lost ({x},{y})");
            }
        }
    }

    #[test]
    fn short_members_code_as_zero_padded() {
        let data = streams();
        let mut short = data.clone();
        short[3].truncate(20);
        let padded_refs: Vec<Vec<u8>> = short.iter().map(|s| padded(s, 64)).collect();
        let (p, q) = pq_parity(&refs(&short), 64);
        let (pp, pq) = pq_parity(&refs(&padded_refs), 64);
        assert_eq!(p, pp);
        assert_eq!(q, pq);
    }
}
