//! Per-device execution engine: serial or worker-threaded, with a
//! deterministic completion merge.
//!
//! `Ssd` is `!Send` (its DRAM is an `Rc`-shared cell), so devices can
//! never migrate between threads. Instead each worker thread *builds
//! and owns* its devices — forked on-thread from a shared
//! `Arc<SsdImage>` or constructed fresh from the (Copy, Send) config —
//! and only `Send` command/reply values cross the channel. The calling
//! thread is executor 0 and runs its own share of devices while the
//! workers run theirs, the same caller-participates shape as
//! `assasin_parallel::par_map`.
//!
//! Determinism does not depend on scheduling: every command runs
//! against a quiesced device and reports a standalone elapsed time, and
//! commands for one device always execute in issue (`seq`) order on the
//! one thread that owns it. The host rebuilds global time afterwards —
//! per-device clocks, then the `(completion, device, seq)` merge that
//! fixes the order in which the shared root link is charged.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use assasin_ftl::Lpa;
use assasin_parallel::{claim_threads, ThreadLease};
use assasin_sim::{SimDur, SimTime};
use assasin_ssd::{ScompRequest, ScompResult, Ssd, SsdConfig, SsdError, SsdImage};

use crate::config::ArrayExec;

/// How an executor builds the devices it owns. Cheap to clone and
/// `Send`: per-device configs plus an optional shared preconditioned
/// image every device forks from.
#[derive(Clone)]
pub(crate) struct DeviceSource {
    pub cfgs: Arc<Vec<SsdConfig>>,
    pub image: Option<Arc<SsdImage>>,
}

impl DeviceSource {
    fn build(&self, device: usize) -> Ssd {
        let cfg = self.cfgs[device];
        match &self.image {
            Some(img) => img.fork(cfg),
            None => Ssd::new(cfg),
        }
    }
}

/// One command against one device. Everything here is `Send`; the
/// device itself never moves.
pub(crate) enum DeviceCmd {
    /// Untimed dataset load (`Ssd::load_object` semantics).
    Store { first_lpa: u64, data: Arc<[u8]> },
    /// Timed conventional read of `bytes` spanning `lpas`.
    Read { lpas: Vec<Lpa>, bytes: u64 },
    /// Timed on-device computation.
    Scomp { req: Box<ScompRequest> },
    /// Swap in a factory-blank replacement device (rebuild target).
    Replace,
    /// Test hook: panic while executing. With `caught: false` the panic
    /// fires *outside* the per-command catch on a worker thread, killing
    /// it, so the coordinator's channel-disconnect recovery is
    /// exercisable.
    #[cfg(test)]
    Panic { caught: bool },
}

pub(crate) enum DeviceReply {
    Store { lpas: Vec<Lpa> },
    Read { data: Vec<u8>, elapsed: SimDur },
    Scomp { result: Box<ScompResult> },
    Replaced,
}

fn exec(
    ssd: &mut Ssd,
    source: &DeviceSource,
    device: usize,
    cmd: DeviceCmd,
) -> Result<DeviceReply, SsdError> {
    match cmd {
        DeviceCmd::Store { first_lpa, data } => {
            let lpas = ssd.load_object(first_lpa, &data)?;
            Ok(DeviceReply::Store { lpas })
        }
        DeviceCmd::Read { lpas, bytes } => {
            let r = ssd.read_lpas(&lpas, bytes)?;
            Ok(DeviceReply::Read {
                data: r.data,
                elapsed: r.elapsed,
            })
        }
        DeviceCmd::Scomp { req } => Ok(DeviceReply::Scomp {
            result: Box::new(ssd.scomp(&req)?),
        }),
        DeviceCmd::Replace => {
            // A replacement drive is factory-blank: same config, no
            // image fork (the rebuild repopulates it from its peers).
            *ssd = Ssd::new(source.cfgs[device]);
            Ok(DeviceReply::Replaced)
        }
        #[cfg(test)]
        DeviceCmd::Panic { .. } => panic!("injected device panic"),
    }
}

/// Why one command failed: a typed device error, or an executor failure
/// (a panic captured from the command, or a device taken offline by an
/// earlier one). The array layer maps these onto `ArrayError::Device`
/// and `ArrayError::WorkerFailed` respectively.
pub(crate) enum ExecError {
    Device(SsdError),
    Worker(String),
}

/// Renders a captured panic payload for the typed error surface.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Runs one command against the executor's owned devices, catching
/// panics. A panicking command poisons its device (the `Ssd`'s internal
/// invariants may no longer hold), so the device is dropped from the
/// owned set; later commands against it fail with a typed error — except
/// `Replace`, which installs a factory-blank drive and brings the slot
/// back, the same degrade-then-rebuild path as a media failure.
fn run_cmd(
    owned: &mut HashMap<usize, Ssd>,
    source: &DeviceSource,
    dev: usize,
    cmd: DeviceCmd,
) -> Result<DeviceReply, ExecError> {
    let Some(ssd) = owned.get_mut(&dev) else {
        if matches!(cmd, DeviceCmd::Replace) {
            owned.insert(dev, Ssd::new(source.cfgs[dev]));
            return Ok(DeviceReply::Replaced);
        }
        return Err(ExecError::Worker(format!(
            "device {dev} is offline after an earlier panic (Replace brings it back)"
        )));
    };
    match catch_unwind(AssertUnwindSafe(|| exec(ssd, source, dev, cmd))) {
        Ok(reply) => reply.map_err(ExecError::Device),
        Err(payload) => {
            owned.remove(&dev);
            Err(ExecError::Worker(panic_message(payload)))
        }
    }
}

/// Test hook: lets `DeviceCmd::Panic { caught: false }` blow up a worker
/// thread *outside* the per-command catch, so the coordinator's
/// disconnect recovery has something real to recover from.
#[cfg(test)]
fn worker_crash_hook(cmd: &DeviceCmd) {
    if let DeviceCmd::Panic { caught: false } = cmd {
        panic!("injected worker crash");
    }
}
#[cfg(not(test))]
fn worker_crash_hook(_cmd: &DeviceCmd) {}

type CmdBatch = Vec<(u64, usize, DeviceCmd)>;
type ReplyBatch = Vec<(u64, Result<DeviceReply, ExecError>)>;

struct Worker {
    tx: Option<Sender<CmdBatch>>,
    rx: Receiver<ReplyBatch>,
    handle: Option<JoinHandle<()>>,
    /// Rendered cause of a dead worker, filled by `failure_cause` the
    /// first time a channel to it disconnects.
    fault: Option<String>,
}

impl Worker {
    /// Joins a worker whose channel disconnected and renders what killed
    /// it (the panic payload, normally). Idempotent: the cause is cached
    /// so every affected batch reports the same failure.
    fn failure_cause(&mut self) -> String {
        if self.fault.is_none() {
            self.tx.take();
            let cause = match self.handle.take() {
                Some(handle) => match handle.join() {
                    Err(payload) => panic_message(payload),
                    Ok(()) => "worker exited without replying".to_string(),
                },
                None => "worker already joined".to_string(),
            };
            self.fault = Some(cause);
        }
        self.fault.clone().expect("cause cached above")
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Closing the command channel ends the worker loop; the join
        // result is irrelevant on teardown (a panic already surfaced as
        // a typed error at the disconnect in run_batch).
        self.tx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn spawn_worker(devices: Vec<usize>, source: DeviceSource) -> Worker {
    let (tx_cmd, rx_cmd) = channel::<CmdBatch>();
    let (tx_rep, rx_rep) = channel::<ReplyBatch>();
    let handle = std::thread::Builder::new()
        .name("array-worker".into())
        .spawn(move || {
            let mut owned: HashMap<usize, Ssd> =
                devices.into_iter().map(|d| (d, source.build(d))).collect();
            while let Ok(batch) = rx_cmd.recv() {
                let replies: ReplyBatch = batch
                    .into_iter()
                    .map(|(seq, dev, cmd)| {
                        worker_crash_hook(&cmd);
                        (seq, run_cmd(&mut owned, &source, dev, cmd))
                    })
                    .collect();
                if tx_rep.send(replies).is_err() {
                    break;
                }
            }
        })
        .expect("spawn array worker thread");
    Worker {
        tx: Some(tx_cmd),
        rx: rx_rep,
        handle: Some(handle),
        fault: None,
    }
}

/// The device executor: host-local devices plus zero or more worker
/// threads, each owning a fixed subset.
pub(crate) struct Engine {
    source: DeviceSource,
    local: HashMap<usize, Ssd>,
    workers: Vec<Worker>,
    /// `owner[d]` — `Some(w)` if device `d` lives on worker `w`, `None`
    /// if it lives on the calling thread.
    owner: Vec<Option<usize>>,
    _lease: Option<ThreadLease>,
    requested_workers: usize,
    effective_workers: usize,
}

impl Engine {
    pub(crate) fn new(devices: usize, source: DeviceSource, exec: ArrayExec) -> Engine {
        let (requested, lease) = match exec {
            ArrayExec::Serial => (1, None),
            ArrayExec::Threaded { workers } => {
                let want = workers.clamp(1, devices.max(1));
                (want, Some(claim_threads(want.saturating_sub(1))))
            }
        };
        let spawned = lease.as_ref().map_or(0, |l| l.claimed());
        let executors = spawned + 1;
        let mut owner = vec![None; devices];
        let mut per_worker: Vec<Vec<usize>> = vec![Vec::new(); spawned];
        for (d, slot) in owner.iter_mut().enumerate() {
            let ex = d % executors;
            if ex > 0 {
                *slot = Some(ex - 1);
                per_worker[ex - 1].push(d);
            }
        }
        let workers: Vec<Worker> = per_worker
            .into_iter()
            .map(|devs| spawn_worker(devs, source.clone()))
            .collect();
        let local: HashMap<usize, Ssd> = owner
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_none())
            .map(|(d, _)| (d, source.build(d)))
            .collect();
        Engine {
            source,
            local,
            workers,
            owner,
            _lease: lease,
            requested_workers: requested,
            effective_workers: executors,
        }
    }

    /// Executors the caller asked for (calling thread included).
    pub(crate) fn requested_workers(&self) -> usize {
        self.requested_workers
    }

    /// Executors actually running after the budget lease (`1` means the
    /// engine degraded to serial).
    pub(crate) fn effective_workers(&self) -> usize {
        self.effective_workers
    }

    /// Runs one batch of commands and returns replies in input order.
    ///
    /// Commands addressed to the same device execute in input (`seq`)
    /// order on the one thread owning that device; commands to
    /// different devices run concurrently. The batch is a host-visible
    /// sync point: `run_batch` returns only when every command has
    /// finished.
    ///
    /// A panicking command never aborts the coordinator: panics inside a
    /// command are caught on the owning executor and surface as
    /// `ExecError::Worker` for that command; a worker thread dying
    /// outright (its channel disconnects) is joined, its panic payload
    /// captured, and every command routed to it this batch fails with
    /// that cause.
    pub(crate) fn run_batch(
        &mut self,
        cmds: Vec<(usize, DeviceCmd)>,
    ) -> Vec<Result<DeviceReply, ExecError>> {
        let n = cmds.len();
        let mut for_worker: Vec<CmdBatch> = (0..self.workers.len()).map(|_| Vec::new()).collect();
        let mut local_cmds: CmdBatch = Vec::new();
        for (seq, (dev, cmd)) in cmds.into_iter().enumerate() {
            assert!(dev < self.owner.len(), "device {dev} out of range");
            match self.owner[dev] {
                Some(w) => for_worker[w].push((seq as u64, dev, cmd)),
                None => local_cmds.push((seq as u64, dev, cmd)),
            }
        }
        let mut out: Vec<Option<Result<DeviceReply, ExecError>>> = (0..n).map(|_| None).collect();
        // Ship worker batches first so they execute while the calling
        // thread works through its own share. A send can only fail if
        // the worker already died; fail its commands with the captured
        // cause instead of propagating the second-hand panic.
        let mut active: Vec<(usize, Vec<u64>)> = Vec::new();
        for (w, batch) in for_worker.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let seqs: Vec<u64> = batch.iter().map(|(seq, _, _)| *seq).collect();
            let sent = match self.workers[w].tx.as_ref() {
                Some(tx) => tx.send(batch).is_ok(),
                None => false,
            };
            if sent {
                active.push((w, seqs));
            } else {
                let cause = self.workers[w].failure_cause();
                for seq in seqs {
                    out[seq as usize] = Some(Err(ExecError::Worker(cause.clone())));
                }
            }
        }
        for (seq, dev, cmd) in local_cmds {
            out[seq as usize] = Some(run_cmd(&mut self.local, &self.source, dev, cmd));
        }
        for (w, seqs) in active {
            match self.workers[w].rx.recv() {
                Ok(replies) => {
                    for (seq, rep) in replies {
                        out[seq as usize] = Some(rep);
                    }
                }
                Err(_) => {
                    let cause = self.workers[w].failure_cause();
                    for seq in seqs {
                        out[seq as usize] = Some(Err(ExecError::Worker(cause.clone())));
                    }
                }
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every command answered exactly once"))
            .collect()
    }
}

/// One host-bound completion awaiting its root-link crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Completion {
    /// When the transfer cleared its device (per-device clock time).
    pub ready: SimTime,
    /// Originating device.
    pub device: usize,
    /// Issue order within the batch (ties on `ready` and `device`).
    pub seq: u64,
    /// Bytes crossing the root.
    pub host_bytes: u64,
}

/// The deterministic event merge: total order on
/// `(completion_time, device_id, seq)`. This is the order the shared
/// root link is charged in, and it is a pure function of simulated
/// time — never of wall-clock scheduling.
pub(crate) fn merge_completions(mut events: Vec<Completion>) -> Vec<Completion> {
    events.sort_by_key(|e| (e.ready, e.device, e.seq));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use assasin_core::EngineKind;
    use assasin_parallel::with_max_threads;

    fn source(devices: usize) -> DeviceSource {
        DeviceSource {
            cfgs: Arc::new(vec![
                SsdConfig::small_for_tests(EngineKind::AssasinSb);
                devices
            ]),
            image: None,
        }
    }

    fn store_cmd() -> DeviceCmd {
        DeviceCmd::Store {
            first_lpa: 0,
            data: vec![42u8; 4096].into(),
        }
    }

    fn expect_worker_err(reply: &Result<DeviceReply, ExecError>, needle: &str) {
        match reply {
            Err(ExecError::Worker(cause)) => {
                assert!(cause.contains(needle), "cause {cause:?} lacks {needle:?}")
            }
            Err(ExecError::Device(e)) => panic!("expected worker failure, got device error {e}"),
            Ok(_) => panic!("expected worker failure, got success"),
        }
    }

    // Regression: a panicking command used to kill the coordinator via
    // `.expect("array worker alive")` / the recv `.expect(...)`. Both
    // executor shapes must survive with a typed error carrying the
    // payload, keep sibling devices usable, and allow `Replace` to bring
    // the poisoned slot back.
    #[test]
    fn caught_panic_poisons_device_but_engine_survives() {
        let mut engine = Engine::new(2, source(2), ArrayExec::Serial);
        let replies = engine.run_batch(vec![
            (0, DeviceCmd::Panic { caught: true }),
            (1, store_cmd()),
        ]);
        expect_worker_err(&replies[0], "injected device panic");
        assert!(matches!(replies[1], Ok(DeviceReply::Store { .. })));
        // The poisoned device stays offline with a typed error...
        let replies = engine.run_batch(vec![(0, store_cmd())]);
        expect_worker_err(&replies[0], "offline after an earlier panic");
        // ...until a replacement drive brings the slot back.
        let replies = engine.run_batch(vec![(0, DeviceCmd::Replace), (0, store_cmd())]);
        assert!(matches!(replies[0], Ok(DeviceReply::Replaced)));
        assert!(matches!(replies[1], Ok(DeviceReply::Store { .. })));
    }

    #[test]
    fn dead_worker_thread_is_joined_and_reported_not_repanicked() {
        with_max_threads(4, || {
            let mut engine = Engine::new(2, source(2), ArrayExec::Threaded { workers: 2 });
            if engine.effective_workers() < 2 {
                // Thread budget exhausted on this box; the serial-shape
                // test above covers the catch path.
                return;
            }
            // Device 1 lives on the worker; a panic outside the
            // per-command catch kills the whole thread.
            let replies = engine.run_batch(vec![
                (1, DeviceCmd::Panic { caught: false }),
                (0, store_cmd()),
            ]);
            expect_worker_err(&replies[0], "injected worker crash");
            assert!(matches!(replies[1], Ok(DeviceReply::Store { .. })));
            // Later batches to the dead worker fail with the same cached
            // cause (send-side disconnect), and the local device still
            // works.
            let replies = engine.run_batch(vec![(1, store_cmd()), (0, DeviceCmd::Replace)]);
            expect_worker_err(&replies[0], "injected worker crash");
            assert!(matches!(replies[1], Ok(DeviceReply::Replaced)));
        });
    }

    #[test]
    fn merge_orders_by_time_then_device_then_seq() {
        let ev = |ps: u64, device: usize, seq: u64| Completion {
            ready: SimTime::from_ps(ps),
            device,
            seq,
            host_bytes: 0,
        };
        let merged = merge_completions(vec![
            ev(50, 2, 9),
            ev(10, 1, 4),
            ev(50, 0, 7),
            ev(50, 0, 3),
            ev(10, 1, 2),
        ]);
        let key: Vec<(u64, usize, u64)> = merged
            .iter()
            .map(|e| (e.ready.as_ps(), e.device, e.seq))
            .collect();
        assert_eq!(
            key,
            vec![(10, 1, 2), (10, 1, 4), (50, 0, 3), (50, 0, 7), (50, 2, 9)]
        );
    }
}
