//! Per-device execution engine: serial or worker-threaded, with a
//! deterministic completion merge.
//!
//! `Ssd` is `!Send` (its DRAM is an `Rc`-shared cell), so devices can
//! never migrate between threads. Instead each worker thread *builds
//! and owns* its devices — forked on-thread from a shared
//! `Arc<SsdImage>` or constructed fresh from the (Copy, Send) config —
//! and only `Send` command/reply values cross the channel. The calling
//! thread is executor 0 and runs its own share of devices while the
//! workers run theirs, the same caller-participates shape as
//! `assasin_parallel::par_map`.
//!
//! Determinism does not depend on scheduling: every command runs
//! against a quiesced device and reports a standalone elapsed time, and
//! commands for one device always execute in issue (`seq`) order on the
//! one thread that owns it. The host rebuilds global time afterwards —
//! per-device clocks, then the `(completion, device, seq)` merge that
//! fixes the order in which the shared root link is charged.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use assasin_ftl::Lpa;
use assasin_parallel::{claim_threads, ThreadLease};
use assasin_sim::{SimDur, SimTime};
use assasin_ssd::{ScompRequest, ScompResult, Ssd, SsdConfig, SsdError, SsdImage};

use crate::config::ArrayExec;

/// How an executor builds the devices it owns. Cheap to clone and
/// `Send`: per-device configs plus an optional shared preconditioned
/// image every device forks from.
#[derive(Clone)]
pub(crate) struct DeviceSource {
    pub cfgs: Arc<Vec<SsdConfig>>,
    pub image: Option<Arc<SsdImage>>,
}

impl DeviceSource {
    fn build(&self, device: usize) -> Ssd {
        let cfg = self.cfgs[device];
        match &self.image {
            Some(img) => img.fork(cfg),
            None => Ssd::new(cfg),
        }
    }
}

/// One command against one device. Everything here is `Send`; the
/// device itself never moves.
pub(crate) enum DeviceCmd {
    /// Untimed dataset load (`Ssd::load_object` semantics).
    Store { first_lpa: u64, data: Arc<[u8]> },
    /// Timed conventional read of `bytes` spanning `lpas`.
    Read { lpas: Vec<Lpa>, bytes: u64 },
    /// Timed on-device computation.
    Scomp { req: Box<ScompRequest> },
    /// Swap in a factory-blank replacement device (rebuild target).
    Replace,
}

pub(crate) enum DeviceReply {
    Store { lpas: Vec<Lpa> },
    Read { data: Vec<u8>, elapsed: SimDur },
    Scomp { result: Box<ScompResult> },
    Replaced,
}

fn exec(
    ssd: &mut Ssd,
    source: &DeviceSource,
    device: usize,
    cmd: DeviceCmd,
) -> Result<DeviceReply, SsdError> {
    match cmd {
        DeviceCmd::Store { first_lpa, data } => {
            let lpas = ssd.load_object(first_lpa, &data)?;
            Ok(DeviceReply::Store { lpas })
        }
        DeviceCmd::Read { lpas, bytes } => {
            let r = ssd.read_lpas(&lpas, bytes)?;
            Ok(DeviceReply::Read {
                data: r.data,
                elapsed: r.elapsed,
            })
        }
        DeviceCmd::Scomp { req } => Ok(DeviceReply::Scomp {
            result: Box::new(ssd.scomp(&req)?),
        }),
        DeviceCmd::Replace => {
            // A replacement drive is factory-blank: same config, no
            // image fork (the rebuild repopulates it from its peers).
            *ssd = Ssd::new(source.cfgs[device]);
            Ok(DeviceReply::Replaced)
        }
    }
}

type CmdBatch = Vec<(u64, usize, DeviceCmd)>;
type ReplyBatch = Vec<(u64, Result<DeviceReply, SsdError>)>;

struct Worker {
    tx: Option<Sender<CmdBatch>>,
    rx: Receiver<ReplyBatch>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Closing the command channel ends the worker loop; the join
        // result is irrelevant on teardown (a panic already surfaced at
        // the recv() in run_batch).
        self.tx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn spawn_worker(devices: Vec<usize>, source: DeviceSource) -> Worker {
    let (tx_cmd, rx_cmd) = channel::<CmdBatch>();
    let (tx_rep, rx_rep) = channel::<ReplyBatch>();
    let handle = std::thread::Builder::new()
        .name("array-worker".into())
        .spawn(move || {
            let mut owned: HashMap<usize, Ssd> =
                devices.into_iter().map(|d| (d, source.build(d))).collect();
            while let Ok(batch) = rx_cmd.recv() {
                let replies: ReplyBatch = batch
                    .into_iter()
                    .map(|(seq, dev, cmd)| {
                        let ssd = owned
                            .get_mut(&dev)
                            .expect("command routed to owning worker");
                        (seq, exec(ssd, &source, dev, cmd))
                    })
                    .collect();
                if tx_rep.send(replies).is_err() {
                    break;
                }
            }
        })
        .expect("spawn array worker thread");
    Worker {
        tx: Some(tx_cmd),
        rx: rx_rep,
        handle: Some(handle),
    }
}

/// The device executor: host-local devices plus zero or more worker
/// threads, each owning a fixed subset.
pub(crate) struct Engine {
    source: DeviceSource,
    local: HashMap<usize, Ssd>,
    workers: Vec<Worker>,
    /// `owner[d]` — `Some(w)` if device `d` lives on worker `w`, `None`
    /// if it lives on the calling thread.
    owner: Vec<Option<usize>>,
    _lease: Option<ThreadLease>,
    requested_workers: usize,
    effective_workers: usize,
}

impl Engine {
    pub(crate) fn new(devices: usize, source: DeviceSource, exec: ArrayExec) -> Engine {
        let (requested, lease) = match exec {
            ArrayExec::Serial => (1, None),
            ArrayExec::Threaded { workers } => {
                let want = workers.clamp(1, devices.max(1));
                (want, Some(claim_threads(want.saturating_sub(1))))
            }
        };
        let spawned = lease.as_ref().map_or(0, |l| l.claimed());
        let executors = spawned + 1;
        let mut owner = vec![None; devices];
        let mut per_worker: Vec<Vec<usize>> = vec![Vec::new(); spawned];
        for (d, slot) in owner.iter_mut().enumerate() {
            let ex = d % executors;
            if ex > 0 {
                *slot = Some(ex - 1);
                per_worker[ex - 1].push(d);
            }
        }
        let workers: Vec<Worker> = per_worker
            .into_iter()
            .map(|devs| spawn_worker(devs, source.clone()))
            .collect();
        let local: HashMap<usize, Ssd> = owner
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_none())
            .map(|(d, _)| (d, source.build(d)))
            .collect();
        Engine {
            source,
            local,
            workers,
            owner,
            _lease: lease,
            requested_workers: requested,
            effective_workers: executors,
        }
    }

    /// Executors the caller asked for (calling thread included).
    pub(crate) fn requested_workers(&self) -> usize {
        self.requested_workers
    }

    /// Executors actually running after the budget lease (`1` means the
    /// engine degraded to serial).
    pub(crate) fn effective_workers(&self) -> usize {
        self.effective_workers
    }

    /// Runs one batch of commands and returns replies in input order.
    ///
    /// Commands addressed to the same device execute in input (`seq`)
    /// order on the one thread owning that device; commands to
    /// different devices run concurrently. The batch is a host-visible
    /// sync point: `run_batch` returns only when every command has
    /// finished.
    pub(crate) fn run_batch(
        &mut self,
        cmds: Vec<(usize, DeviceCmd)>,
    ) -> Vec<Result<DeviceReply, SsdError>> {
        let n = cmds.len();
        let mut for_worker: Vec<CmdBatch> = (0..self.workers.len()).map(|_| Vec::new()).collect();
        let mut local_cmds: CmdBatch = Vec::new();
        for (seq, (dev, cmd)) in cmds.into_iter().enumerate() {
            assert!(dev < self.owner.len(), "device {dev} out of range");
            match self.owner[dev] {
                Some(w) => for_worker[w].push((seq as u64, dev, cmd)),
                None => local_cmds.push((seq as u64, dev, cmd)),
            }
        }
        // Ship worker batches first so they execute while the calling
        // thread works through its own share.
        let mut active = Vec::new();
        for (w, batch) in for_worker.into_iter().enumerate() {
            if !batch.is_empty() {
                self.workers[w]
                    .tx
                    .as_ref()
                    .expect("worker channel open")
                    .send(batch)
                    .expect("array worker alive");
                active.push(w);
            }
        }
        let mut out: Vec<Option<Result<DeviceReply, SsdError>>> = (0..n).map(|_| None).collect();
        for (seq, dev, cmd) in local_cmds {
            let ssd = self.local.get_mut(&dev).expect("local device exists");
            out[seq as usize] = Some(exec(ssd, &self.source, dev, cmd));
        }
        for w in active {
            let replies = self.workers[w]
                .rx
                .recv()
                .expect("array worker exited cleanly (panicked?)");
            for (seq, rep) in replies {
                out[seq as usize] = Some(rep);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every command answered exactly once"))
            .collect()
    }
}

/// One host-bound completion awaiting its root-link crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Completion {
    /// When the transfer cleared its device (per-device clock time).
    pub ready: SimTime,
    /// Originating device.
    pub device: usize,
    /// Issue order within the batch (ties on `ready` and `device`).
    pub seq: u64,
    /// Bytes crossing the root.
    pub host_bytes: u64,
}

/// The deterministic event merge: total order on
/// `(completion_time, device_id, seq)`. This is the order the shared
/// root link is charged in, and it is a pure function of simulated
/// time — never of wall-clock scheduling.
pub(crate) fn merge_completions(mut events: Vec<Completion>) -> Vec<Completion> {
    events.sort_by_key(|e| (e.ready, e.device, e.seq));
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_by_time_then_device_then_seq() {
        let ev = |ps: u64, device: usize, seq: u64| Completion {
            ready: SimTime::from_ps(ps),
            device,
            seq,
            host_bytes: 0,
        };
        let merged = merge_completions(vec![
            ev(50, 2, 9),
            ev(10, 1, 4),
            ev(50, 0, 7),
            ev(50, 0, 3),
            ev(10, 1, 2),
        ]);
        let key: Vec<(u64, usize, u64)> = merged
            .iter()
            .map(|e| (e.ready.as_ps(), e.device, e.seq))
            .collect();
        assert_eq!(
            key,
            vec![(10, 1, 2), (10, 1, 4), (50, 0, 3), (50, 0, 7), (50, 2, 9)]
        );
    }
}
