//! Array-level configuration: topology, placement policy, execution
//! engine, and the shared host-link budget.

use assasin_sim::SimDur;
use assasin_ssd::SsdConfig;

use crate::error::ArrayError;
use crate::placement::ArrayPlacement;

/// How the array advances its devices between sync points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayExec {
    /// All devices on the calling thread, in device order. The reference
    /// arm of the determinism property test.
    Serial,
    /// Up to `workers` executors: the calling thread plus extra worker
    /// threads leased from the process-wide budget
    /// (`assasin_parallel::claim_threads`). If the budget is exhausted
    /// the array degrades toward serial — results are byte-identical
    /// either way.
    Threaded {
        /// Requested executor count (calling thread included). Clamped
        /// to the device count; the lease may grant fewer.
        workers: usize,
    },
}

/// Configuration of an [`SsdArray`](crate::SsdArray).
#[derive(Debug, Clone)]
pub struct ArrayConfig {
    /// Number of devices in the array.
    pub devices: usize,
    /// Host-side placement/erasure policy.
    pub placement: ArrayPlacement,
    /// Placement granularity in bytes; must be a positive multiple of
    /// the flash page size.
    pub chunk_bytes: u64,
    /// Per-device configuration (every device is identical apart from
    /// [`fault_seeds`](Self::fault_seeds)).
    pub device: SsdConfig,
    /// Per-device NAND fault seeds. Empty means every device uses
    /// `device.fault.seed` as-is; otherwise one seed per device.
    /// Incompatible with image forking (the fault model is part of the
    /// media identity a fork must preserve).
    pub fault_seeds: Vec<u64>,
    /// Shared root-complex bandwidth in bytes/second. Provisioned below
    /// `devices * device.pcie_bw` in any interesting topology.
    pub root_bw: f64,
    /// Latency added to every root crossing.
    pub root_latency: SimDur,
    /// Execution engine.
    pub exec: ArrayExec,
}

impl ArrayConfig {
    /// A config with conventional defaults: 16-page chunks, a root
    /// complex at twice one device's lane bandwidth (so 4+ active
    /// devices oversubscribe it), device PCIe latency, serial execution.
    pub fn new(devices: usize, placement: ArrayPlacement, device: SsdConfig) -> Self {
        ArrayConfig {
            devices,
            placement,
            chunk_bytes: 16 * device.geometry.page_bytes as u64,
            device,
            fault_seeds: Vec::new(),
            root_bw: device.pcie_bw * 2.0,
            root_latency: device.pcie_latency,
            exec: ArrayExec::Serial,
        }
    }

    /// Sets the execution engine.
    pub fn with_exec(mut self, exec: ArrayExec) -> Self {
        self.exec = exec;
        self
    }

    /// Sets the placement granularity.
    pub fn with_chunk_bytes(mut self, chunk_bytes: u64) -> Self {
        self.chunk_bytes = chunk_bytes;
        self
    }

    /// Sets the shared root bandwidth.
    pub fn with_root_bw(mut self, bytes_per_sec: f64) -> Self {
        self.root_bw = bytes_per_sec;
        self
    }

    /// Sets per-device fault seeds (one per device).
    pub fn with_fault_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.fault_seeds = seeds;
        self
    }

    /// The device config for device `d` (fault seed applied).
    pub(crate) fn device_cfg(&self, d: usize) -> SsdConfig {
        let mut cfg = self.device;
        if let Some(&seed) = self.fault_seeds.get(d) {
            cfg.fault.seed = seed;
        }
        cfg
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::BadConfig`] for an impossible topology:
    /// too few devices for the placement, a chunk size that is zero or
    /// not page-aligned, a fault-seed list of the wrong length, or a
    /// non-positive root bandwidth.
    pub fn validate(&self) -> Result<(), ArrayError> {
        let bad = |why: String| Err(ArrayError::BadConfig(why));
        let min = self.placement.min_devices();
        if self.devices < min {
            return bad(format!(
                "{} needs at least {min} devices, got {}",
                self.placement.name(),
                self.devices
            ));
        }
        if let ArrayPlacement::WeightedStriped { weights } = &self.placement {
            if weights.len() != self.devices {
                return bad(format!(
                    "weighted striping needs one weight per device: {} weights, {} devices",
                    weights.len(),
                    self.devices
                ));
            }
            if weights.contains(&0) {
                return bad("weighted striping weights must be positive".into());
            }
        }
        if let ArrayPlacement::Replicated { copies } = self.placement {
            if copies > self.devices {
                return bad(format!(
                    "{copies}-way replication does not fit on {} devices",
                    self.devices
                ));
            }
        }
        let page = self.device.geometry.page_bytes as u64;
        if self.chunk_bytes == 0 || !self.chunk_bytes.is_multiple_of(page) {
            return bad(format!(
                "chunk_bytes {} must be a positive multiple of the page size {page}",
                self.chunk_bytes
            ));
        }
        if !self.fault_seeds.is_empty() && self.fault_seeds.len() != self.devices {
            return bad(format!(
                "fault_seeds must name every device: {} seeds, {} devices",
                self.fault_seeds.len(),
                self.devices
            ));
        }
        if !(self.root_bw.is_finite() && self.root_bw > 0.0) {
            return bad(format!(
                "root bandwidth must be positive, got {}",
                self.root_bw
            ));
        }
        Ok(())
    }
}
