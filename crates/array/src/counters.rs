//! Process-wide array statistics for the perf harness.
//!
//! Mirrors `assasin_ssd`'s counter idiom: cumulative atomics the perf
//! harness snapshots before/after a region and subtracts, so parallel
//! sweeps aggregate correctly.

use std::sync::atomic::{AtomicU64, Ordering};

static OPS: AtomicU64 = AtomicU64::new(0);
static MERGED_EVENTS: AtomicU64 = AtomicU64::new(0);
static LINK_STALL_PS: AtomicU64 = AtomicU64::new(0);
static REBUILD_BYTES: AtomicU64 = AtomicU64::new(0);

/// Cumulative `(array_ops, merged_events, link_stall_ps, rebuild_bytes)`
/// over every `SsdArray` operation in this process: how many host-visible
/// sync intervals ran, how many per-device completions crossed the
/// deterministic `(time, device, seq)` merge, total picoseconds transfers
/// spent queued at the shared root, and bytes written to replacement
/// devices by rebuilds.
pub fn array_counters() -> (u64, u64, u64, u64) {
    (
        OPS.load(Ordering::Relaxed),
        MERGED_EVENTS.load(Ordering::Relaxed),
        LINK_STALL_PS.load(Ordering::Relaxed),
        REBUILD_BYTES.load(Ordering::Relaxed),
    )
}

pub(crate) fn record_op(merged_events: u64, link_stall_ps: u64) {
    OPS.fetch_add(1, Ordering::Relaxed);
    MERGED_EVENTS.fetch_add(merged_events, Ordering::Relaxed);
    LINK_STALL_PS.fetch_add(link_stall_ps, Ordering::Relaxed);
}

pub(crate) fn record_rebuild(bytes: u64) {
    REBUILD_BYTES.fetch_add(bytes, Ordering::Relaxed);
}
