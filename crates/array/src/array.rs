//! The array itself: catalog, placement, degraded reads, rebuild, and
//! the deterministic timing roll-up over the shared host link.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use assasin_ftl::Lpa;
use assasin_sim::{HostLink, SimDur, SimTime};
use assasin_ssd::{KernelBundle, ScompRequest, SsdImage};

use crate::config::ArrayConfig;
use crate::counters;
use crate::engine::{
    merge_completions, Completion, DeviceCmd, DeviceReply, DeviceSource, Engine, ExecError,
};
use crate::error::ArrayError;
use crate::placement::{ArrayPlacement, ChunkLoc, StoredObject, StripeLoc};
use crate::recover;

/// Cumulative per-device accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceStats {
    /// Read commands served.
    pub reads: u64,
    /// Bytes delivered by reads.
    pub read_bytes: u64,
    /// Scomp commands served.
    pub scomps: u64,
    /// Bytes streamed into scomp kernels.
    pub scomp_bytes_in: u64,
    /// Store commands served.
    pub stores: u64,
    /// Flash pages written.
    pub pages_written: u64,
    /// Simulated device-busy time across all commands.
    pub busy: SimDur,
    /// Time this device's host transfers spent queued at the shared
    /// root.
    pub link_stalled: SimDur,
    /// Whether the device is currently failed.
    pub failed: bool,
}

/// Cumulative array-level accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArrayStats {
    /// Per-device accounting.
    pub devices: Vec<DeviceStats>,
    /// Bytes moved through the shared root.
    pub link_bytes: u64,
    /// Transfers through the shared root.
    pub link_transfers: u64,
    /// Total root contention stall.
    pub link_stalled: SimDur,
    /// Completions that crossed the deterministic event merge.
    pub merged_events: u64,
    /// Data chunks served via replica or parity reconstruction.
    pub degraded_chunk_reads: u64,
    /// Bytes read from surviving devices by rebuilds.
    pub rebuild_bytes_read: u64,
    /// Bytes written to replacement devices by rebuilds.
    pub rebuild_bytes_written: u64,
}

/// Shared-root accounting for one array operation.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkReport {
    /// Bytes through the root.
    pub bytes: u64,
    /// Transfers through the root.
    pub transfers: u64,
    /// Total contention stall.
    pub stalled: SimDur,
    /// Stall attributed to each device's transfers.
    pub per_device_stalled: Vec<SimDur>,
}

/// Result of [`SsdArray::store_object`].
#[derive(Debug, Clone, PartialEq)]
pub struct StoreReport {
    /// Data chunks placed.
    pub data_chunks: u64,
    /// Replica chunks placed.
    pub replica_chunks: u64,
    /// Parity chunks placed.
    pub parity_chunks: u64,
    /// Flash pages written across the array.
    pub pages_written: u64,
    /// Pages written per device (placement-skew visibility).
    pub per_device_pages: Vec<u64>,
}

/// Result of [`SsdArray::read_object`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayRead {
    /// The object's bytes.
    pub data: Vec<u8>,
    /// Host-visible completion time of the whole read.
    pub elapsed: SimDur,
    /// Data chunks served degraded (replica or parity reconstruction).
    pub degraded_chunks: u64,
    /// Shared-root accounting for this read.
    pub link: LinkReport,
}

/// One device's share of an [`SsdArray::scomp_object`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceLane {
    /// The device.
    pub device: usize,
    /// Bytes streamed into the kernel on this device.
    pub bytes_in: u64,
    /// Bytes the kernel emitted.
    pub bytes_out: u64,
    /// Simulated time the device took.
    pub device_elapsed: SimDur,
    /// Host-visible completion (after the shared root).
    pub done: SimTime,
    /// In-device streaming throughput in GB/s.
    pub simulated_gbps: f64,
}

/// Result of [`SsdArray::scomp_object`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayScomp {
    /// Per-lane kernel outputs, in [`ArrayScomp::per_device`] order.
    pub outputs: Vec<Vec<u8>>,
    /// Total bytes streamed into kernels.
    pub bytes_in: u64,
    /// Total bytes emitted.
    pub bytes_out: u64,
    /// Host-visible completion of the slowest lane.
    pub elapsed: SimDur,
    /// Per-device breakdown, ascending device id.
    pub per_device: Vec<DeviceLane>,
    /// Shared-root accounting for this operation.
    pub link: LinkReport,
}

impl ArrayScomp {
    /// Array-level delivered throughput in GB/s (input bytes over the
    /// host-visible elapsed time).
    pub fn throughput_gbps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.bytes_in as f64 / s / 1e9
        }
    }

    /// All lane outputs concatenated in device order.
    pub fn concat_output(&self) -> Vec<u8> {
        self.outputs.iter().flatten().copied().collect()
    }
}

/// Result of [`SsdArray::rebuild_device`].
#[derive(Debug, Clone, PartialEq)]
pub struct RebuildReport {
    /// The rebuilt device.
    pub device: usize,
    /// Chunks reconstructed onto it.
    pub chunks: u64,
    /// Bytes read from surviving devices.
    pub bytes_read: u64,
    /// Bytes written to the replacement.
    pub bytes_written: u64,
    /// Host-visible time of the rebuild's read storm.
    pub elapsed: SimDur,
    /// Shared-root accounting (the storm's contention).
    pub link: LinkReport,
}

/// A read command still waiting for assembly.
struct Fetch {
    device: usize,
    lpas: Vec<Lpa>,
    bytes: u64,
}

/// An array of N simulated computational SSDs behind one shared root
/// complex, with host-side placement, erasure, and a deterministic
/// parallel execution engine. See the crate docs for the determinism
/// contract.
pub struct SsdArray {
    cfg: ArrayConfig,
    engine: Engine,
    link: HostLink,
    catalog: BTreeMap<u64, StoredObject>,
    next_lpa: Vec<u64>,
    failed: Vec<bool>,
    stats: ArrayStats,
}

impl SsdArray {
    /// Builds an array of fresh (blank) devices.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::BadConfig`] on an inconsistent
    /// configuration.
    pub fn new(cfg: ArrayConfig) -> Result<SsdArray, ArrayError> {
        cfg.validate()?;
        let cfgs = Arc::new((0..cfg.devices).map(|d| cfg.device_cfg(d)).collect());
        Ok(Self::build(cfg, DeviceSource { cfgs, image: None }, 0))
    }

    /// Builds an array whose devices are all forked from one
    /// preconditioned image (clone-on-write, so N-device preconditioning
    /// costs one load). `first_free_lpa` must lie past the image's used
    /// pages; allocation for new objects starts there on every device.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::BadConfig`] on an inconsistent
    /// configuration, including per-device fault seeds (a fork must
    /// preserve the media identity the image was built under).
    pub fn from_image(
        cfg: ArrayConfig,
        image: Arc<SsdImage>,
        first_free_lpa: u64,
    ) -> Result<SsdArray, ArrayError> {
        cfg.validate()?;
        if !cfg.fault_seeds.is_empty() {
            return Err(ArrayError::BadConfig(
                "per-device fault seeds cannot fork a shared image: the fault model is part \
                 of the media identity"
                    .into(),
            ));
        }
        let cfgs = Arc::new(vec![cfg.device; cfg.devices]);
        Ok(Self::build(
            cfg,
            DeviceSource {
                cfgs,
                image: Some(image),
            },
            first_free_lpa,
        ))
    }

    fn build(cfg: ArrayConfig, source: DeviceSource, first_free_lpa: u64) -> SsdArray {
        let engine = Engine::new(cfg.devices, source, cfg.exec);
        let link = HostLink::new(cfg.devices, cfg.root_bw, cfg.root_latency);
        SsdArray {
            engine,
            link,
            catalog: BTreeMap::new(),
            next_lpa: vec![first_free_lpa; cfg.devices],
            failed: vec![false; cfg.devices],
            stats: ArrayStats {
                devices: vec![DeviceStats::default(); cfg.devices],
                ..ArrayStats::default()
            },
            cfg,
        }
    }

    /// The array configuration.
    pub fn config(&self) -> &ArrayConfig {
        &self.cfg
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.cfg.devices
    }

    /// Executors the configuration asked for (calling thread included).
    pub fn requested_workers(&self) -> usize {
        self.engine.requested_workers()
    }

    /// Executors actually granted by the thread-budget lease (`1` means
    /// the engine runs serially).
    pub fn effective_workers(&self) -> usize {
        self.engine.effective_workers()
    }

    /// Cumulative array statistics.
    pub fn stats(&self) -> &ArrayStats {
        &self.stats
    }

    /// Ids of stored objects, ascending.
    pub fn object_ids(&self) -> Vec<u64> {
        self.catalog.keys().copied().collect()
    }

    /// Currently failed devices, ascending.
    pub fn failed_devices(&self) -> Vec<usize> {
        (0..self.cfg.devices).filter(|&d| self.failed[d]).collect()
    }

    fn page_bytes(&self) -> u64 {
        self.cfg.device.geometry.page_bytes as u64
    }

    fn pages_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.page_bytes())
    }

    fn alloc(&mut self, device: usize, bytes: u64) -> ChunkLoc {
        let pages = self.pages_for(bytes);
        let first = self.next_lpa[device];
        self.next_lpa[device] += pages;
        ChunkLoc {
            device,
            lpas: (first..first + pages).map(Lpa).collect(),
            bytes,
        }
    }

    fn healthy(&self, device: usize, what: &'static str) -> Result<(), ArrayError> {
        if self.failed[device] {
            Err(ArrayError::Degraded { device, what })
        } else {
            Ok(())
        }
    }

    /// Folds this operation's link accounting into the cumulative stats
    /// and the process counters, then returns the per-op report.
    fn finish_op(&mut self, merged_events: u64) -> LinkReport {
        let lanes = self.link.lane_stats().to_vec();
        let report = LinkReport {
            bytes: self.link.bytes_moved(),
            transfers: lanes.iter().map(|l| l.transfers).sum(),
            stalled: self.link.total_stalled(),
            per_device_stalled: lanes.iter().map(|l| l.stalled).collect(),
        };
        for (d, l) in lanes.iter().enumerate() {
            self.stats.devices[d].link_stalled += l.stalled;
        }
        self.stats.link_bytes += report.bytes;
        self.stats.link_transfers += report.transfers;
        self.stats.link_stalled += report.stalled;
        self.stats.merged_events += merged_events;
        counters::record_op(merged_events, report.stalled.as_ps());
        report
    }

    fn run_batch(&mut self, cmds: Vec<(usize, DeviceCmd)>) -> Result<Vec<DeviceReply>, ArrayError> {
        let devices: Vec<usize> = cmds.iter().map(|(d, _)| *d).collect();
        let replies = self.engine.run_batch(cmds);
        replies
            .into_iter()
            .zip(devices)
            .map(|(r, device)| {
                r.map_err(|e| match e {
                    ExecError::Device(source) => ArrayError::Device { device, source },
                    ExecError::Worker(cause) => ArrayError::WorkerFailed { device, cause },
                })
            })
            .collect()
    }

    /// Runs timed `Read` fetches, accumulates per-device clocks, merges
    /// completions deterministically, charges the shared root in merged
    /// order, and returns `(per-fetch data, host elapsed, merged count)`.
    fn run_fetches(
        &mut self,
        fetches: &[Fetch],
    ) -> Result<(Vec<Vec<u8>>, SimDur, u64), ArrayError> {
        let cmds: Vec<(usize, DeviceCmd)> = fetches
            .iter()
            .map(|f| {
                (
                    f.device,
                    DeviceCmd::Read {
                        lpas: f.lpas.clone(),
                        bytes: f.bytes,
                    },
                )
            })
            .collect();
        let replies = self.run_batch(cmds)?;
        let mut clock = vec![SimTime::ZERO; self.cfg.devices];
        let mut completions = Vec::with_capacity(replies.len());
        let mut datas = Vec::with_capacity(replies.len());
        for (seq, reply) in replies.into_iter().enumerate() {
            let DeviceReply::Read { data, elapsed } = reply else {
                unreachable!("read command answered with a read reply");
            };
            let dev = fetches[seq].device;
            let ready = clock[dev] + elapsed;
            clock[dev] = ready;
            completions.push(Completion {
                ready,
                device: dev,
                seq: seq as u64,
                host_bytes: data.len() as u64,
            });
            let stats = &mut self.stats.devices[dev];
            stats.reads += 1;
            stats.read_bytes += data.len() as u64;
            stats.busy += elapsed;
            datas.push(data);
        }
        self.link.reset_time();
        let merged = merge_completions(completions);
        let mut done = SimTime::ZERO;
        for ev in &merged {
            done = done.max(self.link.transfer(ev.device, ev.ready, ev.host_bytes));
        }
        Ok((datas, done.since(SimTime::ZERO), merged.len() as u64))
    }

    /// Stores `data` as object `id` under the array's placement policy.
    /// Loading is untimed (dataset staging, mirroring
    /// `Ssd::load_object`); reads and scomp carry the timing.
    ///
    /// # Errors
    ///
    /// Fails on duplicate ids, empty objects, a failed device in the
    /// placement's path, or device write errors.
    pub fn store_object(&mut self, id: u64, data: &[u8]) -> Result<StoreReport, ArrayError> {
        if self.catalog.contains_key(&id) {
            return Err(ArrayError::DuplicateObject(id));
        }
        if data.is_empty() {
            return Err(ArrayError::BadConfig("cannot store an empty object".into()));
        }
        let chunk = self.cfg.chunk_bytes as usize;
        let n_chunks = data.len().div_ceil(chunk);
        let devices = self.cfg.devices;
        let placement = self.cfg.placement.clone();

        let chunk_slice = |c: usize| &data[c * chunk..(data.len().min((c + 1) * chunk))];

        let mut chunks: Vec<ChunkLoc> = Vec::with_capacity(n_chunks);
        let mut replicas: Vec<Vec<ChunkLoc>> = Vec::with_capacity(n_chunks);
        for c in 0..n_chunks {
            let bytes = chunk_slice(c).len() as u64;
            let dev = placement.data_device(devices, c);
            self.healthy(dev, "store placement")?;
            chunks.push(self.alloc(dev, bytes));
            let mut reps = Vec::new();
            for rd in placement.replica_devices(devices, c) {
                self.healthy(rd, "store replica placement")?;
                reps.push(self.alloc(rd, bytes));
            }
            replicas.push(reps);
        }

        let mut stripes: Vec<StripeLoc> = Vec::new();
        let parity_devs = placement.parity_device_ids(devices);
        if !parity_devs.is_empty() {
            let width = placement.data_width(devices);
            for (s, group) in chunks.chunks(width).enumerate() {
                let first_chunk = s * width;
                // Chunk sizes are non-increasing, so the stripe's coded
                // length is its first member's length.
                let len = group[0].bytes;
                let mut parity = Vec::new();
                for &pd in &parity_devs {
                    self.healthy(pd, "store parity placement")?;
                    parity.push(self.alloc(pd, len));
                }
                stripes.push(StripeLoc {
                    first_chunk,
                    width: group.len(),
                    len,
                    parity,
                });
            }
        }

        let mut cmds: Vec<(usize, DeviceCmd)> = Vec::new();
        let mut pages_of: Vec<(usize, u64)> = Vec::new();
        let push_store = |cmds: &mut Vec<(usize, DeviceCmd)>,
                          pages_of: &mut Vec<(usize, u64)>,
                          loc: &ChunkLoc,
                          payload: Arc<[u8]>| {
            pages_of.push((loc.device, loc.lpas.len() as u64));
            cmds.push((
                loc.device,
                DeviceCmd::Store {
                    first_lpa: loc.lpas[0].0,
                    data: payload,
                },
            ));
        };
        for (c, loc) in chunks.iter().enumerate() {
            let payload: Arc<[u8]> = Arc::from(chunk_slice(c));
            push_store(&mut cmds, &mut pages_of, loc, payload.clone());
            for rep in &replicas[c] {
                push_store(&mut cmds, &mut pages_of, rep, payload.clone());
            }
        }
        let mut parity_chunks = 0u64;
        for stripe in &stripes {
            let streams: Vec<&[u8]> = (0..stripe.width)
                .map(|i| chunk_slice(stripe.first_chunk + i))
                .collect();
            let len = stripe.len as usize;
            let payloads: Vec<Vec<u8>> = match placement {
                ArrayPlacement::Raid4 => vec![recover::p_parity(&streams, len)],
                ArrayPlacement::Raid6 => {
                    let (p, q) = recover::pq_parity(&streams, len);
                    vec![p, q]
                }
                _ => unreachable!("parity devices imply a RAID placement"),
            };
            for (loc, payload) in stripe.parity.iter().zip(payloads) {
                parity_chunks += 1;
                push_store(&mut cmds, &mut pages_of, loc, Arc::from(payload));
            }
        }

        let replies = self.run_batch(cmds)?;
        debug_assert!(
            replies.iter().zip(&pages_of).all(|(r, (_, pages))| {
                matches!(r, DeviceReply::Store { lpas } if lpas.len() as u64 == *pages)
            }),
            "devices wrote the pages the placement allocated"
        );
        let mut per_device_pages = vec![0u64; devices];
        for (d, pages) in pages_of {
            per_device_pages[d] += pages;
            let stats = &mut self.stats.devices[d];
            stats.stores += 1;
            stats.pages_written += pages;
        }
        let report = StoreReport {
            data_chunks: n_chunks as u64,
            replica_chunks: replicas.iter().map(|r| r.len() as u64).sum(),
            parity_chunks,
            pages_written: per_device_pages.iter().sum(),
            per_device_pages,
        };
        self.link.reset_time();
        self.finish_op(0);
        self.catalog.insert(
            id,
            StoredObject {
                bytes: data.len() as u64,
                chunk_bytes: self.cfg.chunk_bytes,
                chunks,
                replicas,
                stripes,
            },
        );
        Ok(report)
    }

    /// Registers an object that already lives on the media — every
    /// device was forked from the same image, so consecutive pages
    /// starting at `first_lpa` hold the object's bytes on *all* devices
    /// and a striped view can address chunk `c` on its placement device
    /// directly. Only the non-redundant placements qualify: replica and
    /// parity chunks were never written.
    ///
    /// # Errors
    ///
    /// Fails on duplicate ids, zero-length objects, or a redundant
    /// placement policy.
    pub fn adopt_striped(&mut self, id: u64, first_lpa: u64, bytes: u64) -> Result<(), ArrayError> {
        match self.cfg.placement {
            ArrayPlacement::Striped | ArrayPlacement::WeightedStriped { .. } => {}
            _ => {
                return Err(ArrayError::BadConfig(
                    "adopt_striped needs a non-redundant placement: replica/parity chunks \
                     are not on the image"
                        .into(),
                ))
            }
        }
        if self.catalog.contains_key(&id) {
            return Err(ArrayError::DuplicateObject(id));
        }
        if bytes == 0 {
            return Err(ArrayError::BadConfig("cannot adopt an empty object".into()));
        }
        let chunk_pages = self.cfg.chunk_bytes / self.page_bytes();
        let n_chunks = bytes.div_ceil(self.cfg.chunk_bytes) as usize;
        let mut chunks = Vec::with_capacity(n_chunks);
        for c in 0..n_chunks {
            let cb = self
                .cfg
                .chunk_bytes
                .min(bytes - c as u64 * self.cfg.chunk_bytes);
            let dev = self.cfg.placement.data_device(self.cfg.devices, c);
            let first = first_lpa + c as u64 * chunk_pages;
            let pages = self.pages_for(cb);
            chunks.push(ChunkLoc {
                device: dev,
                lpas: (first..first + pages).map(Lpa).collect(),
                bytes: cb,
            });
            self.next_lpa[dev] = self.next_lpa[dev].max(first + chunk_pages);
        }
        self.catalog.insert(
            id,
            StoredObject {
                bytes,
                chunk_bytes: self.cfg.chunk_bytes,
                replicas: vec![Vec::new(); n_chunks],
                stripes: Vec::new(),
                chunks,
            },
        );
        Ok(())
    }

    /// Reads object `id` back, reconstructing chunks on failed devices
    /// from replicas or parity (degraded read).
    ///
    /// # Errors
    ///
    /// Fails on unknown ids, more failures than the placement's
    /// redundancy ([`ArrayError::DataLoss`]), or device errors.
    pub fn read_object(&mut self, id: u64) -> Result<ArrayRead, ArrayError> {
        let obj = self
            .catalog
            .get(&id)
            .ok_or(ArrayError::UnknownObject(id))?
            .clone();
        let n_chunks = obj.chunks.len();
        let mut fetches: Vec<Fetch> = Vec::new();
        let mut chunk_fetch: Vec<Option<usize>> = vec![None; n_chunks];
        let mut stripe_parity_fetch: Vec<[Option<usize>; 2]> = vec![[None; 2]; obj.stripes.len()];
        let mut degraded_chunks = 0u64;

        let fetch = |fetches: &mut Vec<Fetch>, loc: &ChunkLoc| -> usize {
            fetches.push(Fetch {
                device: loc.device,
                lpas: loc.lpas.clone(),
                bytes: loc.bytes,
            });
            fetches.len() - 1
        };

        if obj.stripes.is_empty() {
            // Striped / weighted / replicated: direct or replica reads.
            for (c, loc) in obj.chunks.iter().enumerate() {
                if !self.failed[loc.device] {
                    chunk_fetch[c] = Some(fetch(&mut fetches, loc));
                    continue;
                }
                let Some(rep) = obj.replicas[c].iter().find(|r| !self.failed[r.device]) else {
                    return Err(ArrayError::DataLoss {
                        object: id,
                        chunk: c,
                    });
                };
                degraded_chunks += 1;
                chunk_fetch[c] = Some(fetch(&mut fetches, rep));
            }
        } else {
            for (s, stripe) in obj.stripes.iter().enumerate() {
                let members = &obj.chunks[stripe.first_chunk..stripe.first_chunk + stripe.width];
                let lost: Vec<usize> = (0..stripe.width)
                    .filter(|&i| self.failed[members[i].device])
                    .collect();
                for (i, loc) in members.iter().enumerate() {
                    if !lost.contains(&i) {
                        chunk_fetch[stripe.first_chunk + i] = Some(fetch(&mut fetches, loc));
                    }
                }
                if lost.is_empty() {
                    continue;
                }
                degraded_chunks += lost.len() as u64;
                let avail: Vec<usize> = (0..stripe.parity.len())
                    .filter(|&k| !self.failed[stripe.parity[k].device])
                    .collect();
                if lost.len() > avail.len() {
                    return Err(ArrayError::DataLoss {
                        object: id,
                        chunk: stripe.first_chunk + lost[0],
                    });
                }
                // One loss: one syndrome (prefer P). Two losses: P and Q.
                for &k in avail.iter().take(lost.len()) {
                    stripe_parity_fetch[s][k] = Some(fetch(&mut fetches, &stripe.parity[k]));
                }
            }
        }

        let (datas, elapsed, merged) = self.run_fetches(&fetches)?;
        let link = self.finish_op(merged);
        self.stats.degraded_chunk_reads += degraded_chunks;

        // Reconstruct lost stripe members host-side.
        let mut recovered: HashMap<usize, Vec<u8>> = HashMap::new();
        for (s, stripe) in obj.stripes.iter().enumerate() {
            let members = &obj.chunks[stripe.first_chunk..stripe.first_chunk + stripe.width];
            let lost: Vec<usize> = (0..stripe.width)
                .filter(|&i| chunk_fetch[stripe.first_chunk + i].is_none())
                .collect();
            if lost.is_empty() {
                continue;
            }
            let len = stripe.len as usize;
            let survivors_raw: Vec<(usize, &[u8])> = (0..stripe.width)
                .filter_map(|i| {
                    chunk_fetch[stripe.first_chunk + i].map(|fi| (i, datas[fi].as_slice()))
                })
                .collect();
            let survivors_padded = recover::pad_streams(&survivors_raw, len);
            let survivors: Vec<(usize, &[u8])> = survivors_padded
                .iter()
                .map(|(i, v)| (*i, v.as_slice()))
                .collect();
            let p = stripe_parity_fetch[s][0].map(|fi| &datas[fi]);
            let q = stripe_parity_fetch[s][1].map(|fi| &datas[fi]);
            let rebuilt: Vec<(usize, Vec<u8>)> = match (lost.as_slice(), p, q) {
                ([x], Some(p), _) => vec![(*x, recover::recover_from_p(&survivors, p))],
                ([x], None, Some(q)) => vec![(*x, recover::recover_from_q(&survivors, q, *x))],
                ([x, y], Some(p), Some(q)) => {
                    let (dx, dy) = recover::recover_two(&survivors, p, q, *x, *y);
                    vec![(*x, dx), (*y, dy)]
                }
                _ => unreachable!("loss pattern validated against available syndromes"),
            };
            for (i, mut bytes) in rebuilt {
                bytes.truncate(members[i].bytes as usize);
                recovered.insert(stripe.first_chunk + i, bytes);
            }
        }

        let mut out = Vec::with_capacity(obj.bytes as usize);
        for (c, loc) in obj.chunks.iter().enumerate() {
            match chunk_fetch[c] {
                Some(fi) => out.extend_from_slice(&datas[fi][..loc.bytes as usize]),
                None => out.extend_from_slice(&recovered[&c]),
            }
        }
        debug_assert_eq!(out.len() as u64, obj.bytes);
        Ok(ArrayRead {
            data: out,
            elapsed,
            degraded_chunks,
            link,
        })
    }

    /// Runs a streaming kernel over object `id`, one scomp per device
    /// holding data chunks, each device streaming its local chunks in
    /// object order. Kernel outputs cross the shared root to the host.
    /// `make_kernel` builds one bundle per participating device.
    ///
    /// Computation has no parity path: a failed device is served from a
    /// replica when the placement has one, otherwise the operation is
    /// [`ArrayError::Degraded`] (read the object and compute on the host
    /// instead).
    ///
    /// # Errors
    ///
    /// Fails on unknown ids, a failed device without a replica, or
    /// device errors.
    pub fn scomp_object(
        &mut self,
        id: u64,
        make_kernel: impl Fn() -> KernelBundle,
    ) -> Result<ArrayScomp, ArrayError> {
        let obj = self
            .catalog
            .get(&id)
            .ok_or(ArrayError::UnknownObject(id))?
            .clone();
        // Per-device streams in ascending device order; chunks appended
        // in object order so only the final (possibly partial) chunk can
        // break the byte-prefix rule — and it is last in its stream.
        let mut per_dev: BTreeMap<usize, (Vec<Lpa>, u64)> = BTreeMap::new();
        for (c, loc) in obj.chunks.iter().enumerate() {
            let use_loc = if !self.failed[loc.device] {
                loc
            } else {
                obj.replicas[c]
                    .iter()
                    .find(|r| !self.failed[r.device])
                    .ok_or(ArrayError::Degraded {
                        device: loc.device,
                        what: "scomp over a chunk with no healthy copy",
                    })?
            };
            let entry = per_dev.entry(use_loc.device).or_default();
            entry.0.extend_from_slice(&use_loc.lpas);
            entry.1 += use_loc.bytes;
        }

        let cmds: Vec<(usize, DeviceCmd)> = per_dev
            .iter()
            .map(|(&dev, (lpas, bytes))| {
                let req = ScompRequest::new(make_kernel(), vec![lpas.clone()])
                    .with_stream_bytes(vec![*bytes]);
                (dev, DeviceCmd::Scomp { req: Box::new(req) })
            })
            .collect();
        let replies = self.run_batch(cmds)?;

        let lane_devices: Vec<usize> = per_dev.keys().copied().collect();
        let mut completions = Vec::with_capacity(replies.len());
        let mut results = Vec::with_capacity(replies.len());
        for (seq, reply) in replies.into_iter().enumerate() {
            let DeviceReply::Scomp { result } = reply else {
                unreachable!("scomp command answered with a scomp reply");
            };
            let dev = lane_devices[seq];
            completions.push(Completion {
                ready: SimTime::ZERO + result.elapsed,
                device: dev,
                seq: seq as u64,
                host_bytes: result.bytes_out,
            });
            let stats = &mut self.stats.devices[dev];
            stats.scomps += 1;
            stats.scomp_bytes_in += result.bytes_in;
            stats.busy += result.elapsed;
            results.push(result);
        }
        self.link.reset_time();
        let merged = merge_completions(completions);
        let mut dones: HashMap<usize, SimTime> = HashMap::new();
        let mut done_max = SimTime::ZERO;
        for ev in &merged {
            let done = self.link.transfer(ev.device, ev.ready, ev.host_bytes);
            dones.insert(ev.device, done);
            done_max = done_max.max(done);
        }
        let link = self.finish_op(merged.len() as u64);

        let per_device: Vec<DeviceLane> = lane_devices
            .iter()
            .zip(&results)
            .map(|(&device, r)| DeviceLane {
                device,
                bytes_in: r.bytes_in,
                bytes_out: r.bytes_out,
                device_elapsed: r.elapsed,
                done: dones[&device],
                simulated_gbps: r.throughput_gbps(),
            })
            .collect();
        Ok(ArrayScomp {
            outputs: results.iter().map(|r| r.concat_output()).collect(),
            bytes_in: results.iter().map(|r| r.bytes_in).sum(),
            bytes_out: results.iter().map(|r| r.bytes_out).sum(),
            elapsed: done_max.since(SimTime::ZERO),
            per_device,
            link,
        })
    }

    /// Marks a device failed. Subsequent reads take the degraded path;
    /// stores and scomp needing the device error out until
    /// [`SsdArray::rebuild_device`].
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn fail_device(&mut self, device: usize) {
        assert!(device < self.cfg.devices, "device {device} out of range");
        self.failed[device] = true;
        self.stats.devices[device].failed = true;
    }

    /// Replaces failed device `device` with a factory-blank drive and
    /// reconstructs every chunk it held — data from replicas or parity,
    /// parity recomputed from (recovered) data. The reconstruction reads
    /// are timed and contend the shared root: this is the rebuild storm.
    ///
    /// # Errors
    ///
    /// Fails if the device is not failed, if any chunk is unrecoverable
    /// ([`ArrayError::DataLoss`]), or on device errors.
    pub fn rebuild_device(&mut self, device: usize) -> Result<RebuildReport, ArrayError> {
        assert!(device < self.cfg.devices, "device {device} out of range");
        if !self.failed[device] {
            return Err(ArrayError::BadConfig(format!(
                "device {device} is not failed; nothing to rebuild"
            )));
        }

        // Writes planned against each object: (destination first LPA,
        // payload bytes) resolved after the fetch pass.
        enum Pending {
            /// Straight copy of a fetched chunk.
            Copy { fetch: usize, dst: u64, bytes: u64 },
            /// Stripe work: reconstruct the member set, then emit the
            /// requested roles onto the rebuilt device.
            Stripe {
                object: u64,
                member_fetch: Vec<Option<usize>>,
                p_fetch: Option<usize>,
                q_fetch: Option<usize>,
                len: u64,
                /// `(role, dst, bytes)`: role 0..width = data position,
                /// width = P, width + 1 = Q.
                out: Vec<(usize, u64, u64)>,
            },
        }

        let mut fetches: Vec<Fetch> = Vec::new();
        let mut pending: Vec<Pending> = Vec::new();
        let fetch = |fetches: &mut Vec<Fetch>, loc: &ChunkLoc| -> usize {
            fetches.push(Fetch {
                device: loc.device,
                lpas: loc.lpas.clone(),
                bytes: loc.bytes,
            });
            fetches.len() - 1
        };

        let objects: Vec<(u64, StoredObject)> = self
            .catalog
            .iter()
            .map(|(id, o)| (*id, o.clone()))
            .collect();
        for (id, obj) in &objects {
            if obj.stripes.is_empty() {
                for (c, loc) in obj.chunks.iter().enumerate() {
                    let copies: Vec<&ChunkLoc> =
                        std::iter::once(loc).chain(&obj.replicas[c]).collect();
                    for dst in copies.iter().filter(|l| l.device == device) {
                        let Some(src) = copies
                            .iter()
                            .find(|l| l.device != device && !self.failed[l.device])
                        else {
                            return Err(ArrayError::DataLoss {
                                object: *id,
                                chunk: c,
                            });
                        };
                        pending.push(Pending::Copy {
                            fetch: fetch(&mut fetches, src),
                            dst: dst.lpas[0].0,
                            bytes: dst.bytes,
                        });
                    }
                }
            } else {
                for stripe in &obj.stripes {
                    let members =
                        &obj.chunks[stripe.first_chunk..stripe.first_chunk + stripe.width];
                    let mut out: Vec<(usize, u64, u64)> = Vec::new();
                    for (i, loc) in members.iter().enumerate() {
                        if loc.device == device {
                            out.push((i, loc.lpas[0].0, loc.bytes));
                        }
                    }
                    for (k, loc) in stripe.parity.iter().enumerate() {
                        if loc.device == device {
                            out.push((stripe.width + k, loc.lpas[0].0, loc.bytes));
                        }
                    }
                    if out.is_empty() {
                        continue;
                    }
                    let member_fetch: Vec<Option<usize>> = members
                        .iter()
                        .map(|loc| (!self.failed[loc.device]).then(|| fetch(&mut fetches, loc)))
                        .collect();
                    let lost = member_fetch.iter().filter(|f| f.is_none()).count();
                    let usable: Vec<Option<usize>> = stripe
                        .parity
                        .iter()
                        .map(|loc| (!self.failed[loc.device]).then(|| fetch(&mut fetches, loc)))
                        .collect();
                    let avail = usable.iter().filter(|f| f.is_some()).count();
                    if lost > avail {
                        let first_lost = member_fetch
                            .iter()
                            .position(|f| f.is_none())
                            .expect("lost > 0");
                        return Err(ArrayError::DataLoss {
                            object: *id,
                            chunk: stripe.first_chunk + first_lost,
                        });
                    }
                    pending.push(Pending::Stripe {
                        object: *id,
                        member_fetch,
                        p_fetch: usable.first().copied().flatten(),
                        q_fetch: usable.get(1).copied().flatten(),
                        len: stripe.len,
                        out,
                    });
                }
            }
        }

        let (datas, elapsed, merged) = self.run_fetches(&fetches)?;
        let bytes_read: u64 = datas.iter().map(|d| d.len() as u64).sum();
        let link = self.finish_op(merged);

        // Resolve payloads and write them to the blank replacement.
        let mut cmds: Vec<(usize, DeviceCmd)> = vec![(device, DeviceCmd::Replace)];
        let mut chunks = 0u64;
        let mut bytes_written = 0u64;
        let mut pages_written = 0u64;
        for p in &pending {
            match p {
                Pending::Copy { fetch, dst, bytes } => {
                    chunks += 1;
                    bytes_written += bytes;
                    pages_written += self.pages_for(*bytes);
                    cmds.push((
                        device,
                        DeviceCmd::Store {
                            first_lpa: *dst,
                            data: Arc::from(&datas[*fetch][..*bytes as usize]),
                        },
                    ));
                }
                Pending::Stripe {
                    object,
                    member_fetch,
                    p_fetch,
                    q_fetch,
                    len,
                    out,
                } => {
                    let len = *len as usize;
                    // Reconstruct the full, padded member set.
                    let survivors_padded: Vec<(usize, Vec<u8>)> = member_fetch
                        .iter()
                        .enumerate()
                        .filter_map(|(i, f)| f.map(|fi| (i, datas[fi].as_slice())))
                        .map(|(i, s)| {
                            let mut v = vec![0u8; len];
                            v[..s.len()].copy_from_slice(s);
                            (i, v)
                        })
                        .collect();
                    let survivors: Vec<(usize, &[u8])> = survivors_padded
                        .iter()
                        .map(|(i, v)| (*i, v.as_slice()))
                        .collect();
                    let lost: Vec<usize> = member_fetch
                        .iter()
                        .enumerate()
                        .filter_map(|(i, f)| f.is_none().then_some(i))
                        .collect();
                    let p = p_fetch.map(|fi| datas[fi].as_slice());
                    let q = q_fetch.map(|fi| datas[fi].as_slice());
                    let rebuilt: Vec<(usize, Vec<u8>)> = match (lost.as_slice(), p, q) {
                        ([], _, _) => Vec::new(),
                        ([x], Some(p), _) => {
                            vec![(*x, recover::recover_from_p(&survivors, p))]
                        }
                        ([x], None, Some(q)) => {
                            vec![(*x, recover::recover_from_q(&survivors, q, *x))]
                        }
                        ([x, y], Some(p), Some(q)) => {
                            let (dx, dy) = recover::recover_two(&survivors, p, q, *x, *y);
                            vec![(*x, dx), (*y, dy)]
                        }
                        _ => {
                            return Err(ArrayError::DataLoss {
                                object: *object,
                                chunk: lost[0],
                            })
                        }
                    };
                    let member = |i: usize| -> &[u8] {
                        match member_fetch[i] {
                            Some(fi) => datas[fi].as_slice(),
                            None => rebuilt
                                .iter()
                                .find(|(j, _)| *j == i)
                                .map(|(_, v)| v.as_slice())
                                .expect("lost member reconstructed"),
                        }
                    };
                    for &(role, dst, bytes) in out {
                        let padded: Vec<Vec<u8>>;
                        let payload: Vec<u8> = if role < member_fetch.len() {
                            member(role)[..bytes as usize].to_vec()
                        } else {
                            padded = (0..member_fetch.len())
                                .map(|i| {
                                    let mut v = vec![0u8; len];
                                    let s = member(i);
                                    v[..s.len().min(len)].copy_from_slice(&s[..s.len().min(len)]);
                                    v
                                })
                                .collect();
                            let streams: Vec<&[u8]> = padded.iter().map(|v| v.as_slice()).collect();
                            if role == member_fetch.len() {
                                recover::p_parity(&streams, len)
                            } else {
                                recover::pq_parity(&streams, len).1
                            }
                        };
                        chunks += 1;
                        bytes_written += payload.len() as u64;
                        pages_written += self.pages_for(payload.len() as u64);
                        cmds.push((
                            device,
                            DeviceCmd::Store {
                                first_lpa: dst,
                                data: Arc::from(payload),
                            },
                        ));
                    }
                }
            }
        }
        self.run_batch(cmds)?;
        self.failed[device] = false;
        let stats = &mut self.stats.devices[device];
        stats.failed = false;
        stats.stores += chunks;
        stats.pages_written += pages_written;
        self.stats.rebuild_bytes_read += bytes_read;
        self.stats.rebuild_bytes_written += bytes_written;
        counters::record_rebuild(bytes_written);
        Ok(RebuildReport {
            device,
            chunks,
            bytes_read,
            bytes_written,
            elapsed,
            link,
        })
    }
}
