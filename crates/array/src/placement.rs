//! Host-side placement policies and the object catalog.
//!
//! The array places data at chunk granularity. A *chunk* is a run of
//! consecutive logical pages on one device; a *stripe* (RAID policies)
//! is one chunk per data device plus the parity chunks protecting them.
//! Chunk-to-device mapping is pure arithmetic on the data-chunk index,
//! so placement is deterministic and needs no stored map beyond the
//! per-object catalog entry.

use assasin_ftl::Lpa;

/// Host-side placement/erasure policy of an array.
///
/// (Named to avoid colliding with `assasin_ftl::Placement`, the
/// device-internal channel-placement knob.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrayPlacement {
    /// Round-robin chunks over all devices. No redundancy.
    Striped,
    /// Striping biased by per-device weights (device `i` receives
    /// `weights[i]` of every `sum(weights)` chunks) — the skewed
    /// placement of the rebuild-storm scenario. No redundancy.
    WeightedStriped {
        /// One positive weight per device.
        weights: Vec<u32>,
    },
    /// Every chunk stored on `copies` devices (primary plus
    /// `copies - 1` replicas on the next devices round-robin).
    /// Tolerates `copies - 1` failures.
    Replicated {
        /// Total copies of each chunk, `>= 2`.
        copies: usize,
    },
    /// XOR parity on a dedicated parity device (the last device), data
    /// striped over the rest. Tolerates one failure.
    Raid4,
    /// P+Q parity on the last two devices (P then Q), data striped over
    /// the rest. Tolerates two failures.
    Raid6,
}

impl ArrayPlacement {
    /// Human-readable policy name (report keys).
    pub fn name(&self) -> &'static str {
        match self {
            ArrayPlacement::Striped => "striped",
            ArrayPlacement::WeightedStriped { .. } => "weighted",
            ArrayPlacement::Replicated { .. } => "replicated",
            ArrayPlacement::Raid4 => "raid4",
            ArrayPlacement::Raid6 => "raid6",
        }
    }

    /// Smallest array this policy makes sense on.
    pub fn min_devices(&self) -> usize {
        match self {
            ArrayPlacement::Striped | ArrayPlacement::WeightedStriped { .. } => 1,
            ArrayPlacement::Replicated { copies } => (*copies).max(2),
            ArrayPlacement::Raid4 => 3,
            ArrayPlacement::Raid6 => 4,
        }
    }

    /// Devices dedicated to parity (0 except for the RAID policies).
    pub fn parity_devices(&self) -> usize {
        match self {
            ArrayPlacement::Raid4 => 1,
            ArrayPlacement::Raid6 => 2,
            _ => 0,
        }
    }

    /// Device failures the policy survives without data loss.
    pub fn redundancy(&self) -> usize {
        match self {
            ArrayPlacement::Striped | ArrayPlacement::WeightedStriped { .. } => 0,
            ArrayPlacement::Replicated { copies } => copies - 1,
            ArrayPlacement::Raid4 => 1,
            ArrayPlacement::Raid6 => 2,
        }
    }

    /// Number of devices holding data chunks on an array of `devices`.
    pub fn data_width(&self, devices: usize) -> usize {
        devices - self.parity_devices()
    }

    /// Device holding data chunk `chunk` on an array of `devices`.
    pub fn data_device(&self, devices: usize, chunk: usize) -> usize {
        match self {
            ArrayPlacement::Striped | ArrayPlacement::Replicated { .. } => chunk % devices,
            ArrayPlacement::WeightedStriped { weights } => {
                let total: u64 = weights.iter().map(|&w| w as u64).sum();
                let mut slot = (chunk as u64) % total;
                for (d, &w) in weights.iter().enumerate() {
                    if slot < w as u64 {
                        return d;
                    }
                    slot -= w as u64;
                }
                unreachable!("slot within weight total")
            }
            ArrayPlacement::Raid4 | ArrayPlacement::Raid6 => chunk % self.data_width(devices),
        }
    }

    /// Devices holding the extra copies of data chunk `chunk`
    /// (Replicated only; empty otherwise).
    pub fn replica_devices(&self, devices: usize, chunk: usize) -> Vec<usize> {
        match self {
            ArrayPlacement::Replicated { copies } => {
                let primary = self.data_device(devices, chunk);
                (1..*copies).map(|k| (primary + k) % devices).collect()
            }
            _ => Vec::new(),
        }
    }

    /// Devices holding the parity chunks of every stripe, in syndrome
    /// order (RAID4: `[P]`; RAID6: `[P, Q]`; empty otherwise).
    pub fn parity_device_ids(&self, devices: usize) -> Vec<usize> {
        match self {
            ArrayPlacement::Raid4 => vec![devices - 1],
            ArrayPlacement::Raid6 => vec![devices - 2, devices - 1],
            _ => Vec::new(),
        }
    }
}

/// One chunk's physical location: a run of logical pages on one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkLoc {
    /// Device holding the chunk.
    pub device: usize,
    /// The chunk's logical pages on that device, in order.
    pub lpas: Vec<Lpa>,
    /// Valid bytes (the final pages may be zero-padded).
    pub bytes: u64,
}

/// One RAID stripe: which data chunks it covers and where its parity
/// lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeLoc {
    /// Index of the stripe's first data chunk in
    /// [`StoredObject::chunks`].
    pub first_chunk: usize,
    /// Number of data chunks in the stripe (the final stripe may be
    /// short).
    pub width: usize,
    /// Coded stream length in bytes: every member is zero-padded to
    /// this length for parity math.
    pub len: u64,
    /// Parity chunks in syndrome order (RAID4: `[P]`; RAID6: `[P, Q]`).
    pub parity: Vec<ChunkLoc>,
}

/// Catalog entry for one stored object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredObject {
    /// Object length in bytes.
    pub bytes: u64,
    /// Placement granularity the object was stored under.
    pub chunk_bytes: u64,
    /// Data chunks in object order.
    pub chunks: Vec<ChunkLoc>,
    /// `replicas[c]` = extra copies of chunk `c` (Replicated only).
    pub replicas: Vec<Vec<ChunkLoc>>,
    /// Stripe map (RAID policies only).
    pub stripes: Vec<StripeLoc>,
}

impl StoredObject {
    /// The stripe covering data chunk `chunk`, if any.
    pub fn stripe_of(&self, chunk: usize) -> Option<&StripeLoc> {
        if self.stripes.is_empty() {
            return None;
        }
        let width = self.stripes[0].width;
        self.stripes.get(chunk / width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_round_robins() {
        let p = ArrayPlacement::Striped;
        let devs: Vec<usize> = (0..8).map(|c| p.data_device(4, c)).collect();
        assert_eq!(devs, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(p.redundancy(), 0);
    }

    #[test]
    fn weighted_striping_respects_weights() {
        let p = ArrayPlacement::WeightedStriped {
            weights: vec![3, 1],
        };
        let devs: Vec<usize> = (0..8).map(|c| p.data_device(2, c)).collect();
        assert_eq!(devs, vec![0, 0, 0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn replication_spreads_copies() {
        let p = ArrayPlacement::Replicated { copies: 3 };
        assert_eq!(p.data_device(4, 2), 2);
        assert_eq!(p.replica_devices(4, 2), vec![3, 0]);
        assert_eq!(p.redundancy(), 2);
    }

    #[test]
    fn raid_reserves_parity_devices() {
        let p4 = ArrayPlacement::Raid4;
        assert_eq!(p4.data_width(4), 3);
        assert_eq!(p4.parity_device_ids(4), vec![3]);
        assert_eq!(p4.data_device(4, 5), 2);
        let p6 = ArrayPlacement::Raid6;
        assert_eq!(p6.data_width(6), 4);
        assert_eq!(p6.parity_device_ids(6), vec![4, 5]);
        assert_eq!(p6.redundancy(), 2);
    }
}
