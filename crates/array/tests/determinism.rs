//! The array's determinism contract: threaded N-device execution is
//! byte-identical to serial execution.
//!
//! Every observable of a scripted op sequence — store reports, read
//! data, scomp results, rebuild reports, error renderings, cumulative
//! stats — is captured as one transcript string and compared between
//! `ArrayExec::Serial` and `ArrayExec::Threaded`. Device counts,
//! placement policies, object sizes, and *per-device NAND fault seeds*
//! are randomized: fault seeds give every device a different ECC/retry
//! timing profile, so any scheduling leak into the merge or the shared
//! root charge order would show up as a transcript diff.
//!
//! The test binary pins `RAYON_NUM_THREADS=8` before the thread budget
//! initializes: the host box may have a single core (budget 0), and the
//! threaded arm must actually cross threads to test anything.

use assasin_array::{ArrayConfig, ArrayExec, ArrayPlacement, SsdArray};
use assasin_core::EngineKind;
use assasin_flash::FaultConfig;
use assasin_kernels::scan;
use assasin_ssd::{KernelBundle, SsdConfig};
use proptest::prelude::*;

/// Pins the thread budget to 8 before anything claims from it. Tests in
/// this binary must call this first.
fn init_threads() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| std::env::set_var("RAYON_NUM_THREADS", "8"));
}

fn pattern(n: usize, salt: u64) -> Vec<u8> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(salt) >> 8) as u8)
        .collect()
}

fn scan_bundle() -> KernelBundle {
    KernelBundle::new("scan", scan::TUPLE_BYTES, 0.0, scan::program)
}

fn placement(idx: usize, devices: usize) -> ArrayPlacement {
    match idx % 5 {
        1 => ArrayPlacement::WeightedStriped {
            weights: (0..devices).map(|d| (d as u32 % 3) + 1).collect(),
        },
        2 if devices >= 2 => ArrayPlacement::Replicated { copies: 2 },
        3 if devices >= 3 => ArrayPlacement::Raid4,
        4 if devices >= 4 => ArrayPlacement::Raid6,
        _ => ArrayPlacement::Striped,
    }
}

/// Runs a fixed op script and renders every observable into one
/// transcript. Errors render too — a deterministic failure is as good
/// as a deterministic success.
fn run_script(
    exec: ArrayExec,
    devices: usize,
    pidx: usize,
    len: usize,
    salt: u64,
    seeds: &[u64],
) -> String {
    let place = placement(pidx, devices);
    let redundancy = place.redundancy();
    let mut device = SsdConfig::small_for_tests(EngineKind::AssasinSb);
    // A mild error rate: ECC corrections and occasional retries shift
    // per-device timing by seed without making reads unrecoverable.
    device.fault = FaultConfig::with_ber(0, 5.0e-5);
    let cfg = ArrayConfig::new(devices, place, device)
        .with_chunk_bytes(8192)
        .with_fault_seeds(seeds.to_vec())
        .with_exec(exec);
    let mut a = SsdArray::new(cfg).expect("valid config");
    let mut t = String::new();
    let data = pattern(len, salt);
    let data2 = pattern(len / 2 + 16, salt ^ 0xabc1);

    t += &format!("store1 {:?}\n", a.store_object(1, &data));
    t += &format!("read1 {:?}\n", a.read_object(1));
    t += &format!("scomp1 {:?}\n", a.scomp_object(1, scan_bundle));
    if redundancy > 0 {
        a.fail_device(0);
        t += &format!("degraded {:?}\n", a.read_object(1));
        t += &format!("rebuild {:?}\n", a.rebuild_device(0));
        t += &format!("restored {:?}\n", a.read_object(1));
    }
    t += &format!("store2 {:?}\n", a.store_object(2, &data2));
    t += &format!("read2 {:?}\n", a.read_object(2));
    t += &format!("stats {:?}\n", a.stats());
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn threaded_execution_is_byte_identical_to_serial(
        devices in 2usize..=5,
        pidx in 0usize..5,
        len_pages in 3usize..10,
        salt in 0u64..1_000_000,
        seed0 in 0u64..1_000,
        workers in 2usize..=4,
    ) {
        init_threads();
        let seeds: Vec<u64> = (0..devices).map(|d| seed0 + d as u64 * 7919).collect();
        let len = len_pages * 4096 + 1234;
        let serial = run_script(ArrayExec::Serial, devices, pidx, len, salt, &seeds);
        let threaded = run_script(
            ArrayExec::Threaded { workers },
            devices,
            pidx,
            len,
            salt,
            &seeds,
        );
        prop_assert_eq!(serial, threaded);
    }
}

/// The 8-device shape the scaling experiment uses, with real worker
/// threads confirmed live.
#[test]
fn eight_device_raid6_threaded_matches_serial_with_live_workers() {
    init_threads();
    let seeds: Vec<u64> = (0..8).map(|d| 17 + d * 13).collect();
    let serial = run_script(ArrayExec::Serial, 8, 4, 110_000, 99, &seeds);
    let threaded = run_script(
        ArrayExec::Threaded { workers: 8 },
        8,
        4,
        110_000,
        99,
        &seeds,
    );
    assert_eq!(
        serial, threaded,
        "8-device threaded run diverged from serial"
    );

    // Separately, confirm the threaded engine really crossed threads:
    // with the budget pinned at 8 the lease grants extra workers (other
    // tests may hold a few transiently, hence the retry loop).
    let mut spawned = 0;
    for _ in 0..50 {
        let device = SsdConfig::small_for_tests(EngineKind::AssasinSb);
        let cfg = ArrayConfig::new(8, ArrayPlacement::Striped, device)
            .with_exec(ArrayExec::Threaded { workers: 8 });
        let a = SsdArray::new(cfg).expect("valid config");
        spawned = spawned.max(a.effective_workers());
        if spawned >= 2 {
            break;
        }
    }
    assert!(
        spawned >= 2,
        "threaded arrays never obtained a worker thread from the budget"
    );
}
