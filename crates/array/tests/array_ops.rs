//! Functional behavior of the array layer: placement, round-trips,
//! degraded reads, rebuild, and per-device computation — all checked
//! against host-side goldens (the kernels crate's reference encoders
//! and `aes::golden`).

use std::sync::Arc;

use assasin_array::{ArrayConfig, ArrayError, ArrayExec, ArrayPlacement, SsdArray};
use assasin_core::EngineKind;
use assasin_kernels::aes;
use assasin_ssd::{KernelBundle, Ssd, SsdConfig};

const AES_KEY: [u8; 16] = [
    0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f,
];

fn aes_bundle() -> KernelBundle {
    KernelBundle::new("aes128", 16, 1.0, aes::program)
        .with_scratchpad_image(aes::scratchpad_image(&AES_KEY))
}

fn pattern(n: usize, salt: u64) -> Vec<u8> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(salt) >> 8) as u8)
        .collect()
}

fn cfg(devices: usize, placement: ArrayPlacement) -> ArrayConfig {
    ArrayConfig::new(
        devices,
        placement,
        SsdConfig::small_for_tests(EngineKind::AssasinSb),
    )
    // Two-page chunks: small enough that modest objects stripe widely,
    // big enough to exercise partial tail chunks.
    .with_chunk_bytes(8192)
}

fn array(devices: usize, placement: ArrayPlacement) -> SsdArray {
    SsdArray::new(cfg(devices, placement)).expect("valid config")
}

#[test]
fn striped_roundtrip_balances_pages() {
    let mut a = array(4, ArrayPlacement::Striped);
    // 9.5 chunks: a partial tail chunk and an uneven final stripe.
    let data = pattern(8192 * 9 + 4096, 1);
    let report = a.store_object(7, &data).expect("store");
    assert_eq!(report.data_chunks, 10);
    assert_eq!(report.parity_chunks, 0);
    // Chunks 0..9 round-robin; chunk 9 is the one-page tail on device 1.
    assert_eq!(report.per_device_pages, vec![6, 5, 4, 4]);
    let read = a.read_object(7).expect("read");
    assert_eq!(read.data, data, "round-trip is bit-exact");
    assert_eq!(read.degraded_chunks, 0);
    assert!(read.elapsed.as_ps() > 0, "reads are timed");
    assert_eq!(
        read.link.bytes,
        data.len() as u64,
        "every byte crossed the root"
    );
    assert!(a.stats().merged_events >= 10);
}

#[test]
fn weighted_striping_skews_placement() {
    let mut a = array(
        4,
        ArrayPlacement::WeightedStriped {
            weights: vec![3, 1, 1, 1],
        },
    );
    let data = pattern(8192 * 12, 2);
    let report = a.store_object(1, &data).expect("store");
    assert_eq!(report.per_device_pages, vec![12, 4, 4, 4]);
    assert_eq!(a.read_object(1).expect("read").data, data);
}

#[test]
fn replication_survives_and_then_loses_data() {
    let mut a = array(3, ArrayPlacement::Replicated { copies: 2 });
    let data = pattern(8192 * 6, 3);
    let report = a.store_object(9, &data).expect("store");
    assert_eq!(report.replica_chunks, 6);
    a.fail_device(0);
    let read = a.read_object(9).expect("replica-degraded read");
    assert_eq!(read.data, data);
    assert_eq!(read.degraded_chunks, 2, "device 0 held chunks 0 and 3");
    a.fail_device(1);
    let err = a.read_object(9).unwrap_err();
    assert!(
        matches!(err, ArrayError::DataLoss { object: 9, .. }),
        "both copies down is data loss, got {err}"
    );
}

#[test]
fn raid4_reads_through_any_single_failure_and_rebuilds() {
    let data = pattern(8192 * 7 + 1000, 4);
    for lost in 0..4 {
        let mut a = array(4, ArrayPlacement::Raid4);
        a.store_object(1, &data).expect("store");
        a.fail_device(lost);
        let read = a.read_object(1).expect("degraded read");
        assert_eq!(read.data, data, "lost device {lost}");
        let rebuilt = a.rebuild_device(lost).expect("rebuild");
        assert!(rebuilt.chunks > 0, "device {lost} held chunks");
        assert!(rebuilt.bytes_read > 0 && rebuilt.bytes_written > 0);
        assert!(rebuilt.elapsed.as_ps() > 0, "the read storm is timed");
        let read = a.read_object(1).expect("healthy read after rebuild");
        assert_eq!(read.data, data);
        assert_eq!(read.degraded_chunks, 0, "rebuild restored device {lost}");
    }
}

#[test]
fn raid4_two_failures_lose_data() {
    let mut a = array(4, ArrayPlacement::Raid4);
    let data = pattern(8192 * 6, 5);
    a.store_object(1, &data).expect("store");
    a.fail_device(0);
    a.fail_device(1);
    assert!(matches!(
        a.read_object(1).unwrap_err(),
        ArrayError::DataLoss { .. }
    ));
}

#[test]
fn raid6_survives_every_pair_of_failures() {
    let data = pattern(8192 * 8 + 512, 6);
    for a_dev in 0..5 {
        for b_dev in (a_dev + 1)..5 {
            let mut arr = array(5, ArrayPlacement::Raid6);
            arr.store_object(3, &data).expect("store");
            arr.fail_device(a_dev);
            arr.fail_device(b_dev);
            let read = arr.read_object(3).expect("double-degraded read");
            assert_eq!(read.data, data, "lost devices {a_dev},{b_dev}");
        }
    }
}

#[test]
fn raid6_rebuild_restores_full_redundancy() {
    let data = pattern(8192 * 8, 7);
    let mut a = array(5, ArrayPlacement::Raid6);
    a.store_object(3, &data).expect("store");
    a.fail_device(1);
    a.rebuild_device(1).expect("rebuild data device");
    // The rebuilt member must carry real content: lose two *other*
    // devices (including the P drive) and reconstruct through it.
    a.fail_device(2);
    a.fail_device(3);
    let read = a.read_object(3).expect("reads survive two fresh failures");
    assert_eq!(read.data, data);
    assert!(a.stats().rebuild_bytes_written > 0);

    // Rebuild the parity drive too, while a data device is still down.
    a.rebuild_device(3)
        .expect("rebuild P with a data device down");
    a.rebuild_device(2).expect("rebuild the data device");
    a.fail_device(0);
    a.fail_device(4);
    assert_eq!(a.read_object(3).expect("post-rebuild read").data, data);
}

#[test]
fn rebuild_requires_a_failed_device() {
    let mut a = array(4, ArrayPlacement::Raid4);
    a.store_object(1, &pattern(8192, 8)).expect("store");
    assert!(matches!(
        a.rebuild_device(2).unwrap_err(),
        ArrayError::BadConfig(_)
    ));
}

#[test]
fn scomp_lanes_match_aes_golden() {
    let mut a = array(4, ArrayPlacement::Striped);
    let data = pattern(8192 * 8, 9);
    a.store_object(5, &data).expect("store");
    let out = a.scomp_object(5, aes_bundle).expect("scomp");
    assert_eq!(out.bytes_in, data.len() as u64);
    assert_eq!(out.per_device.len(), 4);
    for lane in &out.per_device {
        // Device d holds chunks d, d+4, ... in object order.
        let mut lane_input = Vec::new();
        for c in (lane.device..8).step_by(4) {
            lane_input.extend_from_slice(&data[c * 8192..(c + 1) * 8192]);
        }
        let idx = out
            .per_device
            .iter()
            .position(|l| l.device == lane.device)
            .unwrap();
        assert_eq!(
            out.outputs[idx],
            aes::golden(&AES_KEY, &lane_input),
            "device {} encrypts exactly its chunks",
            lane.device
        );
        assert!(lane.device_elapsed.as_ps() > 0);
        assert!(lane.simulated_gbps > 0.0);
    }
    assert_eq!(out.bytes_out, out.bytes_in, "AES is 1:1");
    assert_eq!(out.link.bytes, out.bytes_out, "outputs crossed the root");
    assert!(out.elapsed.as_ps() > 0);
}

#[test]
fn scomp_follows_replicas_but_refuses_parity_holes() {
    let data = pattern(8192 * 6, 10);
    let mut rep = array(3, ArrayPlacement::Replicated { copies: 2 });
    rep.store_object(1, &data).expect("store");
    rep.fail_device(0);
    let out = rep.scomp_object(1, aes_bundle).expect("replica scomp");
    assert_eq!(out.bytes_in, data.len() as u64);
    assert_eq!(out.concat_output().len(), data.len());

    let mut r4 = array(4, ArrayPlacement::Raid4);
    r4.store_object(1, &data).expect("store");
    r4.fail_device(0);
    assert!(matches!(
        r4.scomp_object(1, aes_bundle).unwrap_err(),
        ArrayError::Degraded { device: 0, .. }
    ));
}

#[test]
fn from_image_forks_share_one_preconditioned_load() {
    let device = SsdConfig::small_for_tests(EngineKind::AssasinSb);
    let data = pattern(8192 * 6, 11);
    let mut seed = Ssd::new(device);
    seed.load_object(0, &data).expect("precondition");
    let image = Arc::new(seed.into_image());
    let mut a = SsdArray::from_image(
        cfg(3, ArrayPlacement::Striped).with_exec(ArrayExec::Serial),
        image,
        1024,
    )
    .expect("array from image");
    a.adopt_striped(1, 0, data.len() as u64).expect("adopt");
    assert_eq!(a.read_object(1).expect("read").data, data);
    let out = a.scomp_object(1, aes_bundle).expect("scomp");
    assert_eq!(out.bytes_in, data.len() as u64);
    // New objects allocate past the image.
    a.store_object(2, &pattern(8192, 12))
        .expect("store past image");
    assert_eq!(a.read_object(2).expect("read").data, pattern(8192, 12));
}

#[test]
fn config_validation_rejects_impossible_topologies() {
    let dev = SsdConfig::small_for_tests(EngineKind::AssasinSb);
    let bad = |c: ArrayConfig| {
        let Err(e) = SsdArray::new(c) else {
            panic!("config must be rejected");
        };
        assert!(matches!(e, ArrayError::BadConfig(_)), "got {e}");
    };
    bad(ArrayConfig::new(2, ArrayPlacement::Raid4, dev));
    bad(ArrayConfig::new(3, ArrayPlacement::Raid6, dev));
    bad(ArrayConfig::new(
        2,
        ArrayPlacement::Replicated { copies: 3 },
        dev,
    ));
    bad(ArrayConfig::new(
        3,
        ArrayPlacement::WeightedStriped {
            weights: vec![1, 2],
        },
        dev,
    ));
    bad(ArrayConfig::new(2, ArrayPlacement::Striped, dev).with_chunk_bytes(1000));
    bad(ArrayConfig::new(2, ArrayPlacement::Striped, dev).with_fault_seeds(vec![1]));

    let mut a = array(2, ArrayPlacement::Striped);
    a.store_object(1, &pattern(4096, 13)).expect("store");
    assert!(matches!(
        a.store_object(1, &pattern(4096, 13)).unwrap_err(),
        ArrayError::DuplicateObject(1)
    ));
    assert!(matches!(
        a.read_object(99).unwrap_err(),
        ArrayError::UnknownObject(99)
    ));
    assert!(matches!(
        a.store_object(2, &[]).unwrap_err(),
        ArrayError::BadConfig(_)
    ));
}

#[test]
fn shared_root_contention_is_visible_in_stats() {
    // A root at a fraction of one lane's bandwidth forces queuing when
    // four devices deliver at once.
    let mut a = SsdArray::new(cfg(4, ArrayPlacement::Striped).with_root_bw(1.0e9)).expect("array");
    let data = pattern(8192 * 8, 14);
    a.store_object(1, &data).expect("store");
    let read = a.read_object(1).expect("read");
    assert!(
        read.link.stalled.as_ps() > 0,
        "a constrained root must show contention stalls"
    );
    assert_eq!(
        a.stats().link_stalled,
        read.link.stalled,
        "per-op stalls roll up into cumulative stats"
    );
}
