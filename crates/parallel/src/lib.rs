//! Ordered fork-join parallelism over `std::thread` for the sweep
//! executor (`crates/bench`).
//!
//! The registry-less build cannot pull in `rayon`, so this crate provides
//! the one primitive the harness needs: [`par_map`], a work-stealing map
//! over a slice whose results come back **in input order**. Determinism
//! therefore does not depend on scheduling — only on each closure being a
//! pure function of its input — which is what lets serial and parallel
//! sweeps emit byte-identical reports.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (the conventional knob,
//! honored even though the implementation is not rayon) and defaults to
//! `std::thread::available_parallelism()`. A global budget caps the total
//! number of extra threads across *nested* `par_map` calls: an inner sweep
//! running on a worker thread degrades toward serial instead of
//! multiplying the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Extra worker threads still available across all live `par_map` calls.
fn budget() -> &'static AtomicUsize {
    static BUDGET: OnceLock<AtomicUsize> = OnceLock::new();
    BUDGET.get_or_init(|| AtomicUsize::new(configured_threads().saturating_sub(1)))
}

thread_local! {
    static MAX_OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Parses a `RAYON_NUM_THREADS`-style value: a positive integer thread
/// count. Split out (and public) so the rejection rules are unit-testable
/// without touching process environment.
///
/// # Errors
///
/// Returns a description of the problem for anything that is not a
/// positive integer — `"8 threads"`, `"0"`, `""`, `"-2"` all fail. A set
/// variable that cannot mean what the operator intended must not silently
/// fall back to `available_parallelism()`.
pub fn parse_thread_env(value: &str) -> Result<usize, String> {
    let trimmed = value.trim();
    if trimmed.is_empty() {
        return Err("empty value (unset the variable to use the default)".into());
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err("thread count must be at least 1".into()),
        Ok(n) => Ok(n),
        Err(e) => Err(format!("not a thread count: {e}")),
    }
}

fn configured_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS") {
        Err(std::env::VarError::NotPresent) => {}
        Err(e) => panic!("RAYON_NUM_THREADS is not valid unicode: {e}"),
        Ok(v) => match parse_thread_env(&v) {
            Ok(n) => return n,
            // A set-but-malformed knob is a hard error, mirroring
            // `perf_gate`'s handling of ASSASIN_PERF_GATE_PCT: a CI job
            // that typos `RAYON_NUM_THREADS="8 threads"` must not quietly
            // run at whatever parallelism the box happens to have.
            Err(why) => panic!("invalid RAYON_NUM_THREADS {v:?}: {why}"),
        },
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The thread cap a `par_map` on this thread would currently use.
pub fn current_max_threads() -> usize {
    MAX_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(configured_threads)
}

/// Runs `f` with the calling thread's `par_map` capped at `n` threads.
///
/// With `n == 1` every `par_map` in `f` (nested ones included) runs
/// serially on the calling thread — the serial arm of the determinism
/// regression test. Caps above 1 apply to `par_map` calls made directly
/// on this thread; work already running on spawned workers keeps its own
/// budget accounting.
pub fn with_max_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread cap must be at least 1");
    MAX_OVERRIDE.with(|o| {
        let prev = o.replace(Some(n));
        let out = f();
        o.set(prev);
        out
    })
}

/// Claims up to `want` extra threads from the global budget.
fn take_budget(want: usize) -> usize {
    let b = budget();
    let mut cur = b.load(Ordering::Relaxed);
    loop {
        let take = want.min(cur);
        if take == 0 {
            return 0;
        }
        match b.compare_exchange_weak(cur, cur - take, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return take,
            Err(now) => cur = now,
        }
    }
}

/// A claim on extra worker threads from the process-wide budget shared
/// with [`par_map`]. Long-lived executors (the `assasin-array` device
/// workers) hold one of these for their lifetime, so the threads they pin
/// are unavailable to nested `par_map` calls — the same degrade-toward-
/// serial accounting `par_map` applies to itself. The claim is returned
/// to the budget on drop.
#[derive(Debug)]
pub struct ThreadLease {
    claimed: usize,
}

impl ThreadLease {
    /// How many extra threads this lease actually holds (`<= want`; 0 when
    /// the budget was exhausted and the caller should run inline).
    pub fn claimed(&self) -> usize {
        self.claimed
    }
}

impl Drop for ThreadLease {
    fn drop(&mut self) {
        if self.claimed > 0 {
            budget().fetch_add(self.claimed, Ordering::Relaxed);
        }
    }
}

/// Claims up to `want` extra threads from the global budget for a
/// long-lived executor. Unlike [`par_map`]'s internal claims (returned
/// when the map finishes), the lease persists until dropped.
pub fn claim_threads(want: usize) -> ThreadLease {
    ThreadLease {
        claimed: take_budget(want),
    }
}

/// Maps `f` over `items` on up to `current_max_threads()` threads and
/// returns results in input order.
///
/// Scheduling is dynamic (an atomic cursor hands out indices) so uneven
/// point costs balance across workers, but reassembly is by index — the
/// output is identical to `items.iter().map(f).collect()` whenever `f` is
/// deterministic per item. Panics in `f` propagate to the caller.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let cap = current_max_threads();
    if cap <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let extra = take_budget(cap.min(items.len()) - 1);
    if extra == 0 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let run_worker = || {
        let mut out: Vec<(usize, R)> = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= items.len() {
                break;
            }
            out.push((i, f(&items[i])));
        }
        out
    };

    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..extra).map(|_| s.spawn(run_worker)).collect();
        let mut parts = vec![run_worker()];
        for h in handles {
            match h.join() {
                Ok(part) => parts.push(part),
                Err(payload) => {
                    budget().fetch_add(extra, Ordering::Relaxed);
                    std::panic::resume_unwind(payload);
                }
            }
        }
        parts
    });
    budget().fetch_add(extra, Ordering::Relaxed);

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in parts.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index handed out twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * x
        });
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_map_under_thread_cap_one() {
        let items: Vec<u32> = (0..64).collect();
        let serial = with_max_threads(1, || par_map(&items, |&x| x.wrapping_mul(2654435761)));
        let parallel = par_map(&items, |&x| x.wrapping_mul(2654435761));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn nested_calls_do_not_deadlock_and_stay_ordered() {
        let outer: Vec<usize> = (0..8).collect();
        let out = par_map(&outer, |&i| {
            let inner: Vec<usize> = (0..32).collect();
            par_map(&inner, |&j| i * 100 + j)
        });
        for (i, row) in out.iter().enumerate() {
            assert_eq!(row, &(0..32).map(|j| i * 100 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let none: Vec<u8> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[41u8], |&x| x + 1), vec![42]);
    }

    #[test]
    fn thread_env_parse_accepts_positive_integers() {
        assert_eq!(parse_thread_env("1"), Ok(1));
        assert_eq!(parse_thread_env("8"), Ok(8));
        assert_eq!(parse_thread_env("  16  "), Ok(16));
    }

    #[test]
    fn thread_env_parse_rejects_malformed_values() {
        for bad in ["", "   ", "0", "8 threads", "-2", "2.5", "eight", "1e3"] {
            assert!(
                parse_thread_env(bad).is_err(),
                "{bad:?} must be rejected, not silently defaulted"
            );
        }
    }

    #[test]
    fn thread_lease_respects_want_and_survives_drop_cycles() {
        // The budget is process-global and other tests exercise it
        // concurrently, so assert per-lease invariants only: a lease never
        // exceeds its ask, a zero ask claims nothing, and repeated
        // claim/drop cycles do not leak (a leak would drain the budget to
        // zero and pin every later claim at 0 — with leases this size the
        // budget would be negative long before the loop ends if drops
        // failed to give threads back).
        assert_eq!(claim_threads(0).claimed(), 0);
        for _ in 0..10_000 {
            let lease = claim_threads(2);
            assert!(lease.claimed() <= 2);
        }
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(&items, |&x| {
                assert!(x != 13, "boom");
                x
            })
        }));
        assert!(caught.is_err());
    }
}
