//! The SSD DRAM: a latency plus a shared bandwidth resource.

use assasin_sim::{Bandwidth, SimDur, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// The SSD's DRAM chip (Section II-A): page staging buffer, request queues
/// and FTL metadata all live here. Every consumer — flash controllers
/// staging pages, compute engines missing in their caches, the host DMA
/// path — shares one [`Bandwidth`] resource, which is exactly the memory
/// wall of Section III: at 8 GB/s effective bandwidth, staging traffic plus
/// compute traffic quickly exceeds capacity.
#[derive(Debug)]
pub struct Dram {
    latency: SimDur,
    bus: Bandwidth,
}

/// Shared handle to the SSD DRAM. The simulation is single-threaded per
/// SSD instance; `Rc<RefCell<_>>` models the physically-shared bus.
pub type SharedDram = Rc<RefCell<Dram>>;

impl Dram {
    /// Creates a DRAM with the given access latency and sustained bandwidth.
    pub fn new(latency: SimDur, bytes_per_sec: f64) -> Self {
        Dram {
            latency,
            bus: Bandwidth::new("ssd-dram", bytes_per_sec),
        }
    }

    /// The paper's evaluated part: 2 GB LPDDR5 at 8 GB/s effective
    /// bandwidth (Section VI-A), 100 ns access latency.
    pub fn lpddr5_8gbps() -> Self {
        Dram::new(SimDur::from_ns(100), 8.0e9)
    }

    /// Wraps a DRAM in a shared handle.
    pub fn into_shared(self) -> SharedDram {
        Rc::new(RefCell::new(self))
    }

    /// A demand access of `bytes` issued at `ready`: waits for a bus slot,
    /// then pays the access latency. Returns data-available time.
    pub fn access(&mut self, ready: SimTime, bytes: u64) -> SimTime {
        self.bus.transfer(ready, bytes) + self.latency
    }

    /// A posted (fire-and-forget) transfer — writebacks, staging writes.
    /// Consumes bandwidth but the caller does not wait for latency.
    pub fn post(&mut self, ready: SimTime, bytes: u64) -> SimTime {
        self.bus.transfer(ready, bytes)
    }

    /// Access latency component.
    pub fn latency(&self) -> SimDur {
        self.latency
    }

    /// Total bytes moved (staging + compute + host).
    pub fn bytes_moved(&self) -> u64 {
        self.bus.bytes_moved()
    }

    /// Configured bandwidth in bytes/second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bus.bytes_per_sec()
    }

    /// Bus utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.bus.utilization(horizon)
    }

    /// Achieved traffic rate over `[0, horizon]` in bytes/second.
    pub fn achieved_rate(&self, horizon: SimTime) -> f64 {
        self.bus.achieved_rate(horizon)
    }

    /// Resets traffic accounting (measurement windows).
    pub fn reset_stats(&mut self) {
        self.bus.reset_stats();
    }

    /// Returns the bus to idle at t = 0 and clears accounting.
    pub fn reset_time(&mut self) {
        self.bus.reset_time();
    }

    /// Serializes latency and the bus schedule/accounting.
    pub fn save_state(&self, enc: &mut assasin_snap::Encoder) {
        enc.u64(self.latency.as_ps());
        self.bus.save_state(enc);
    }

    /// Rebuilds a DRAM from [`Dram::save_state`] bytes.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    pub fn restore_state(
        dec: &mut assasin_snap::Decoder<'_>,
    ) -> Result<Self, assasin_snap::SnapError> {
        Ok(Dram {
            latency: SimDur::from_ps(dec.u64()?),
            bus: Bandwidth::restore_state(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_pays_latency_after_bus() {
        let mut d = Dram::new(SimDur::from_ns(100), 1.0e9);
        let done = d.access(SimTime::ZERO, 1000);
        assert_eq!(done, SimTime::from_ns(1100));
    }

    #[test]
    fn contention_queues_on_bus() {
        let mut d = Dram::lpddr5_8gbps();
        let a = d.access(SimTime::ZERO, 4096);
        let b = d.access(SimTime::ZERO, 4096);
        assert!(b > a);
        assert_eq!(d.bytes_moved(), 8192);
    }

    #[test]
    fn post_skips_latency() {
        let mut d = Dram::new(SimDur::from_ns(100), 1.0e9);
        let done = d.post(SimTime::ZERO, 1000);
        assert_eq!(done, SimTime::from_us(1));
    }
}
