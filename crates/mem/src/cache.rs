//! Set-associative write-back cache with LRU replacement.

use serde::{Deserialize, Serialize};

/// Cache geometry (Table IV uses 32 KiB/8-way L1D and 256 KiB/16-way L2,
/// both with 64 B lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u32,
}

impl CacheGeometry {
    /// The paper's L1D: 32 KiB, 8-way, 64 B lines.
    pub const L1D: CacheGeometry = CacheGeometry {
        size_bytes: 32 * 1024,
        ways: 8,
        line_bytes: 64,
    };
    /// The paper's L2: 256 KiB, 16-way, 64 B lines.
    pub const L2: CacheGeometry = CacheGeometry {
        size_bytes: 256 * 1024,
        ways: 16,
        line_bytes: 64,
    };

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
    /// LRU stamp; larger = more recently used.
    stamp: u64,
}

/// Result of one cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Line-aligned address of a dirty line evicted to make room
    /// (write-back traffic for the next level).
    pub writeback: Option<u64>,
}

/// A set-associative write-back, write-allocate cache.
///
/// Purely functional state (tags + LRU); timing lives in
/// [`MemHierarchy`](crate::MemHierarchy).
#[derive(Debug, Clone)]
pub struct Cache {
    geom: CacheGeometry,
    sets: Vec<Vec<Line>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if geometry is degenerate (zero sets or non-power-of-two line).
    pub fn new(geom: CacheGeometry) -> Self {
        assert!(
            geom.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = geom.sets();
        assert!(sets > 0, "cache must have at least one set");
        Cache {
            geom,
            sets: vec![Vec::new(); sets as usize],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// This cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn split(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.geom.line_bytes as u64;
        let set = (line % self.geom.sets() as u64) as usize;
        let tag = line / self.geom.sets() as u64;
        (set, tag)
    }

    /// Line-aligned base address for `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.geom.line_bytes as u64 - 1)
    }

    /// Looks up `addr`; on miss, allocates the line (write-allocate),
    /// evicting LRU if the set is full. `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> LookupResult {
        self.tick += 1;
        let (set_idx, tag) = self.split(addr);
        let ways = self.geom.ways as usize;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.stamp = self.tick;
            line.dirty |= write;
            self.hits += 1;
            return LookupResult {
                hit: true,
                writeback: None,
            };
        }
        self.misses += 1;
        let mut writeback = None;
        if set.len() >= ways {
            let victim_idx = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.stamp)
                .map(|(i, _)| i)
                .expect("full set has a victim");
            let victim = set.swap_remove(victim_idx);
            if victim.dirty {
                let line_no = victim.tag * self.geom.sets() as u64 + set_idx as u64;
                writeback = Some(line_no * self.geom.line_bytes as u64);
            }
        }
        set.push(Line {
            tag,
            dirty: write,
            stamp: self.tick,
        });
        LookupResult {
            hit: false,
            writeback,
        }
    }

    /// Checks presence without disturbing LRU or counters (for prefetch
    /// filtering).
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.split(addr);
        self.sets[set_idx].iter().any(|l| l.tag == tag)
    }

    /// Installs a line without counting a demand miss (prefetch fill).
    /// Returns the dirty line evicted, if any.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        if self.probe(addr) {
            return None;
        }
        self.tick += 1;
        let (set_idx, tag) = self.split(addr);
        let ways = self.geom.ways as usize;
        let sets_count = self.geom.sets() as u64;
        let line_bytes = self.geom.line_bytes as u64;
        let tick = self.tick;
        let set = &mut self.sets[set_idx];
        let mut writeback = None;
        if set.len() >= ways {
            let victim_idx = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.stamp)
                .map(|(i, _)| i)
                .expect("full set has a victim");
            let victim = set.swap_remove(victim_idx);
            if victim.dirty {
                let line_no = victim.tag * sets_count + set_idx as u64;
                writeback = Some(line_no * line_bytes);
            }
        }
        set.push(Line {
            tag,
            dirty: false,
            stamp: tick,
        });
        writeback
    }

    /// (hits, misses) so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Miss ratio so far (0 if no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 64B lines = 256B cache.
        Cache::new(CacheGeometry {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn geometry_sets() {
        assert_eq!(CacheGeometry::L1D.sets(), 64);
        assert_eq!(CacheGeometry::L2.sets(), 256);
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x13F, false).hit, "same line");
        assert!(!c.access(0x140, false).hit, "next line");
        assert_eq!(c.counters(), (2, 2));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Set 0 holds lines with even line index. Lines 0,2,4 map to set 0.
        c.access(0, false);
        c.access(2 * 64, false);
        c.access(0, false); // refresh line 0
        c.access(4 * 64, false); // evicts line 2 (LRU)
        assert!(c.probe(0));
        assert!(!c.probe(2 * 64));
        assert!(c.probe(4 * 64));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty line 0 (set 0)
        c.access(2 * 64, false);
        let r = c.access(4 * 64, false); // evicts dirty line 0
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn fill_does_not_count_as_demand() {
        let mut c = tiny();
        c.fill(0x100);
        assert_eq!(c.counters(), (0, 0));
        assert!(c.access(0x100, false).hit);
    }

    #[test]
    fn streaming_workload_always_misses() {
        // The Section III observation: caches don't help streaming data.
        let mut c = Cache::new(CacheGeometry::L1D);
        let line = CacheGeometry::L1D.line_bytes as u64;
        for i in 0..10_000u64 {
            c.access(i * line, false);
        }
        assert_eq!(c.counters().1, 10_000);
    }
}
