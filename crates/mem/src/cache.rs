//! Set-associative write-back cache with LRU replacement.

use serde::{Deserialize, Serialize};

/// Cache geometry (Table IV uses 32 KiB/8-way L1D and 256 KiB/16-way L2,
/// both with 64 B lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u32,
}

impl CacheGeometry {
    /// The paper's L1D: 32 KiB, 8-way, 64 B lines.
    pub const L1D: CacheGeometry = CacheGeometry {
        size_bytes: 32 * 1024,
        ways: 8,
        line_bytes: 64,
    };
    /// The paper's L2: 256 KiB, 16-way, 64 B lines.
    pub const L2: CacheGeometry = CacheGeometry {
        size_bytes: 256 * 1024,
        ways: 16,
        line_bytes: 64,
    };

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp; larger = more recently used.
    stamp: u64,
}

impl Line {
    const EMPTY: Line = Line {
        tag: 0,
        valid: false,
        dirty: false,
        stamp: 0,
    };
}

/// Result of one cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Line-aligned address of a dirty line evicted to make room
    /// (write-back traffic for the next level).
    pub writeback: Option<u64>,
}

/// A set-associative write-back, write-allocate cache.
///
/// Purely functional state (tags + LRU); timing lives in
/// [`MemHierarchy`](crate::MemHierarchy).
///
/// Storage is one flat boxed slice (set-major, `ways` contiguous slots
/// per set) with the set index/tag split precomputed at construction, and
/// a per-set MRU-way predictor so the common repeated-line hit touches a
/// single slot instead of scanning the set. Replacement behavior is
/// observably identical to the textbook `Vec<Vec<Line>>` formulation
/// (ticks are unique, so the LRU victim is unambiguous); a property test
/// in `tests/cache_equivalence.rs` pins that equivalence.
#[derive(Debug, Clone)]
pub struct Cache {
    geom: CacheGeometry,
    /// All lines, set-major: set `s` occupies `s*ways .. (s+1)*ways`.
    lines: Box<[Line]>,
    /// Per-set way index of the last hit (the MRU-way predictor).
    mru: Box<[u32]>,
    /// `log2(line_bytes)`.
    line_shift: u32,
    /// `(mask, shift)` when the set count is a power of two; the general
    /// div/mod split otherwise.
    set_split: Option<(u64, u32)>,
    ways: u32,
    sets: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if geometry is degenerate (zero sets or non-power-of-two line).
    pub fn new(geom: CacheGeometry) -> Self {
        assert!(
            geom.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = geom.sets();
        assert!(sets > 0, "cache must have at least one set");
        let set_split = sets
            .is_power_of_two()
            .then(|| (sets as u64 - 1, sets.trailing_zeros()));
        Cache {
            geom,
            lines: vec![Line::EMPTY; (sets * geom.ways) as usize].into_boxed_slice(),
            mru: vec![0u32; sets as usize].into_boxed_slice(),
            line_shift: geom.line_bytes.trailing_zeros(),
            set_split,
            ways: geom.ways,
            sets,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// This cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    #[inline]
    fn split(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        match self.set_split {
            Some((mask, shift)) => ((line & mask) as usize, line >> shift),
            None => ((line % self.sets as u64) as usize, line / self.sets as u64),
        }
    }

    /// Line-aligned base address for `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.geom.line_bytes as u64 - 1)
    }

    /// Reconstructs the line-aligned address of `(set, tag)`.
    #[inline]
    fn unsplit(&self, set_idx: usize, tag: u64) -> u64 {
        let line_no = tag * self.sets as u64 + set_idx as u64;
        line_no << self.line_shift
    }

    /// Looks up `addr`; on miss, allocates the line (write-allocate),
    /// evicting LRU if the set is full. `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> LookupResult {
        self.tick += 1;
        let (set_idx, tag) = self.split(addr);
        let base = set_idx * self.ways as usize;
        let set = &mut self.lines[base..base + self.ways as usize];
        // MRU-way fast path: repeated hits to the same line skip the scan.
        let mru = self.mru[set_idx] as usize;
        if set[mru].valid && set[mru].tag == tag {
            set[mru].stamp = self.tick;
            set[mru].dirty |= write;
            self.hits += 1;
            return LookupResult {
                hit: true,
                writeback: None,
            };
        }
        if let Some(w) = set.iter().position(|l| l.valid && l.tag == tag) {
            set[w].stamp = self.tick;
            set[w].dirty |= write;
            self.hits += 1;
            self.mru[set_idx] = w as u32;
            return LookupResult {
                hit: true,
                writeback: None,
            };
        }
        self.misses += 1;
        let (victim_way, writeback) = self.evict_slot(set_idx);
        self.lines[base + victim_way] = Line {
            tag,
            valid: true,
            dirty: write,
            stamp: self.tick,
        };
        self.mru[set_idx] = victim_way as u32;
        LookupResult {
            hit: false,
            writeback,
        }
    }

    /// A hit-only lookup for the hierarchy's L1 fast path: on hit the LRU
    /// stamp, dirty bit and hit counter update exactly as [`Cache::access`]
    /// would; on miss *nothing* changes (no tick, no miss count) so the
    /// caller can fall back to the full `access` path and end up with the
    /// identical per-access state transition.
    #[inline]
    pub fn try_hit(&mut self, addr: u64, write: bool) -> bool {
        let (set_idx, tag) = self.split(addr);
        let base = set_idx * self.ways as usize;
        let set = &mut self.lines[base..base + self.ways as usize];
        let mru = self.mru[set_idx] as usize;
        if set[mru].valid && set[mru].tag == tag {
            self.tick += 1;
            set[mru].stamp = self.tick;
            set[mru].dirty |= write;
            self.hits += 1;
            return true;
        }
        if let Some(w) = set.iter().position(|l| l.valid && l.tag == tag) {
            self.tick += 1;
            set[w].stamp = self.tick;
            set[w].dirty |= write;
            self.hits += 1;
            self.mru[set_idx] = w as u32;
            return true;
        }
        false
    }

    /// Picks the slot a new line lands in: an invalid way if one exists,
    /// else the LRU victim (unique minimal stamp). Returns the way index
    /// and the writeback address if the victim was dirty.
    fn evict_slot(&mut self, set_idx: usize) -> (usize, Option<u64>) {
        let base = set_idx * self.ways as usize;
        let set = &self.lines[base..base + self.ways as usize];
        let mut victim = 0usize;
        let mut best = u64::MAX;
        for (w, l) in set.iter().enumerate() {
            if !l.valid {
                return (w, None);
            }
            if l.stamp < best {
                best = l.stamp;
                victim = w;
            }
        }
        let v = set[victim];
        let writeback = v.dirty.then(|| self.unsplit(set_idx, v.tag));
        (victim, writeback)
    }

    /// Checks presence without disturbing LRU or counters (for prefetch
    /// filtering).
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.split(addr);
        let base = set_idx * self.ways as usize;
        self.lines[base..base + self.ways as usize]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Installs a line without counting a demand miss (prefetch fill).
    /// Returns the dirty line evicted, if any.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        if self.probe(addr) {
            return None;
        }
        self.tick += 1;
        let (set_idx, tag) = self.split(addr);
        let (way, writeback) = self.evict_slot(set_idx);
        let base = set_idx * self.ways as usize;
        self.lines[base + way] = Line {
            tag,
            valid: true,
            dirty: false,
            stamp: self.tick,
        };
        writeback
    }

    /// (hits, misses) so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Miss ratio so far (0 if no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Serializes geometry, every line, the MRU predictors and the
    /// counters. Derived fields (shift/split) are recomputed on restore.
    pub fn save_state(&self, enc: &mut assasin_snap::Encoder) {
        enc.u32(self.geom.size_bytes);
        enc.u32(self.geom.ways);
        enc.u32(self.geom.line_bytes);
        enc.len_of(self.lines.len());
        for l in self.lines.iter() {
            enc.u64(l.tag);
            enc.bool(l.valid);
            enc.bool(l.dirty);
            enc.u64(l.stamp);
        }
        for &w in self.mru.iter() {
            enc.u32(w);
        }
        enc.u64(self.tick);
        enc.u64(self.hits);
        enc.u64(self.misses);
    }

    /// Rebuilds a cache from [`Cache::save_state`] bytes.
    ///
    /// # Errors
    ///
    /// Fails on truncation or a line count inconsistent with the geometry.
    pub fn restore_state(
        dec: &mut assasin_snap::Decoder<'_>,
    ) -> Result<Self, assasin_snap::SnapError> {
        let geom = CacheGeometry {
            size_bytes: dec.u32()?,
            ways: dec.u32()?,
            line_bytes: dec.u32()?,
        };
        if !geom.line_bytes.is_power_of_two() || geom.sets() == 0 {
            return Err(assasin_snap::SnapError::Malformed(format!(
                "cache geometry {geom:?}"
            )));
        }
        let mut cache = Cache::new(geom);
        let n = dec.len_of()?;
        if n != cache.lines.len() {
            return Err(assasin_snap::SnapError::Malformed(format!(
                "cache line count {n} != {} for {geom:?}",
                cache.lines.len()
            )));
        }
        for l in cache.lines.iter_mut() {
            l.tag = dec.u64()?;
            l.valid = dec.bool()?;
            l.dirty = dec.bool()?;
            l.stamp = dec.u64()?;
        }
        for w in cache.mru.iter_mut() {
            let v = dec.u32()?;
            if v >= geom.ways {
                return Err(assasin_snap::SnapError::Malformed(format!(
                    "MRU way {v} out of {} ways",
                    geom.ways
                )));
            }
            *w = v;
        }
        cache.tick = dec.u64()?;
        cache.hits = dec.u64()?;
        cache.misses = dec.u64()?;
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 64B lines = 256B cache.
        Cache::new(CacheGeometry {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn geometry_sets() {
        assert_eq!(CacheGeometry::L1D.sets(), 64);
        assert_eq!(CacheGeometry::L2.sets(), 256);
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x13F, false).hit, "same line");
        assert!(!c.access(0x140, false).hit, "next line");
        assert_eq!(c.counters(), (2, 2));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Set 0 holds lines with even line index. Lines 0,2,4 map to set 0.
        c.access(0, false);
        c.access(2 * 64, false);
        c.access(0, false); // refresh line 0
        c.access(4 * 64, false); // evicts line 2 (LRU)
        assert!(c.probe(0));
        assert!(!c.probe(2 * 64));
        assert!(c.probe(4 * 64));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty line 0 (set 0)
        c.access(2 * 64, false);
        let r = c.access(4 * 64, false); // evicts dirty line 0
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn fill_does_not_count_as_demand() {
        let mut c = tiny();
        c.fill(0x100);
        assert_eq!(c.counters(), (0, 0));
        assert!(c.access(0x100, false).hit);
    }

    #[test]
    fn streaming_workload_always_misses() {
        // The Section III observation: caches don't help streaming data.
        let mut c = Cache::new(CacheGeometry::L1D);
        let line = CacheGeometry::L1D.line_bytes as u64;
        for i in 0..10_000u64 {
            c.access(i * line, false);
        }
        assert_eq!(c.counters().1, 10_000);
    }
}
