//! The cache-DRAM hierarchy used by Baseline/Prefetch cores (Figure 4).

use crate::{Cache, CacheGeometry, DcptPrefetcher, SharedDram};
use assasin_sim::{SimDur, SimTime};
use std::collections::HashMap;

/// Which level served a demand access — drives the Figure 5 cycle
/// decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// L1 hit.
    L1,
    /// Served by the L2.
    L2,
    /// Went to SSD DRAM.
    Dram,
    /// Covered by an in-flight prefetch.
    Prefetch,
}

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A demand load — stalls the in-order pipeline until data returns.
    Load,
    /// A store — retires through the store buffer without stalling (the
    /// line fill and writeback still consume DRAM bandwidth).
    Store,
}

/// Configuration of the per-core cache hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// L1 data cache geometry, if present.
    pub l1: Option<CacheGeometry>,
    /// L2 cache geometry, if present.
    pub l2: Option<CacheGeometry>,
    /// Whether the DCPT prefetcher is attached (the `Prefetch` variant).
    pub prefetch: bool,
    /// L1 hit service time (typically one pipeline cycle).
    pub l1_hit: SimDur,
    /// L2 hit service time.
    pub l2_hit: SimDur,
    /// DRAM-bus bytes charged per demand-fill byte. The Baseline SSD data
    /// path stages flash pages into DRAM and reads them back, so every
    /// fill byte costs two bus trips (Section III's blue arrows).
    pub fill_bytes_factor: u32,
    /// Fraction of the DRAM access latency exposed to a blocking load.
    /// Models the memory-level parallelism a pipelined in-order core still
    /// extracts (critical-word-first, fill/use overlap).
    pub mlp_latency_factor: f64,
}

impl HierarchyConfig {
    /// Table IV `Baseline`: 32 KiB/8-way L1D + 256 KiB/16-way L2, no
    /// prefetcher.
    pub fn baseline() -> Self {
        HierarchyConfig {
            l1: Some(CacheGeometry::L1D),
            l2: Some(CacheGeometry::L2),
            prefetch: false,
            // Load-use latency of an in-order five-stage core: the dcache
            // answers in MEM, so a dependent consumer sees two cycles.
            // (ASSASIN's scratchpad/streambuffer single-cycle access is
            // exactly the contrast Section V-B draws.)
            l1_hit: SimDur::from_ns(2),
            l2_hit: SimDur::from_ns(8),
            fill_bytes_factor: 2,
            mlp_latency_factor: 0.6,
        }
    }

    /// Table IV `Prefetch`: baseline plus DCPT.
    pub fn with_prefetcher() -> Self {
        HierarchyConfig {
            prefetch: true,
            ..HierarchyConfig::baseline()
        }
    }
}

/// A per-core cache hierarchy in front of the shared SSD DRAM.
///
/// Timing model: L1 hits cost [`HierarchyConfig::l1_hit`]; L1 misses that
/// hit in L2 cost `l2_hit`; L2 misses occupy the shared DRAM bus for a line
/// and pay the DRAM latency. Dirty evictions post write-back traffic to
/// DRAM without stalling the core. Prefetches issued by DCPT consume real
/// DRAM bandwidth and can later convert demand misses into
/// [`ServedBy::Prefetch`] hits.
#[derive(Debug)]
pub struct MemHierarchy {
    cfg: HierarchyConfig,
    l1: Option<Cache>,
    l2: Option<Cache>,
    prefetcher: Option<DcptPrefetcher>,
    dram: SharedDram,
    /// In-flight (or completed-but-unclaimed) prefetches: line addr -> data
    /// ready time.
    inflight_pf: HashMap<u64, SimTime>,
    line_bytes: u32,
    /// Demand traffic brought in from DRAM, in bytes.
    dram_fill_bytes: u64,
    /// `dram.latency() * mlp_latency_factor`, precomputed — the DRAM
    /// latency is fixed at construction, so the per-miss float round-trip
    /// is paid once here instead of on every fill.
    exposed_dram_latency: SimDur,
}

impl MemHierarchy {
    /// Largest number of outstanding prefetched lines tracked.
    const MAX_INFLIGHT_PF: usize = 32;

    /// Builds the hierarchy over the shared DRAM.
    pub fn new(cfg: HierarchyConfig, dram: SharedDram) -> Self {
        let line_bytes = cfg.l1.or(cfg.l2).map(|g| g.line_bytes).unwrap_or(64);
        let exposed_dram_latency =
            SimDur::from_secs_f64(dram.borrow().latency().as_secs_f64() * cfg.mlp_latency_factor);
        MemHierarchy {
            l1: cfg.l1.map(Cache::new),
            l2: cfg.l2.map(Cache::new),
            prefetcher: if cfg.prefetch {
                Some(DcptPrefetcher::new(line_bytes))
            } else {
                None
            },
            cfg,
            dram,
            inflight_pf: HashMap::new(),
            line_bytes,
            dram_fill_bytes: 0,
            exposed_dram_latency,
        }
    }

    /// Performs a demand access of `bytes` at `addr` issued by the
    /// instruction at `pc`, ready at `ready`. Returns the completion time
    /// and the level that served it.
    ///
    /// Accesses are line-granular: an access spanning two lines touches
    /// both and completes at the later one.
    pub fn access(
        &mut self,
        kind: AccessKind,
        pc: u64,
        addr: u64,
        bytes: u32,
        ready: SimTime,
    ) -> (SimTime, ServedBy) {
        let first_line = addr & !(self.line_bytes as u64 - 1);
        let last_line = (addr + bytes.max(1) as u64 - 1) & !(self.line_bytes as u64 - 1);
        // Fast path: a single-line access that hits L1 changes nothing
        // besides the line's LRU stamp/dirty bit and the hit counter —
        // skip the per-line loop, writeback plumbing and prefetch-table
        // lookups. `try_hit` mutates nothing on miss, so falling through
        // to the general path below replays the identical state machine.
        if first_line == last_line {
            if let Some(l1) = &mut self.l1 {
                if l1.try_hit(first_line, matches!(kind, AccessKind::Store)) {
                    if self.prefetcher.is_some() {
                        self.train_prefetcher(pc, addr, ready);
                    }
                    return (ready + self.cfg.l1_hit, ServedBy::L1);
                }
            }
        }
        let mut complete = ready;
        let mut served = ServedBy::L1;
        let mut line = first_line;
        loop {
            let (t, s) = self.access_line(kind, line, ready);
            if t > complete {
                complete = t;
                served = s;
            } else if line == first_line {
                served = s;
            }
            if line == last_line {
                break;
            }
            line += self.line_bytes as u64;
        }
        // Prefetcher observes the demand stream (trains on all accesses).
        if self.prefetcher.is_some() {
            self.train_prefetcher(pc, addr, ready);
        }
        (complete, served)
    }

    fn access_line(&mut self, kind: AccessKind, line: u64, ready: SimTime) -> (SimTime, ServedBy) {
        let l1_hit_time = ready + self.cfg.l1_hit;
        // L1 lookup.
        if let Some(l1) = &mut self.l1 {
            let r = l1.access(line, matches!(kind, AccessKind::Store));
            if let Some(wb) = r.writeback {
                self.writeback(wb, ready);
            }
            if r.hit {
                return (l1_hit_time, ServedBy::L1);
            }
        }
        // Prefetch coverage.
        if let Some(pf_ready) = self.inflight_pf.remove(&line) {
            if let Some(l2) = &mut self.l2 {
                if let Some(wb) = l2.fill(line) {
                    self.writeback(wb, ready);
                }
            }
            if let Some(pf) = &mut self.prefetcher {
                pf.note_useful();
            }
            let done = l1_hit_time.max(pf_ready);
            let served = ServedBy::Prefetch;
            let store = matches!(kind, AccessKind::Store);
            return (if store { l1_hit_time } else { done }, served);
        }
        // L2 lookup.
        if let Some(l2) = &mut self.l2 {
            let r = l2.access(line, false);
            if let Some(wb) = r.writeback {
                self.writeback(wb, ready);
            }
            if r.hit {
                return (ready + self.cfg.l2_hit, ServedBy::L2);
            }
        }
        // DRAM fill: the Baseline data path pays `fill_bytes_factor` bus
        // trips per byte (staging write + demand read), and a blocking load
        // sees `mlp_latency_factor` of the access latency.
        let fill = self.line_bytes as u64 * self.cfg.fill_bytes_factor as u64;
        self.dram_fill_bytes += fill;
        let done = match kind {
            AccessKind::Load => {
                let bus = self.dram.borrow_mut().post(ready, fill);
                bus + self.exposed_dram_latency
            }
            // Store misses fetch the line for ownership but retire through
            // the store buffer: traffic yes, stall no.
            AccessKind::Store => {
                self.dram.borrow_mut().post(ready, fill);
                ready + self.cfg.l1_hit
            }
        };
        (done, ServedBy::Dram)
    }

    fn train_prefetcher(&mut self, pc: u64, addr: u64, now: SimTime) {
        let Some(pf) = &mut self.prefetcher else {
            return;
        };
        let candidates = pf.observe(pc, addr);
        for cand in candidates {
            let line = cand & !(self.line_bytes as u64 - 1);
            let cached = self.l1.as_ref().map(|c| c.probe(line)).unwrap_or(false)
                || self.l2.as_ref().map(|c| c.probe(line)).unwrap_or(false);
            if cached || self.inflight_pf.contains_key(&line) {
                continue;
            }
            if self.inflight_pf.len() >= Self::MAX_INFLIGHT_PF {
                break;
            }
            let fill = self.line_bytes as u64 * self.cfg.fill_bytes_factor as u64;
            self.dram_fill_bytes += fill;
            let ready = {
                let bus = self.dram.borrow_mut().post(now, fill);
                bus + self.exposed_dram_latency
            };
            self.inflight_pf.insert(line, ready);
        }
    }

    fn writeback(&mut self, _line: u64, ready: SimTime) {
        self.dram.borrow_mut().post(ready, self.line_bytes as u64);
    }

    /// Demand-fill traffic brought from DRAM so far, in bytes.
    pub fn dram_fill_bytes(&self) -> u64 {
        self.dram_fill_bytes
    }

    /// L1 (hits, misses), if an L1 is configured.
    pub fn l1_counters(&self) -> Option<(u64, u64)> {
        self.l1.as_ref().map(|c| c.counters())
    }

    /// L2 (hits, misses), if an L2 is configured.
    pub fn l2_counters(&self) -> Option<(u64, u64)> {
        self.l2.as_ref().map(|c| c.counters())
    }

    /// Prefetcher (issued, useful) counters, if configured.
    pub fn prefetch_counters(&self) -> Option<(u64, u64)> {
        self.prefetcher.as_ref().map(|p| p.counters())
    }

    /// Serializes caches, prefetcher and in-flight prefetches. The config
    /// and the shared DRAM handle are supplied again at restore; the
    /// in-flight map is written sorted by line address so identical states
    /// produce identical bytes.
    pub fn save_state(&self, enc: &mut assasin_snap::Encoder) {
        for cache in [&self.l1, &self.l2] {
            match cache {
                Some(c) => {
                    enc.bool(true);
                    c.save_state(enc);
                }
                None => enc.bool(false),
            }
        }
        match &self.prefetcher {
            Some(p) => {
                enc.bool(true);
                p.save_state(enc);
            }
            None => enc.bool(false),
        }
        let mut pf: Vec<(u64, SimTime)> = self.inflight_pf.iter().map(|(&k, &v)| (k, v)).collect();
        pf.sort_unstable_by_key(|&(k, _)| k);
        enc.len_of(pf.len());
        for (line, ready) in pf {
            enc.u64(line);
            enc.u64(ready.as_ps());
        }
        enc.u64(self.dram_fill_bytes);
    }

    /// Rebuilds a hierarchy from [`MemHierarchy::save_state`] bytes over
    /// the supplied config and shared DRAM.
    ///
    /// # Errors
    ///
    /// Fails on truncation or a cache/prefetcher presence mismatch with
    /// `cfg` (the snapshot was taken under a different hierarchy shape).
    pub fn restore_state(
        cfg: HierarchyConfig,
        dram: SharedDram,
        dec: &mut assasin_snap::Decoder<'_>,
    ) -> Result<Self, assasin_snap::SnapError> {
        let mut h = MemHierarchy::new(cfg, dram);
        for (slot, want) in [(&mut h.l1, cfg.l1.is_some()), (&mut h.l2, cfg.l2.is_some())] {
            let present = dec.bool()?;
            if present != want {
                return Err(assasin_snap::SnapError::Malformed(
                    "hierarchy cache presence mismatch".into(),
                ));
            }
            if present {
                *slot = Some(Cache::restore_state(dec)?);
            }
        }
        let pf_present = dec.bool()?;
        if pf_present != cfg.prefetch {
            return Err(assasin_snap::SnapError::Malformed(
                "hierarchy prefetcher presence mismatch".into(),
            ));
        }
        if pf_present {
            h.prefetcher = Some(DcptPrefetcher::restore_state(dec)?);
        }
        let n = dec.len_of()?;
        h.inflight_pf = HashMap::with_capacity(n);
        for _ in 0..n {
            let line = dec.u64()?;
            let ready = SimTime::from_ps(dec.u64()?);
            h.inflight_pf.insert(line, ready);
        }
        h.dram_fill_bytes = dec.u64()?;
        Ok(h)
    }

    /// In-place variant of [`MemHierarchy::restore_state`] for containers
    /// that already hold a constructed hierarchy with the right config and
    /// DRAM handle (the decoded state replaces the current one).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`MemHierarchy::restore_state`].
    pub fn load_snapshot(
        &mut self,
        dec: &mut assasin_snap::Decoder<'_>,
    ) -> Result<(), assasin_snap::SnapError> {
        *self = Self::restore_state(self.cfg, self.dram.clone(), dec)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dram;

    fn dram() -> SharedDram {
        Dram::lpddr5_8gbps().into_shared()
    }

    #[test]
    fn l1_hit_is_fast() {
        let mut h = MemHierarchy::new(HierarchyConfig::baseline(), dram());
        let (t0, s0) = h.access(AccessKind::Load, 0, 0x1000, 4, SimTime::ZERO);
        assert_eq!(s0, ServedBy::Dram);
        let (t1, s1) = h.access(AccessKind::Load, 0, 0x1004, 4, t0);
        assert_eq!(s1, ServedBy::L1);
        assert_eq!(t1, t0 + HierarchyConfig::baseline().l1_hit);
    }

    #[test]
    fn l2_serves_l1_victims() {
        let mut h = MemHierarchy::new(HierarchyConfig::baseline(), dram());
        // Touch enough distinct lines to overflow L1 (32KiB = 512 lines)
        // but stay within L2 (4096 lines).
        for i in 0..1024u64 {
            h.access(AccessKind::Load, 0, i * 64, 4, SimTime::from_us(100));
        }
        // Re-touch the first line: out of L1, still in L2.
        let (_, s) = h.access(AccessKind::Load, 0, 0, 4, SimTime::from_ms(1));
        assert_eq!(s, ServedBy::L2);
    }

    #[test]
    fn streaming_pays_dram_every_line() {
        let mut h = MemHierarchy::new(HierarchyConfig::baseline(), dram());
        let mut dram_served = 0;
        let mut t = SimTime::ZERO;
        for i in 0..256u64 {
            let (done, s) = h.access(AccessKind::Load, 0, 0x10_0000 + i * 64, 4, t);
            t = done;
            if s == ServedBy::Dram {
                dram_served += 1;
            }
        }
        assert_eq!(dram_served, 256, "streaming has no reuse");
        // 2x per fill byte: staging write + demand read (Section III).
        assert_eq!(h.dram_fill_bytes(), 2 * 256 * 64);
    }

    #[test]
    fn prefetcher_converts_misses() {
        let mut hp = MemHierarchy::new(HierarchyConfig::with_prefetcher(), dram());
        let mut t = SimTime::ZERO;
        let mut covered = 0;
        for i in 0..512u64 {
            let (done, s) = hp.access(AccessKind::Load, 0x40, 0x20_0000 + i * 64, 4, t);
            t = done;
            if s == ServedBy::Prefetch {
                covered += 1;
            }
        }
        assert!(
            covered > 100,
            "DCPT must cover a sequential stream, got {covered}"
        );
        let (issued, useful) = hp.prefetch_counters().unwrap();
        assert!(issued >= useful);
        assert!(useful > 0);
    }

    #[test]
    fn stores_do_not_stall() {
        let mut h = MemHierarchy::new(HierarchyConfig::baseline(), dram());
        let (t, s) = h.access(AccessKind::Store, 0, 0x5000, 4, SimTime::ZERO);
        assert_eq!(s, ServedBy::Dram);
        assert_eq!(t, SimTime::ZERO + HierarchyConfig::baseline().l1_hit);
        // ... but they do produce DRAM traffic (2x per fill byte).
        assert_eq!(h.dram_fill_bytes(), 128);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = MemHierarchy::new(HierarchyConfig::baseline(), dram());
        h.access(AccessKind::Load, 0, 0x103C, 8, SimTime::ZERO);
        let (hits, misses) = h.l1_counters().unwrap();
        assert_eq!((hits, misses), (0, 2));
    }
}
