//! The ASSASIN streambuffer (Figure 8).
//!
//! A streambuffer holds up to `S` streams; each stream is a circular buffer
//! of `P` flash pages with Head and Tail pointers exposed as CSRs. The
//! input side receives pages pushed by the firmware through the crossbar
//! (each page stamped with its flash arrival time); `StreamLoad` consumes
//! from the head and stalls — never overflows — when data has not arrived.
//! The output side assembles `StreamStore` results into pages which the
//! firmware drains to flash or DRAM; a full ring stalls the writer.

use crate::MemError;
use assasin_sim::SimTime;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Streambuffer shape: the paper's AssasinSb uses S=8 streams, P=2 pages
/// per stream, for a 64 KiB buffer of 4 KiB pages (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamBufferConfig {
    /// Number of streams (S).
    pub streams: u32,
    /// Ring capacity per stream in pages (P).
    pub pages_per_stream: u32,
    /// Bytes per page slot.
    pub page_bytes: u32,
}

impl Default for StreamBufferConfig {
    fn default() -> Self {
        StreamBufferConfig {
            streams: 8,
            pages_per_stream: 2,
            page_bytes: 4096,
        }
    }
}

impl StreamBufferConfig {
    /// Total buffer capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.streams as u64 * self.pages_per_stream as u64 * self.page_bytes as u64
    }
}

#[derive(Debug, Clone)]
struct InPage {
    avail: SimTime,
    data: Bytes,
    offset: usize,
}

#[derive(Debug, Clone, Default)]
struct InStream {
    queue: VecDeque<InPage>,
    closed: bool,
    head: u64,
    tail: u64,
}

#[derive(Debug, Clone, Default)]
struct OutStream {
    current: Vec<u8>,
    /// Drain completion times of filled pages still occupying ring slots.
    pending: VecDeque<SimTime>,
    head: u64,
    tail: u64,
}

/// Outcome of a `StreamLoad` against the input side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Data available: `value` holds the little-endian bytes, `ready` is
    /// when the load can complete (page arrival may be in the future),
    /// `freed_pages` is how many ring slots this consume released (the
    /// firmware refills them).
    Data {
        /// Loaded value, little-endian in the low `width` bytes.
        value: u64,
        /// Completion time (max of `now` and page arrival).
        ready: SimTime,
        /// Ring slots released by this read.
        freed_pages: u32,
    },
    /// The ring has no (complete) data and the stream is still open: the
    /// core must wait for the firmware to push more pages.
    Blocked,
    /// The stream is closed and fully consumed — the paper's loop-exit
    /// condition ("the loop ends when StreamLoad hangs").
    Exhausted,
}

/// Outcome of a `StreamStore` against the output side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOutcome {
    /// When the store can retire (stalls when the ring is full of
    /// un-drained pages).
    pub ready: SimTime,
    /// A filled page handed to the firmware for draining, if the store
    /// completed one.
    pub completed_page: Option<Bytes>,
}

/// One per-core streambuffer (input or output role is per stream: a stream
/// is used either as input or output by the program).
#[derive(Debug, Clone)]
pub struct StreamBuffer {
    cfg: StreamBufferConfig,
    ins: Vec<InStream>,
    outs: Vec<OutStream>,
    bytes_in: u64,
    bytes_out: u64,
}

impl StreamBuffer {
    /// Creates an empty streambuffer.
    pub fn new(cfg: StreamBufferConfig) -> Self {
        StreamBuffer {
            cfg,
            ins: (0..cfg.streams).map(|_| InStream::default()).collect(),
            outs: (0..cfg.streams).map(|_| OutStream::default()).collect(),
            bytes_in: 0,
            bytes_out: 0,
        }
    }

    /// The configured shape.
    pub fn config(&self) -> StreamBufferConfig {
        self.cfg
    }

    fn in_stream(&mut self, sid: u32) -> Result<&mut InStream, MemError> {
        self.ins
            .get_mut(sid as usize)
            .ok_or(MemError::BadStream(sid))
    }

    fn out_stream(&mut self, sid: u32) -> Result<&mut OutStream, MemError> {
        self.outs
            .get_mut(sid as usize)
            .ok_or(MemError::BadStream(sid))
    }

    // ---------------------------------------------------------------- input

    /// Free input ring slots on `sid` (firmware checks before scheduling a
    /// page read — Figure 10's overflow avoidance). The subtraction
    /// saturates: a ring over capacity (only reachable through a config
    /// swap on a live buffer) reads as 0 free slots, not an underflow
    /// panic.
    ///
    /// # Errors
    ///
    /// Fails on a bad stream id, like every other per-stream accessor —
    /// a firmware bug addressing a nonexistent ring must surface, not
    /// read as "no free slots" and silently stall the refill loop.
    pub fn free_slots(&self, sid: u32) -> Result<u32, MemError> {
        self.ins
            .get(sid as usize)
            .map(|s| {
                self.cfg
                    .pages_per_stream
                    .saturating_sub(s.queue.len() as u32)
            })
            .ok_or(MemError::BadStream(sid))
    }

    /// Pushes a flash page into the input ring of `sid`, arriving at
    /// `avail`.
    ///
    /// # Errors
    ///
    /// Fails if the stream id is bad, the ring is full, or the page is
    /// larger than a slot.
    pub fn push_page(&mut self, sid: u32, data: Bytes, avail: SimTime) -> Result<(), MemError> {
        let page_bytes = self.cfg.page_bytes as usize;
        let pages = self.cfg.pages_per_stream as usize;
        let s = self.in_stream(sid)?;
        if s.queue.len() >= pages {
            return Err(MemError::StreamFull(sid));
        }
        if data.len() > page_bytes {
            return Err(MemError::BadPageSize {
                got: data.len(),
                want: page_bytes,
            });
        }
        s.tail += data.len() as u64;
        s.queue.push_back(InPage {
            avail,
            data,
            offset: 0,
        });
        Ok(())
    }

    /// Marks the input stream as fully scheduled: no more pages will come.
    ///
    /// # Errors
    ///
    /// Fails on a bad stream id.
    pub fn close(&mut self, sid: u32) -> Result<(), MemError> {
        self.in_stream(sid)?.closed = true;
        Ok(())
    }

    /// True if the input stream is closed and drained.
    pub fn is_exhausted(&self, sid: u32) -> bool {
        self.ins
            .get(sid as usize)
            .map(|s| s.closed && s.queue.is_empty())
            .unwrap_or(false)
    }

    /// Bytes queued and not yet consumed on input stream `sid`.
    pub fn in_bytes_available(&self, sid: u32) -> u64 {
        self.ins
            .get(sid as usize)
            .map(|s| {
                s.queue
                    .iter()
                    .map(|p| (p.data.len() - p.offset) as u64)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// `StreamLoad`: consumes `width` bytes (1, 2, 4 or 8) from the head of
    /// input stream `sid`.
    ///
    /// # Errors
    ///
    /// Fails on bad stream ids or widths. Data-availability conditions are
    /// reported in [`ReadOutcome`], not as errors.
    pub fn read(&mut self, sid: u32, width: u32, now: SimTime) -> Result<ReadOutcome, MemError> {
        if !matches!(width, 1 | 2 | 4 | 8) {
            return Err(MemError::BadWidth(width));
        }
        let s = self
            .ins
            .get_mut(sid as usize)
            .ok_or(MemError::BadStream(sid))?;
        // Fast path: the whole word sits in the head page. Sequential
        // word-at-a-time streaming (the common `StreamLoad` pattern) never
        // re-walks the page queue or re-derives availability — one cursor
        // bump against the cached head page per word.
        if let Some(page) = s.queue.front_mut() {
            let w = width as usize;
            if page.data.len() - page.offset >= w {
                let mut value = [0u8; 8];
                value[..w].copy_from_slice(&page.data[page.offset..page.offset + w]);
                let ready = now.max(page.avail);
                page.offset += w;
                let freed_pages = if page.offset == page.data.len() {
                    s.queue.pop_front();
                    1
                } else {
                    0
                };
                s.head += width as u64;
                self.bytes_in += width as u64;
                return Ok(ReadOutcome::Data {
                    value: u64::from_le_bytes(value),
                    ready,
                    freed_pages,
                });
            }
        }
        let available = self.in_bytes_available(sid);
        let s = self.in_stream(sid)?;
        if available < width as u64 {
            return Ok(if s.closed {
                ReadOutcome::Exhausted
            } else {
                ReadOutcome::Blocked
            });
        }
        let mut value = [0u8; 8];
        let mut got = 0usize;
        let mut ready = now;
        let mut freed = 0u32;
        while got < width as usize {
            let page = s.queue.front_mut().expect("availability checked");
            ready = ready.max(page.avail);
            let take = (width as usize - got).min(page.data.len() - page.offset);
            value[got..got + take].copy_from_slice(&page.data[page.offset..page.offset + take]);
            page.offset += take;
            got += take;
            if page.offset == page.data.len() {
                s.queue.pop_front();
                freed += 1;
            }
        }
        s.head += width as u64;
        self.bytes_in += width as u64;
        Ok(ReadOutcome::Data {
            value: u64::from_le_bytes(value),
            ready,
            freed_pages: freed,
        })
    }

    /// Head (bytes consumed) and Tail (bytes arrived) CSRs of an input
    /// stream.
    pub fn in_csrs(&self, sid: u32) -> Option<(u64, u64)> {
        self.ins.get(sid as usize).map(|s| (s.head, s.tail))
    }

    // --------------------------------------------------------------- output

    /// `StreamStore`: appends the low `width` bytes of `value` to output
    /// stream `sid`.
    ///
    /// # Errors
    ///
    /// Fails on bad stream ids or widths.
    pub fn write(
        &mut self,
        sid: u32,
        width: u32,
        value: u64,
        now: SimTime,
    ) -> Result<WriteOutcome, MemError> {
        if !matches!(width, 1 | 2 | 4 | 8) {
            return Err(MemError::BadWidth(width));
        }
        let page_bytes = self.cfg.page_bytes as usize;
        let pages = self.cfg.pages_per_stream as usize;
        let s = self.out_stream(sid)?;
        // Fast path: the page under assembly was already slot-checked when
        // its first word landed, and this word does not complete it — no
        // ring-slot reclaim, no completion handoff, just the cursor bump.
        if !s.current.is_empty() && s.current.len() + (width as usize) < page_bytes {
            s.current
                .extend_from_slice(&value.to_le_bytes()[..width as usize]);
            s.tail += width as u64;
            self.bytes_out += width as u64;
            return Ok(WriteOutcome {
                ready: now,
                completed_page: None,
            });
        }
        let mut ready = now;
        // Starting a fresh page requires a free ring slot; reclaim drained
        // slots, then stall on the oldest drain if all are pending.
        if s.current.is_empty() {
            while let Some(&front) = s.pending.front() {
                if front <= now {
                    s.pending.pop_front();
                } else {
                    break;
                }
            }
            if s.pending.len() >= pages {
                ready = *s.pending.front().expect("non-empty");
                s.pending.pop_front();
            }
        }
        s.current
            .extend_from_slice(&value.to_le_bytes()[..width as usize]);
        s.tail += width as u64;
        let completed_page = if s.current.len() >= page_bytes {
            let page = std::mem::take(&mut s.current);
            s.head += page.len() as u64;
            Some(Bytes::from(page))
        } else {
            None
        };
        self.bytes_out += width as u64;
        Ok(WriteOutcome {
            ready,
            completed_page,
        })
    }

    /// Registers the drain completion time of a page previously returned by
    /// [`StreamBuffer::write`] or [`StreamBuffer::flush`]: its ring slot
    /// stays occupied until `done`.
    ///
    /// # Errors
    ///
    /// Fails on a bad stream id.
    pub fn note_drain(&mut self, sid: u32, done: SimTime) -> Result<(), MemError> {
        self.out_stream(sid)?.pending.push_back(done);
        Ok(())
    }

    /// Takes the partially-filled final page of output stream `sid`, if
    /// any (end-of-compute flush by the firmware).
    ///
    /// # Errors
    ///
    /// Fails on a bad stream id.
    pub fn flush(&mut self, sid: u32) -> Result<Option<Bytes>, MemError> {
        let s = self.out_stream(sid)?;
        if s.current.is_empty() {
            return Ok(None);
        }
        let page = std::mem::take(&mut s.current);
        s.head += page.len() as u64;
        Ok(Some(Bytes::from(page)))
    }

    /// Latest pending drain completion on `sid`'s output ring (the firmware
    /// waits for this before completing a request).
    pub fn out_drain_horizon(&self, sid: u32) -> Option<SimTime> {
        self.outs
            .get(sid as usize)
            .and_then(|s| s.pending.iter().max().copied())
    }

    /// Head/Tail CSRs of an output stream.
    pub fn out_csrs(&self, sid: u32) -> Option<(u64, u64)> {
        self.outs.get(sid as usize).map(|s| (s.head, s.tail))
    }

    /// Total bytes consumed (all input streams) and produced (all output
    /// streams).
    pub fn traffic(&self) -> (u64, u64) {
        (self.bytes_in, self.bytes_out)
    }

    /// Serializes the config, every ring (including buffered page payloads
    /// and consume cursors) and the traffic counters.
    pub fn save_state(&self, enc: &mut assasin_snap::Encoder) {
        enc.u32(self.cfg.streams);
        enc.u32(self.cfg.pages_per_stream);
        enc.u32(self.cfg.page_bytes);
        for s in &self.ins {
            enc.len_of(s.queue.len());
            for p in &s.queue {
                enc.u64(p.avail.as_ps());
                enc.bytes(&p.data);
                enc.len_of(p.offset);
            }
            enc.bool(s.closed);
            enc.u64(s.head);
            enc.u64(s.tail);
        }
        for s in &self.outs {
            enc.bytes(&s.current);
            enc.len_of(s.pending.len());
            for &t in &s.pending {
                enc.u64(t.as_ps());
            }
            enc.u64(s.head);
            enc.u64(s.tail);
        }
        enc.u64(self.bytes_in);
        enc.u64(self.bytes_out);
    }

    /// Rebuilds a streambuffer from [`StreamBuffer::save_state`] bytes.
    ///
    /// # Errors
    ///
    /// Fails on truncation or a page cursor past its page's end.
    pub fn restore_state(
        dec: &mut assasin_snap::Decoder<'_>,
    ) -> Result<Self, assasin_snap::SnapError> {
        let cfg = StreamBufferConfig {
            streams: dec.u32()?,
            pages_per_stream: dec.u32()?,
            page_bytes: dec.u32()?,
        };
        let mut sb = StreamBuffer::new(cfg);
        for s in &mut sb.ins {
            let n = dec.len_of()?;
            for _ in 0..n {
                let avail = SimTime::from_ps(dec.u64()?);
                let data = Bytes::from(dec.bytes()?.to_vec());
                let offset = dec.len_of()?;
                if offset > data.len() {
                    return Err(assasin_snap::SnapError::Malformed(format!(
                        "stream page offset {offset} > len {}",
                        data.len()
                    )));
                }
                s.queue.push_back(InPage {
                    avail,
                    data,
                    offset,
                });
            }
            s.closed = dec.bool()?;
            s.head = dec.u64()?;
            s.tail = dec.u64()?;
        }
        for s in &mut sb.outs {
            s.current = dec.bytes()?.to_vec();
            let n = dec.len_of()?;
            for _ in 0..n {
                s.pending.push_back(SimTime::from_ps(dec.u64()?));
            }
            s.head = dec.u64()?;
            s.tail = dec.u64()?;
        }
        sb.bytes_in = dec.u64()?;
        sb.bytes_out = dec.u64()?;
        Ok(sb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(pages: u32, page_bytes: u32) -> StreamBufferConfig {
        StreamBufferConfig {
            streams: 2,
            pages_per_stream: pages,
            page_bytes,
        }
    }

    #[test]
    fn read_waits_for_arrival_time() {
        let mut sb = StreamBuffer::new(cfg(2, 8));
        sb.push_page(
            0,
            Bytes::from_static(&[1, 2, 3, 4, 5, 6, 7, 8]),
            SimTime::from_us(5),
        )
        .unwrap();
        match sb.read(0, 4, SimTime::ZERO).unwrap() {
            ReadOutcome::Data {
                value,
                ready,
                freed_pages,
            } => {
                assert_eq!(value, u32::from_le_bytes([1, 2, 3, 4]) as u64);
                assert_eq!(ready, SimTime::from_us(5));
                assert_eq!(freed_pages, 0);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn consuming_page_frees_slot() {
        let mut sb = StreamBuffer::new(cfg(2, 4));
        sb.push_page(0, Bytes::from_static(&[1, 2, 3, 4]), SimTime::ZERO)
            .unwrap();
        assert_eq!(sb.free_slots(0).unwrap(), 1);
        match sb.read(0, 4, SimTime::ZERO).unwrap() {
            ReadOutcome::Data { freed_pages, .. } => assert_eq!(freed_pages, 1),
            o => panic!("unexpected {o:?}"),
        }
        assert_eq!(sb.free_slots(0).unwrap(), 2);
    }

    #[test]
    fn free_slots_rejects_bad_stream_id() {
        let sb = StreamBuffer::new(cfg(2, 4));
        assert_eq!(sb.free_slots(9), Err(MemError::BadStream(9)));
    }

    #[test]
    fn read_spans_pages() {
        let mut sb = StreamBuffer::new(cfg(2, 4));
        sb.push_page(0, Bytes::from_static(&[1, 2, 3, 4]), SimTime::from_ns(10))
            .unwrap();
        sb.push_page(0, Bytes::from_static(&[5, 6, 7, 8]), SimTime::from_ns(30))
            .unwrap();
        sb.read(0, 2, SimTime::from_ns(100)).unwrap(); // consume 1,2
        match sb.read(0, 4, SimTime::from_ns(100)).unwrap() {
            ReadOutcome::Data {
                value,
                ready,
                freed_pages,
            } => {
                assert_eq!(value, u32::from_le_bytes([3, 4, 5, 6]) as u64);
                assert_eq!(ready, SimTime::from_ns(100)); // both pages arrived
                assert_eq!(freed_pages, 1);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn blocked_then_exhausted() {
        let mut sb = StreamBuffer::new(cfg(2, 4));
        assert_eq!(sb.read(0, 1, SimTime::ZERO).unwrap(), ReadOutcome::Blocked);
        sb.close(0).unwrap();
        assert_eq!(
            sb.read(0, 1, SimTime::ZERO).unwrap(),
            ReadOutcome::Exhausted
        );
        assert!(sb.is_exhausted(0));
    }

    #[test]
    fn overflow_is_an_error() {
        let mut sb = StreamBuffer::new(cfg(1, 4));
        sb.push_page(0, Bytes::from_static(&[0; 4]), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            sb.push_page(0, Bytes::from_static(&[0; 4]), SimTime::ZERO),
            Err(MemError::StreamFull(0))
        );
    }

    #[test]
    fn csrs_track_head_tail() {
        let mut sb = StreamBuffer::new(cfg(2, 4));
        sb.push_page(0, Bytes::from_static(&[1, 2, 3, 4]), SimTime::ZERO)
            .unwrap();
        sb.read(0, 2, SimTime::ZERO).unwrap();
        assert_eq!(sb.in_csrs(0), Some((2, 4)));
    }

    #[test]
    fn writes_fill_pages_and_stall_on_full_ring() {
        let mut sb = StreamBuffer::new(cfg(1, 4));
        // Fill first page.
        let mut page = None;
        for i in 0..4u64 {
            let o = sb.write(0, 1, i, SimTime::ZERO).unwrap();
            if o.completed_page.is_some() {
                page = o.completed_page.clone();
            }
        }
        let page = page.expect("page completed");
        assert_eq!(&page[..], &[0, 1, 2, 3]);
        // Firmware drains it, finishing at t=1us; slot busy until then.
        sb.note_drain(0, SimTime::from_us(1)).unwrap();
        let o = sb.write(0, 1, 9, SimTime::ZERO).unwrap();
        assert_eq!(o.ready, SimTime::from_us(1), "ring full -> stall");
    }

    #[test]
    fn drained_slots_do_not_stall() {
        let mut sb = StreamBuffer::new(cfg(1, 2));
        for i in 0..2u64 {
            sb.write(0, 1, i, SimTime::ZERO).unwrap();
        }
        sb.note_drain(0, SimTime::from_ns(10)).unwrap();
        // Write at t=20ns: pending drain already completed, no stall.
        let o = sb.write(0, 1, 7, SimTime::from_ns(20)).unwrap();
        assert_eq!(o.ready, SimTime::from_ns(20));
    }

    #[test]
    fn flush_returns_partial_page() {
        let mut sb = StreamBuffer::new(cfg(2, 4));
        sb.write(0, 2, 0x0201, SimTime::ZERO).unwrap();
        let page = sb.flush(0).unwrap().expect("partial page");
        assert_eq!(&page[..], &[1, 2]);
        assert_eq!(sb.flush(0).unwrap(), None);
    }

    #[test]
    fn bad_ids_and_widths_error() {
        let mut sb = StreamBuffer::new(cfg(2, 4));
        assert_eq!(
            sb.read(9, 1, SimTime::ZERO).unwrap_err(),
            MemError::BadStream(9)
        );
        assert_eq!(
            sb.read(0, 3, SimTime::ZERO).unwrap_err(),
            MemError::BadWidth(3)
        );
        assert_eq!(
            sb.write(0, 16, 0, SimTime::ZERO).unwrap_err(),
            MemError::BadWidth(16)
        );
    }
}
