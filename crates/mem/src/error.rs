//! Memory model errors.

use std::error::Error;
use std::fmt;

/// Errors returned by the memory models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Access outside a scratchpad or staged region.
    OutOfBounds {
        /// Offending byte address.
        addr: u64,
        /// Size of the region accessed.
        size: u64,
    },
    /// Stream id outside the configured number of streams.
    BadStream(u32),
    /// A page was pushed into a stream with no free slot (firmware must
    /// check `free_slots` first; Figure 10's "hanging avoids overflow").
    StreamFull(u32),
    /// A page push or read used an unsupported width/size.
    BadWidth(u32),
    /// Data pushed into a stream exceeded the configured page size.
    BadPageSize {
        /// Bytes supplied.
        got: usize,
        /// Page capacity.
        want: usize,
    },
    /// Read from a stream that is exhausted (closed and drained).
    StreamExhausted(u32),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr, size } => {
                write!(f, "access at {addr:#x} outside region of {size} bytes")
            }
            MemError::BadStream(s) => write!(f, "stream id {s} not configured"),
            MemError::StreamFull(s) => write!(f, "stream {s} has no free page slot"),
            MemError::BadWidth(w) => write!(f, "unsupported access width {w}"),
            MemError::BadPageSize { got, want } => {
                write!(f, "pushed {got} bytes into {want}-byte page slot")
            }
            MemError::StreamExhausted(s) => write!(f, "stream {s} is exhausted"),
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<MemError>();
    }

    #[test]
    fn display_nonempty() {
        assert!(!MemError::BadStream(3).to_string().is_empty());
    }
}
