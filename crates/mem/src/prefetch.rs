//! Delta-Correlating Prediction Table (DCPT) prefetcher.
//!
//! DCPT (Grannaes, Jahre & Natvig) is the best-performing Gem5 prefetcher on
//! the paper's benchmarks (Section VI-A), so it is the one the `Prefetch`
//! configuration of Table IV uses. Each table entry tracks, per load PC,
//! the history of address deltas; when the two most recent deltas reappear
//! earlier in the history, the deltas that followed them are replayed to
//! predict future addresses.

use std::collections::VecDeque;

const DELTA_HISTORY: usize = 16;
const TABLE_ENTRIES: usize = 128;
const MAX_PREFETCH_DEGREE: usize = 4;

#[derive(Debug, Clone)]
struct Entry {
    pc: u64,
    last_addr: u64,
    last_prefetch: u64,
    deltas: VecDeque<i64>,
}

/// The DCPT prefetcher. Operates on line-granular addresses.
#[derive(Debug, Clone)]
pub struct DcptPrefetcher {
    line_bytes: u64,
    entries: Vec<Entry>,
    issued: u64,
    useful_hint: u64,
}

impl DcptPrefetcher {
    /// Creates a DCPT prefetcher for the given cache line size.
    pub fn new(line_bytes: u32) -> Self {
        DcptPrefetcher {
            line_bytes: line_bytes as u64,
            entries: Vec::new(),
            issued: 0,
            useful_hint: 0,
        }
    }

    /// Observes a demand access `(pc, addr)` and returns the line-aligned
    /// addresses that should be prefetched (already filtered against
    /// `last_prefetch` to avoid re-issuing).
    pub fn observe(&mut self, pc: u64, addr: u64) -> Vec<u64> {
        let line = addr / self.line_bytes;
        let idx = match self.entries.iter().position(|e| e.pc == pc) {
            Some(i) => i,
            None => {
                if self.entries.len() >= TABLE_ENTRIES {
                    self.entries.remove(0); // FIFO replacement
                }
                self.entries.push(Entry {
                    pc,
                    last_addr: line,
                    last_prefetch: 0,
                    deltas: VecDeque::with_capacity(DELTA_HISTORY),
                });
                return Vec::new();
            }
        };
        let entry = &mut self.entries[idx];
        let delta = line as i64 - entry.last_addr as i64;
        if delta == 0 {
            return Vec::new();
        }
        if entry.deltas.len() == DELTA_HISTORY {
            entry.deltas.pop_front();
        }
        entry.deltas.push_back(delta);
        entry.last_addr = line;

        // Correlate: find the most recent earlier occurrence of the last
        // two deltas, then replay what followed.
        let n = entry.deltas.len();
        if n < 3 {
            return Vec::new();
        }
        let (d1, d2) = (entry.deltas[n - 2], entry.deltas[n - 1]);
        let mut candidates = Vec::new();
        for i in (0..n - 2).rev() {
            if i + 1 < n - 2 && entry.deltas[i] == d1 && entry.deltas[i + 1] == d2 {
                let mut next_line = line;
                for j in i + 2..n {
                    let predicted = next_line as i64 + entry.deltas[j];
                    if predicted <= 0 {
                        break;
                    }
                    next_line = predicted as u64;
                    if next_line > entry.last_prefetch {
                        candidates.push(next_line * self.line_bytes);
                        entry.last_prefetch = next_line;
                        if candidates.len() >= MAX_PREFETCH_DEGREE {
                            break;
                        }
                    }
                }
                break;
            }
        }
        self.issued += candidates.len() as u64;
        candidates
    }

    /// Notes that a demand access was served by an in-flight prefetch
    /// (coverage accounting).
    pub fn note_useful(&mut self) {
        self.useful_hint += 1;
    }

    /// (prefetches issued, prefetches that proved useful).
    pub fn counters(&self) -> (u64, u64) {
        (self.issued, self.useful_hint)
    }

    /// Serializes the full prediction table and counters.
    pub fn save_state(&self, enc: &mut assasin_snap::Encoder) {
        enc.u64(self.line_bytes);
        enc.len_of(self.entries.len());
        for e in &self.entries {
            enc.u64(e.pc);
            enc.u64(e.last_addr);
            enc.u64(e.last_prefetch);
            enc.len_of(e.deltas.len());
            for &d in &e.deltas {
                enc.i64(d);
            }
        }
        enc.u64(self.issued);
        enc.u64(self.useful_hint);
    }

    /// Rebuilds a prefetcher from [`DcptPrefetcher::save_state`] bytes.
    ///
    /// # Errors
    ///
    /// Fails on truncation or table/history sizes beyond the model's caps.
    pub fn restore_state(
        dec: &mut assasin_snap::Decoder<'_>,
    ) -> Result<Self, assasin_snap::SnapError> {
        let line_bytes = dec.u64()?;
        let n = dec.len_of()?;
        if n > TABLE_ENTRIES {
            return Err(assasin_snap::SnapError::Malformed(format!(
                "DCPT table size {n} > {TABLE_ENTRIES}"
            )));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let pc = dec.u64()?;
            let last_addr = dec.u64()?;
            let last_prefetch = dec.u64()?;
            let k = dec.len_of()?;
            if k > DELTA_HISTORY {
                return Err(assasin_snap::SnapError::Malformed(format!(
                    "DCPT delta history {k} > {DELTA_HISTORY}"
                )));
            }
            let mut deltas = VecDeque::with_capacity(DELTA_HISTORY);
            for _ in 0..k {
                deltas.push_back(dec.i64()?);
            }
            entries.push(Entry {
                pc,
                last_addr,
                last_prefetch,
                deltas,
            });
        }
        Ok(DcptPrefetcher {
            line_bytes,
            entries,
            issued: dec.u64()?,
            useful_hint: dec.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_is_predicted() {
        let mut pf = DcptPrefetcher::new(64);
        let mut predicted = Vec::new();
        for i in 0..16u64 {
            predicted.extend(pf.observe(0x400, i * 64));
        }
        assert!(!predicted.is_empty(), "sequential deltas must correlate");
        // Predictions must be line-aligned and strictly ahead.
        assert!(predicted.iter().all(|a| a % 64 == 0));
        let mut sorted = predicted.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), predicted.len(), "no duplicate prefetches");
    }

    #[test]
    fn strided_stream_is_predicted() {
        let mut pf = DcptPrefetcher::new(64);
        let mut predicted = Vec::new();
        for i in 0..20u64 {
            predicted.extend(pf.observe(0x404, i * 256));
        }
        assert!(!predicted.is_empty());
        assert!(predicted.iter().all(|a| a % 256 == 0));
    }

    #[test]
    fn random_stream_stays_quiet() {
        let mut pf = DcptPrefetcher::new(64);
        // Deltas never repeat as pairs -> (almost) no predictions.
        let addrs = [0u64, 64, 3 * 64, 7 * 64, 20 * 64, 22 * 64, 50 * 64, 51 * 64];
        let mut predicted = Vec::new();
        for &a in &addrs {
            predicted.extend(pf.observe(0x408, a));
        }
        assert!(predicted.len() <= 1, "got {predicted:?}");
    }

    #[test]
    fn distinct_pcs_do_not_interfere() {
        let mut pf = DcptPrefetcher::new(64);
        for i in 0..10u64 {
            pf.observe(0x1, i * 64);
            let p = pf.observe(0x2, 1 << 20); // same addr repeatedly: delta 0
            assert!(p.is_empty());
        }
        assert!(pf.counters().0 > 0);
    }
}
