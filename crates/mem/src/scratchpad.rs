//! Scratchpad memory for function state (Figure 8).

use crate::MemError;

/// A software-managed scratchpad tightly coupled to the core pipeline.
///
/// ASSASIN keeps bounded function state — accumulators, GF tables, AES key
/// schedules, parser state machines (Table II) — in the scratchpad, giving
/// low-latency random access without DRAM traffic. Access latency in cycles
/// is configured by the core (Section VI-F: a 64 KiB scratchpad with an
/// 8 B port times at 2 cycles in 14 nm).
#[derive(Debug, Clone)]
pub struct Scratchpad {
    data: Vec<u8>,
}

impl Scratchpad {
    /// Creates a zeroed scratchpad of `size` bytes.
    pub fn new(size: usize) -> Self {
        Scratchpad {
            data: vec![0; size],
        }
    }

    /// Capacity in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    fn check(&self, addr: u64, width: u32) -> Result<usize, MemError> {
        let end = addr
            .checked_add(width as u64)
            .ok_or(MemError::OutOfBounds {
                addr,
                size: self.data.len() as u64,
            })?;
        if end > self.data.len() as u64 {
            return Err(MemError::OutOfBounds {
                addr,
                size: self.data.len() as u64,
            });
        }
        Ok(addr as usize)
    }

    /// Loads `width` bytes (1, 2, 4 or 8) little-endian.
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses and unsupported widths fail.
    pub fn load(&self, addr: u64, width: u32) -> Result<u64, MemError> {
        if !matches!(width, 1 | 2 | 4 | 8) {
            return Err(MemError::BadWidth(width));
        }
        let base = self.check(addr, width)?;
        let mut buf = [0u8; 8];
        buf[..width as usize].copy_from_slice(&self.data[base..base + width as usize]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Stores the low `width` bytes (1, 2, 4 or 8) of `value` little-endian.
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses and unsupported widths fail.
    pub fn store(&mut self, addr: u64, width: u32, value: u64) -> Result<(), MemError> {
        if !matches!(width, 1 | 2 | 4 | 8) {
            return Err(MemError::BadWidth(width));
        }
        let base = self.check(addr, width)?;
        self.data[base..base + width as usize]
            .copy_from_slice(&value.to_le_bytes()[..width as usize]);
        Ok(())
    }

    /// Bulk-copies `src` into the scratchpad at `addr` (firmware preloading
    /// function state, or ping-pong staging).
    ///
    /// # Errors
    ///
    /// Fails if the copy would run off the end.
    pub fn write_bytes(&mut self, addr: u64, src: &[u8]) -> Result<(), MemError> {
        let base = self.check(addr, src.len().min(u32::MAX as usize) as u32)?;
        self.data[base..base + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the range runs off the end.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<&[u8], MemError> {
        let base = self.check(addr, len.min(u32::MAX as usize) as u32)?;
        Ok(&self.data[base..base + len])
    }

    /// Zeroes the scratchpad (firmware reset between compute requests).
    pub fn clear(&mut self) {
        self.data.fill(0);
    }

    /// Serializes the full contents.
    pub fn save_state(&self, enc: &mut assasin_snap::Encoder) {
        enc.bytes(&self.data);
    }

    /// Rebuilds a scratchpad from [`Scratchpad::save_state`] bytes.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn restore_state(
        dec: &mut assasin_snap::Decoder<'_>,
    ) -> Result<Self, assasin_snap::SnapError> {
        Ok(Scratchpad {
            data: dec.bytes()?.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_all_widths() {
        let mut sp = Scratchpad::new(64);
        for &w in &[1u32, 2, 4, 8] {
            sp.store(8, w, 0x1122_3344_5566_7788).unwrap();
            let v = sp.load(8, w).unwrap();
            let mask = if w == 8 {
                u64::MAX
            } else {
                (1u64 << (w * 8)) - 1
            };
            assert_eq!(v, 0x1122_3344_5566_7788 & mask);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut sp = Scratchpad::new(16);
        sp.store(0, 4, 0x0403_0201).unwrap();
        assert_eq!(sp.read_bytes(0, 4).unwrap(), &[1, 2, 3, 4]);
    }

    #[test]
    fn bounds_are_enforced() {
        let sp = Scratchpad::new(16);
        assert!(matches!(sp.load(13, 4), Err(MemError::OutOfBounds { .. })));
        assert!(matches!(
            sp.load(u64::MAX, 8),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn bad_width_rejected() {
        let sp = Scratchpad::new(16);
        assert_eq!(sp.load(0, 3), Err(MemError::BadWidth(3)));
    }

    #[test]
    fn bulk_roundtrip_and_clear() {
        let mut sp = Scratchpad::new(8);
        sp.write_bytes(2, &[9, 8, 7]).unwrap();
        assert_eq!(sp.read_bytes(2, 3).unwrap(), &[9, 8, 7]);
        sp.clear();
        assert_eq!(sp.read_bytes(2, 3).unwrap(), &[0, 0, 0]);
    }
}
