//! Memory-hierarchy models for the ASSASIN core variants.
//!
//! This crate provides every memory structure of Table IV and Figure 8:
//!
//! * [`Dram`] — the SSD's LPDDR5 DRAM: a latency plus a *shared* bandwidth
//!   resource. Contention on this resource is the in-SSD memory wall of
//!   Section III.
//! * [`Cache`] / [`MemHierarchy`] — set-associative write-back L1/L2 with
//!   LRU replacement, the Baseline/Prefetch cores' data path.
//! * [`DcptPrefetcher`] — a Delta-Correlating Prediction Table prefetcher
//!   (the best-performing Gem5 prefetcher per Section VI-A).
//! * [`Scratchpad`] — single-cycle (configurable) random-access function
//!   state memory.
//! * [`StreamBuffer`] — the ASSASIN streambuffer: `S` streams, each a
//!   circular buffer of `P` flash pages with Head/Tail CSRs (Figure 8),
//!   plus output-side drain management.
//! * [`sram`] — an analytical SRAM timing/energy/area model standing in for
//!   Cacti (Figures 20 and Table V).
//!
//! ```
//! use assasin_mem::{StreamBuffer, StreamBufferConfig, ReadOutcome};
//! use assasin_sim::SimTime;
//! use bytes::Bytes;
//!
//! let mut sb = StreamBuffer::new(StreamBufferConfig { streams: 2, pages_per_stream: 2, page_bytes: 8 });
//! sb.push_page(0, Bytes::from_static(&[1, 2, 3, 4, 5, 6, 7, 8]), SimTime::ZERO)?;
//! match sb.read(0, 4, SimTime::ZERO)? {
//!     ReadOutcome::Data { value, .. } => assert_eq!(value, u64::from_le_bytes([1,2,3,4,0,0,0,0])),
//!     other => panic!("unexpected {other:?}"),
//! }
//! # Ok::<(), assasin_mem::MemError>(())
//! ```

mod cache;
mod dram;
mod error;
mod hierarchy;
mod prefetch;
mod scratchpad;
pub mod sram;
mod streambuffer;

pub use cache::{Cache, CacheGeometry};
pub use dram::{Dram, SharedDram};
pub use error::MemError;
pub use hierarchy::{AccessKind, HierarchyConfig, MemHierarchy, ServedBy};
pub use prefetch::DcptPrefetcher;
pub use scratchpad::Scratchpad;
pub use streambuffer::{ReadOutcome, StreamBuffer, StreamBufferConfig, WriteOutcome};
