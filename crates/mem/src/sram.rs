//! Analytical SRAM timing / energy / area model (Cacti substitute).
//!
//! The paper times its memory structures with Cacti and a SystemVerilog
//! implementation in SAED 14 nm (Section VI-F, VI-G). We replace both with
//! a small analytical model whose constants are calibrated to the anchor
//! points the paper reports:
//!
//! * a 64 KiB scratchpad with an 8 B port needs 2 cycles at 1 GHz
//!   (access > 1 ns);
//! * a 32 KiB 8-way L1 is the 1 ns critical path of the five-stage pipeline;
//! * the streambuffer's prefetched head FIFO reaches 0.5 ns even with a
//!   64 B interface, enabling the 11% clock-period reduction.
//!
//! The *shape* — random-access time grows with capacity (wordline/bitline
//! length) and log-factors of width and associativity, while a small
//! head-only FIFO stays flat — is what Figures 20–22 rely on; absolute
//! numbers inherit the calibration.

/// Random-access SRAM read latency in nanoseconds.
///
/// `kb` is capacity in KiB, `width_bytes` the port width, `ways` the
/// associativity (1 for scratchpads).
///
/// ```
/// use assasin_mem::sram::ram_access_ns;
/// // 64 KiB scratchpad, 8B port: > 1ns (2 cycles at 1 GHz).
/// assert!(ram_access_ns(64.0, 8, 1) > 1.0);
/// ```
pub fn ram_access_ns(kb: f64, width_bytes: u32, ways: u32) -> f64 {
    assert!(kb > 0.0, "capacity must be positive");
    let base = 0.10;
    let array = 0.14 * kb.sqrt();
    let width = 0.02 * (width_bytes.max(1) as f64).log2();
    let assoc = 0.02 * (ways.max(1) as f64).log2();
    base + array + width + assoc
}

/// Streambuffer head-FIFO access latency in nanoseconds.
///
/// `StreamLoad`/`StreamStore` only ever touch the head of the stream, so
/// the implementation keeps a small prefetched FIFO (`fifo_bytes`, default
/// 256 B) in front of the page ring and refills it in coarse 128 B-aligned
/// chunks (Section VI-F). Latency is therefore nearly independent of the
/// ring capacity.
pub fn fifo_access_ns(width_bytes: u32, fifo_bytes: u32) -> f64 {
    let kb = fifo_bytes as f64 / 1024.0;
    // FIFO control (pointer compare + mux) adds a fixed term.
    0.30 + 0.14 * kb.sqrt() + 0.02 * (width_bytes.max(1) as f64).log2()
}

/// Cycles needed for a random SRAM access at the given clock period.
pub fn access_cycles(access_ns: f64, period_ns: f64) -> u32 {
    assert!(period_ns > 0.0);
    (access_ns / period_ns).ceil().max(1.0) as u32
}

/// SRAM macro area in mm² at 14 nm. `tagged` adds tag/valid array and
/// comparator overhead for caches.
pub fn sram_area_mm2(kb: f64, tagged: bool) -> f64 {
    // ~0.001 mm²/KiB data array (bitcell + periphery) at 14 nm.
    let data = kb * 0.0010;
    if tagged {
        data * 1.45
    } else {
        data
    }
}

/// SRAM leakage power in mW at 14 nm.
pub fn sram_leakage_mw(kb: f64) -> f64 {
    kb * 0.05
}

/// SRAM dynamic power in mW given an access rate in GHz and port width.
pub fn sram_dynamic_mw(kb: f64, width_bytes: u32, accesses_per_ns: f64) -> f64 {
    // Energy per access grows with sqrt(capacity) (bitline length) and
    // linearly with width.
    let pj_per_access = 1.5 + 0.45 * kb.sqrt() + 0.25 * width_bytes as f64;
    pj_per_access * accesses_per_ns
}

/// Total SRAM power (leakage + dynamic) in mW.
pub fn sram_power_mw(kb: f64, width_bytes: u32, accesses_per_ns: f64) -> f64 {
    sram_leakage_mw(kb) + sram_dynamic_mw(kb, width_bytes, accesses_per_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_l1_fits_1ghz() {
        // 32 KiB 8-way L1 with an 8B port ~ 1ns: the pipeline critical path.
        let t = ram_access_ns(32.0, 8, 8);
        assert!((0.9..=1.1).contains(&t), "L1 access {t} ns");
    }

    #[test]
    fn paper_anchor_64kb_scratchpad_needs_2_cycles() {
        let t = ram_access_ns(64.0, 8, 1);
        assert!(t > 1.0 && t < 2.0, "scratchpad access {t} ns");
        assert_eq!(access_cycles(t, 1.0), 2);
    }

    #[test]
    fn paper_anchor_streambuffer_hits_half_ns() {
        let t = fifo_access_ns(64, 256);
        assert!((0.4..=0.55).contains(&t), "streambuffer access {t} ns");
        // Enables the 11% shorter clock period (critical path moves to IF).
        assert!(t < 0.89);
    }

    #[test]
    fn wide_simd_port_on_scratchpad_is_slower_still() {
        // Figure 20: 64B-wide scratchpads are strictly slower than 8B ones.
        assert!(ram_access_ns(64.0, 64, 1) > ram_access_ns(64.0, 8, 1));
        // ... while the streambuffer stays fast at 64B.
        assert!(fifo_access_ns(64, 256) < 0.6);
    }

    #[test]
    fn area_and_power_scale_with_capacity() {
        assert!(sram_area_mm2(256.0, true) > sram_area_mm2(32.0, true));
        assert!(sram_area_mm2(32.0, true) > sram_area_mm2(32.0, false));
        assert!(sram_power_mw(256.0, 8, 0.3) > sram_power_mw(32.0, 8, 0.3));
        assert!(sram_leakage_mw(64.0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = ram_access_ns(0.0, 8, 1);
    }
}
