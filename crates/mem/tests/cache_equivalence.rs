//! Property tests pinning the flattened, MRU-predicted [`Cache`] to the
//! textbook `Vec<Vec<Line>>` formulation it replaced.
//!
//! The reference model below is the pre-refactor implementation verbatim
//! (modulo naming). LRU stamps are unique, so the victim choice is
//! unambiguous and every observable — hit/miss results, writeback
//! addresses, probe outcomes, hit/miss counters — must agree on any
//! access trace, for power-of-two and non-power-of-two set counts alike.

use assasin_mem::{Cache, CacheGeometry};
use proptest::collection::vec;
use proptest::prelude::*;

#[derive(Clone, Copy)]
struct RefLine {
    tag: u64,
    dirty: bool,
    stamp: u64,
}

/// The old `Vec<Vec<Line>>` cache: push-on-allocate, swap-remove on
/// eviction, LRU victim by minimal stamp.
struct RefCache {
    geom: CacheGeometry,
    sets: Vec<Vec<RefLine>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl RefCache {
    fn new(geom: CacheGeometry) -> Self {
        RefCache {
            geom,
            sets: vec![Vec::new(); geom.sets() as usize],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn split(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.geom.line_bytes as u64;
        let set = (line % self.geom.sets() as u64) as usize;
        let tag = line / self.geom.sets() as u64;
        (set, tag)
    }

    fn evict_if_full(&mut self, set_idx: usize) -> Option<u64> {
        let ways = self.geom.ways as usize;
        let sets_count = self.geom.sets() as u64;
        let line_bytes = self.geom.line_bytes as u64;
        let set = &mut self.sets[set_idx];
        if set.len() < ways {
            return None;
        }
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.stamp)
            .map(|(i, _)| i)
            .expect("full set has a victim");
        let victim = set.swap_remove(victim_idx);
        victim.dirty.then(|| {
            let line_no = victim.tag * sets_count + set_idx as u64;
            line_no * line_bytes
        })
    }

    /// `(hit, writeback)`, exactly [`Cache::access`]'s observables.
    fn access(&mut self, addr: u64, write: bool) -> (bool, Option<u64>) {
        self.tick += 1;
        let (set_idx, tag) = self.split(addr);
        if let Some(line) = self.sets[set_idx].iter_mut().find(|l| l.tag == tag) {
            line.stamp = self.tick;
            line.dirty |= write;
            self.hits += 1;
            return (true, None);
        }
        self.misses += 1;
        let writeback = self.evict_if_full(set_idx);
        let tick = self.tick;
        self.sets[set_idx].push(RefLine {
            tag,
            dirty: write,
            stamp: tick,
        });
        (false, writeback)
    }

    fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.split(addr);
        self.sets[set_idx].iter().any(|l| l.tag == tag)
    }

    fn fill(&mut self, addr: u64) -> Option<u64> {
        if self.probe(addr) {
            return None;
        }
        self.tick += 1;
        let (set_idx, tag) = self.split(addr);
        let writeback = self.evict_if_full(set_idx);
        let tick = self.tick;
        self.sets[set_idx].push(RefLine {
            tag,
            dirty: false,
            stamp: tick,
        });
        writeback
    }
}

/// Geometries under test: the paper's L1D/L2, a tiny 2x2, and a
/// three-set cache (non-power-of-two sets exercise the div/mod split).
fn geometries() -> [CacheGeometry; 4] {
    [
        CacheGeometry::L1D,
        CacheGeometry::L2,
        CacheGeometry {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        },
        CacheGeometry {
            size_bytes: 3 * 2 * 32,
            ways: 2,
            line_bytes: 32,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn flat_cache_matches_reference_on_random_traces(
        geom_idx in 0usize..4,
        ops in vec((0u64..1 << 16, 0u8..4), 1..400),
    ) {
        let geom = geometries()[geom_idx];
        let mut flat = Cache::new(geom);
        let mut reference = RefCache::new(geom);
        for (i, &(addr, op)) in ops.iter().enumerate() {
            match op {
                // 0 = read access, 1 = write access.
                0 | 1 => {
                    let r = flat.access(addr, op == 1);
                    let (hit, wb) = reference.access(addr, op == 1);
                    prop_assert_eq!(r.hit, hit, "op {}: hit mismatch at {:#x}", i, addr);
                    prop_assert_eq!(
                        r.writeback, wb,
                        "op {}: writeback mismatch at {:#x}", i, addr
                    );
                }
                // 2 = probe (no state change).
                2 => prop_assert_eq!(
                    flat.probe(addr),
                    reference.probe(addr),
                    "op {}: probe mismatch at {:#x}", i, addr
                ),
                // 3 = prefetch fill.
                _ => prop_assert_eq!(
                    flat.fill(addr),
                    reference.fill(addr),
                    "op {}: fill mismatch at {:#x}", i, addr
                ),
            }
        }
        prop_assert_eq!(flat.counters(), (reference.hits, reference.misses));
    }

    /// Drives the flat cache the way `MemHierarchy`'s L1 fast path does —
    /// `try_hit`, falling back to `access` on miss — and checks that the
    /// combination is indistinguishable from plain `access` on the
    /// reference model.
    #[test]
    fn try_hit_plus_access_fallback_matches_plain_access(
        geom_idx in 0usize..4,
        ops in vec((0u64..1 << 14, 0u8..2), 1..400),
    ) {
        let geom = geometries()[geom_idx];
        let mut flat = Cache::new(geom);
        let mut reference = RefCache::new(geom);
        for (i, &(addr, op)) in ops.iter().enumerate() {
            let write = op == 1;
            let (hit, wb) = if flat.try_hit(addr, write) {
                (true, None)
            } else {
                let r = flat.access(addr, write);
                (r.hit, r.writeback)
            };
            let (ref_hit, ref_wb) = reference.access(addr, write);
            prop_assert_eq!(hit, ref_hit, "op {}: hit mismatch at {:#x}", i, addr);
            prop_assert_eq!(wb, ref_wb, "op {}: writeback mismatch at {:#x}", i, addr);
        }
        prop_assert_eq!(flat.counters(), (reference.hits, reference.misses));
    }
}
