//! TPC-H-like workload generation.
//!
//! The paper evaluates on TPC-H (SF 10) via SparkSQL (Section VI-A). This
//! crate replaces `dbgen`: a deterministic generator for all eight TPC-H
//! tables with simplified all-`u32` schemas that keep the benchmark's
//! *structure* — key relationships, date ranges, selectivity-relevant value
//! distributions — while staying directly consumable by the binary
//! fixed-width kernels ([`Table::to_binary`]) and the text-parsing kernels
//! ([`Table::to_csv`], `dbgen`'s `|`-delimited flat-file format).
//!
//! ```
//! use assasin_workloads::{TpchGen, TableId};
//! let gen = TpchGen::new(0.001, 42);
//! let lineitem = gen.table(TableId::Lineitem);
//! assert_eq!(lineitem.width(), 12);
//! assert!(lineitem.rows() > 1000);
//! let binary = lineitem.to_binary();
//! assert_eq!(binary.len(), lineitem.rows() * 48);
//! ```

mod gen;
mod schema;

pub use gen::TpchGen;
pub use schema::{lineitem_cols, Table, TableId};
