//! Deterministic TPC-H-like data generation (the `dbgen` substitute).

use crate::{Table, TableId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Days between 1992-01-01 and 1998-12-31, TPC-H's date domain.
pub const DATE_DAYS: u32 = 2557;

/// Deterministic generator: the same `(sf, seed)` always produces the same
/// dataset, so experiments are reproducible and goldens stable.
#[derive(Debug, Clone, Copy)]
pub struct TpchGen {
    sf: f64,
    seed: u64,
}

impl TpchGen {
    /// Creates a generator at scale factor `sf` (1.0 = the full TPC-H
    /// sizes; the harness typically uses 0.001–0.1).
    ///
    /// # Panics
    ///
    /// Panics on non-positive scale factors.
    pub fn new(sf: f64, seed: u64) -> Self {
        assert!(sf > 0.0 && sf.is_finite(), "scale factor must be positive");
        TpchGen { sf, seed }
    }

    /// The configured scale factor.
    pub fn scale_factor(&self) -> f64 {
        self.sf
    }

    /// Scaled row count for a table.
    pub fn rows(&self, id: TableId) -> u64 {
        match id {
            // Fixed-size dimension tables don't scale.
            TableId::Nation | TableId::Region => id.base_rows(),
            _ => ((id.base_rows() as f64 * self.sf) as u64).max(1),
        }
    }

    fn rng_for(&self, id: TableId) -> SmallRng {
        SmallRng::seed_from_u64(self.seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Generates one table.
    pub fn table(&self, id: TableId) -> Table {
        let rows = self.rows(id) as usize;
        let mut rng = self.rng_for(id);
        let orders = self.rows(TableId::Orders).max(1);
        let parts = self.rows(TableId::Part).max(1);
        let supps = self.rows(TableId::Supplier).max(1);
        let custs = self.rows(TableId::Customer).max(1);
        let mut data = Vec::with_capacity(rows * id.width());
        match id {
            TableId::Lineitem => {
                // lineitem rows belong to orders: 1-7 lines per order, so
                // generate by walking order keys like dbgen does.
                let mut orderkey = 1u32;
                let mut line = 1u32;
                let mut lines_in_order = 1 + rng.gen_range(0..7);
                for _ in 0..rows {
                    if line > lines_in_order {
                        orderkey = (orderkey % orders as u32) + 1;
                        line = 1;
                        lines_in_order = 1 + rng.gen_range(0..7);
                    }
                    let shipdate = rng.gen_range(0..DATE_DAYS);
                    data.extend_from_slice(&[
                        orderkey,
                        1 + rng.gen_range(0..parts as u32),
                        1 + rng.gen_range(0..supps as u32),
                        line,
                        1 + rng.gen_range(0..50),        // quantity
                        100 + rng.gen_range(0..100_000), // extendedprice (cents)
                        rng.gen_range(0..11),            // discount (%)
                        rng.gen_range(0..9),             // tax (%)
                        rng.gen_range(0..3),             // returnflag
                        rng.gen_range(0..2),             // linestatus
                        shipdate,
                        shipdate + 1 + rng.gen_range(0..30), // receiptdate
                    ]);
                    line += 1;
                }
            }
            TableId::Orders => {
                for i in 0..rows {
                    data.extend_from_slice(&[
                        i as u32 + 1,
                        1 + rng.gen_range(0..custs as u32),
                        rng.gen_range(0..3),              // orderstatus
                        1000 + rng.gen_range(0..500_000), // totalprice
                        rng.gen_range(0..DATE_DAYS),      // orderdate
                        rng.gen_range(0..5),              // orderpriority
                        rng.gen_range(0..2),              // shippriority
                        rng.gen_range(0..1000),           // clerk
                    ]);
                }
            }
            TableId::Customer => {
                for i in 0..rows {
                    data.extend_from_slice(&[
                        i as u32 + 1,
                        rng.gen_range(0..25), // nationkey
                        rng.gen_range(0..1_000_000),
                        rng.gen_range(0..5), // mktsegment
                    ]);
                }
            }
            TableId::Part => {
                for i in 0..rows {
                    data.extend_from_slice(&[
                        i as u32 + 1,
                        rng.gen_range(0..25),  // brand
                        rng.gen_range(0..150), // type
                        1 + rng.gen_range(0..50),
                        rng.gen_range(0..40), // container
                        900 + rng.gen_range(0..10_000),
                    ]);
                }
            }
            TableId::Supplier => {
                for i in 0..rows {
                    data.extend_from_slice(&[
                        i as u32 + 1,
                        rng.gen_range(0..25),
                        rng.gen_range(0..1_000_000),
                        0,
                    ]);
                }
            }
            TableId::Partsupp => {
                for i in 0..rows {
                    data.extend_from_slice(&[
                        1 + (i as u32 % parts as u32),
                        1 + rng.gen_range(0..supps as u32),
                        1 + rng.gen_range(0..10_000),
                        1 + rng.gen_range(0..100_000),
                    ]);
                }
            }
            TableId::Nation => {
                for i in 0..rows {
                    data.extend_from_slice(&[i as u32, i as u32 % 5, 0, 0]);
                }
            }
            TableId::Region => {
                for i in 0..rows {
                    data.extend_from_slice(&[i as u32, 0, 0, 0]);
                }
            }
        }
        Table::new(id, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineitem_cols as lc;

    #[test]
    fn generation_is_deterministic() {
        let a = TpchGen::new(0.001, 7).table(TableId::Lineitem);
        let b = TpchGen::new(0.001, 7).table(TableId::Lineitem);
        assert_eq!(a, b);
        let c = TpchGen::new(0.001, 8).table(TableId::Lineitem);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn row_counts_scale() {
        let g = TpchGen::new(0.01, 1);
        assert_eq!(g.rows(TableId::Lineitem), 60_000);
        assert_eq!(g.rows(TableId::Orders), 15_000);
        assert_eq!(g.rows(TableId::Nation), 25, "dimensions don't scale");
    }

    #[test]
    fn lineitem_value_domains() {
        let t = TpchGen::new(0.001, 3).table(TableId::Lineitem);
        for row in t.iter() {
            assert!((1..=50).contains(&row[lc::QUANTITY as usize]));
            assert!(row[lc::DISCOUNT as usize] <= 10);
            assert!(row[lc::SHIPDATE as usize] < DATE_DAYS);
            assert!(row[lc::RETURNFLAG as usize] < 3);
        }
    }

    #[test]
    fn foreign_keys_resolve() {
        let g = TpchGen::new(0.001, 3);
        let li = g.table(TableId::Lineitem);
        let orders = g.rows(TableId::Orders) as u32;
        for row in li.iter() {
            assert!((1..=orders).contains(&row[0]), "orderkey fk");
        }
    }

    #[test]
    fn shipdate_selectivity_is_uniform() {
        // A one-year shipdate window should select ~1/7 of lineitem.
        let t = TpchGen::new(0.01, 5).table(TableId::Lineitem);
        let year = 365.0;
        let hits = t
            .iter()
            .filter(|r| (365..365 + 365).contains(&r[lc::SHIPDATE as usize]))
            .count() as f64;
        let frac = hits / t.rows() as f64;
        assert!((frac - year / DATE_DAYS as f64).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sf_rejected() {
        let _ = TpchGen::new(0.0, 1);
    }
}
