//! Table representation and schemas.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The eight TPC-H tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TableId {
    /// Order line items (the big one; 6M rows/SF).
    Lineitem,
    /// Orders (1.5M rows/SF).
    Orders,
    /// Customers (150K rows/SF).
    Customer,
    /// Parts (200K rows/SF).
    Part,
    /// Suppliers (10K rows/SF).
    Supplier,
    /// Part-supplier links (800K rows/SF).
    Partsupp,
    /// Nations (25 rows).
    Nation,
    /// Regions (5 rows).
    Region,
}

impl TableId {
    /// All tables.
    pub const ALL: [TableId; 8] = [
        TableId::Lineitem,
        TableId::Orders,
        TableId::Customer,
        TableId::Part,
        TableId::Supplier,
        TableId::Partsupp,
        TableId::Nation,
        TableId::Region,
    ];

    /// Column names, in storage order.
    pub fn columns(self) -> &'static [&'static str] {
        match self {
            TableId::Lineitem => &[
                "orderkey",
                "partkey",
                "suppkey",
                "linenumber",
                "quantity",
                "extendedprice",
                "discount",
                "tax",
                "returnflag",
                "linestatus",
                "shipdate",
                "receiptdate",
            ],
            TableId::Orders => &[
                "orderkey",
                "custkey",
                "orderstatus",
                "totalprice",
                "orderdate",
                "orderpriority",
                "shippriority",
                "clerk",
            ],
            TableId::Customer => &["custkey", "nationkey", "acctbal", "mktsegment"],
            TableId::Part => &[
                "partkey",
                "brand",
                "type",
                "size",
                "container",
                "retailprice",
            ],
            TableId::Supplier => &["suppkey", "nationkey", "acctbal", "pad"],
            TableId::Partsupp => &["partkey", "suppkey", "availqty", "supplycost"],
            TableId::Nation => &["nationkey", "regionkey", "pad0", "pad1"],
            TableId::Region => &["regionkey", "pad0", "pad1", "pad2"],
        }
    }

    /// Base row count at scale factor 1.0.
    pub fn base_rows(self) -> u64 {
        match self {
            TableId::Lineitem => 6_000_000,
            TableId::Orders => 1_500_000,
            TableId::Customer => 150_000,
            TableId::Part => 200_000,
            TableId::Supplier => 10_000,
            TableId::Partsupp => 800_000,
            TableId::Nation => 25,
            TableId::Region => 5,
        }
    }

    /// Fields per row.
    pub fn width(self) -> usize {
        self.columns().len()
    }

    /// Column index by name.
    ///
    /// # Panics
    ///
    /// Panics if the column does not exist (a harness bug).
    pub fn col(self, name: &str) -> u32 {
        self.columns()
            .iter()
            .position(|&c| c == name)
            .unwrap_or_else(|| panic!("{self:?} has no column {name}")) as u32
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TableId::Lineitem => "lineitem",
            TableId::Orders => "orders",
            TableId::Customer => "customer",
            TableId::Part => "part",
            TableId::Supplier => "supplier",
            TableId::Partsupp => "partsupp",
            TableId::Nation => "nation",
            TableId::Region => "region",
        };
        f.write_str(name)
    }
}

/// Frequently-used lineitem column indices.
pub mod lineitem_cols {
    /// `l_quantity`.
    pub const QUANTITY: u32 = 4;
    /// `l_extendedprice`.
    pub const EXTENDEDPRICE: u32 = 5;
    /// `l_discount`.
    pub const DISCOUNT: u32 = 6;
    /// `l_returnflag`.
    pub const RETURNFLAG: u32 = 8;
    /// `l_linestatus`.
    pub const LINESTATUS: u32 = 9;
    /// `l_shipdate` (days since 1992-01-01).
    pub const SHIPDATE: u32 = 10;
}

/// A row-major table of `u32` fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    id: TableId,
    width: usize,
    data: Vec<u32>,
}

impl Table {
    /// Wraps generated row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a whole number of rows.
    pub fn new(id: TableId, data: Vec<u32>) -> Self {
        let width = id.width();
        assert_eq!(data.len() % width, 0, "partial row");
        Table { id, width, data }
    }

    /// Which table this is.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Fields per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.len() / self.width
    }

    /// Bytes per row in binary form.
    pub fn row_bytes(&self) -> usize {
        self.width * 4
    }

    /// One row as a slice of fields.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Iterates over rows.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.data.chunks_exact(self.width)
    }

    /// The raw row-major field buffer.
    pub fn raw(&self) -> &[u32] {
        &self.data
    }

    /// Serializes to the binary fixed-width little-endian form the Filter
    /// and Select kernels consume.
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 4);
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Serializes to `dbgen`-style `|`-delimited ASCII (one line per row),
    /// the form the Parse and PSF kernels consume.
    pub fn to_csv(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 6);
        for row in self.iter() {
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    out.push(b'|');
                }
                out.extend_from_slice(itoa(*v).as_bytes());
            }
            out.push(b'\n');
        }
        out
    }

    /// Parses the binary form back (inverse of [`Table::to_binary`]).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a whole number of rows.
    pub fn from_binary(id: TableId, bytes: &[u8]) -> Table {
        assert_eq!(bytes.len() % (id.width() * 4), 0, "partial row");
        let data = bytes
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
            .collect();
        Table::new(id, data)
    }
}

fn itoa(v: u32) -> String {
    v.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_consistency() {
        for t in TableId::ALL {
            assert_eq!(t.width(), t.columns().len());
            assert!(t.base_rows() > 0);
        }
        assert_eq!(TableId::Lineitem.width(), 12);
        assert_eq!(TableId::Lineitem.col("shipdate"), lineitem_cols::SHIPDATE);
    }

    #[test]
    fn binary_roundtrip() {
        let t = Table::new(TableId::Region, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(t.rows(), 2);
        let b = t.to_binary();
        assert_eq!(Table::from_binary(TableId::Region, &b), t);
    }

    #[test]
    fn csv_form_matches_dbgen_flavor() {
        let t = Table::new(TableId::Region, vec![10, 0, 7, 42]);
        assert_eq!(t.to_csv(), b"10|0|7|42\n");
    }

    #[test]
    #[should_panic(expected = "partial row")]
    fn partial_rows_rejected() {
        let _ = Table::new(TableId::Region, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn unknown_column_panics() {
        let _ = TableId::Orders.col("nope");
    }
}
