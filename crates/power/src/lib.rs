//! Power, area and clock-timing models (Sections VI-F and VI-G).
//!
//! The paper evaluates logic with Synopsys Design Compiler on the SAED
//! 14 nm library and memories with Cacti. This crate substitutes both:
//! logic blocks carry calibrated 14 nm constants; memories use the
//! analytical SRAM model in [`assasin_mem::sram`]. Together they
//! regenerate:
//!
//! * **Figure 20** — access-time curves for streambuffers vs scratchpads
//!   ([`timing::fig20_series`]);
//! * **Table V** — per-component power and area
//!   ([`components::engine_budget`]);
//! * **Figure 22** — power/area efficiency relative to Baseline
//!   ([`efficiency::Efficiency`]).

pub mod components;
pub mod efficiency;
pub mod timing;
