//! Memory-structure access-time curves (Figure 20) and the clock
//! consequences (Section VI-F).

use assasin_mem::sram;

/// One point of the Figure 20 chart.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingPoint {
    /// Structure label (as in the figure legend).
    pub label: String,
    /// Port width in bytes.
    pub width_bytes: u32,
    /// Access time in nanoseconds.
    pub access_ns: f64,
    /// Cycles at a 1 GHz core clock.
    pub cycles_at_1ghz: u32,
}

/// The streambuffer head-FIFO size used by the implementation.
pub const SB_FIFO_BYTES: u32 = 256;

/// Generates the Figure 20 series: the streambuffer at widths 1–64 B and
/// scratchpads of 8–64 KiB at narrow (8 B) and SIMD (64 B) widths.
pub fn fig20_series() -> Vec<TimingPoint> {
    let mut points = Vec::new();
    for width in [1u32, 8, 64] {
        let ns = sram::fifo_access_ns(width, SB_FIFO_BYTES);
        points.push(TimingPoint {
            label: format!("SB head ({width}B)"),
            width_bytes: width,
            access_ns: ns,
            cycles_at_1ghz: sram::access_cycles(ns, 1.0),
        });
    }
    for kb in [8u32, 16, 32, 64] {
        for width in [8u32, 64] {
            let ns = sram::ram_access_ns(kb as f64, width, 1);
            points.push(TimingPoint {
                label: format!("SP {kb}KB ({width}B)"),
                width_bytes: width,
                access_ns: ns,
                cycles_at_1ghz: sram::access_cycles(ns, 1.0),
            });
        }
    }
    points
}

/// The clock-period consequence of Section VI-F: with the streambuffer
/// replacing the dcache in the MEM stage, the critical path moves to IF and
/// the period drops 11% (1 ns -> 0.89 ns); scratchpad-based designs keep
/// the 1 ns clock but pay 2-cycle scratchpad accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockPlan {
    /// Clock period in picoseconds.
    pub period_ps: u64,
    /// Scratchpad access latency in cycles.
    pub scratchpad_cycles: u32,
}

/// The adjusted clock plan for each memory architecture.
pub fn clock_plan(streambuffer: bool) -> ClockPlan {
    if streambuffer {
        ClockPlan {
            period_ps: 890,
            scratchpad_cycles: 2,
        }
    } else {
        ClockPlan {
            period_ps: 1000,
            scratchpad_cycles: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig20_shape_matches_the_paper() {
        let pts = fig20_series();
        let sb64 = pts
            .iter()
            .find(|p| p.label == "SB head (64B)")
            .expect("series contains the 64B streambuffer point");
        assert!(sb64.access_ns <= 0.55, "SB 64B at {} ns", sb64.access_ns);
        assert_eq!(sb64.cycles_at_1ghz, 1);

        let sp64_8 = pts
            .iter()
            .find(|p| p.label == "SP 64KB (8B)")
            .expect("series contains the 64KB/8B scratchpad point");
        assert_eq!(sp64_8.cycles_at_1ghz, 2, "64KB SP needs 2 cycles");

        // Monotone in size and width.
        let sp8 = pts.iter().find(|p| p.label == "SP 8KB (8B)").unwrap();
        assert!(sp8.access_ns < sp64_8.access_ns);
        let sp64_wide = pts.iter().find(|p| p.label == "SP 64KB (64B)").unwrap();
        assert!(sp64_wide.access_ns > sp64_8.access_ns);
    }

    #[test]
    fn clock_plans() {
        assert_eq!(clock_plan(true).period_ps, 890);
        assert_eq!(clock_plan(false).period_ps, 1000);
    }
}
