//! Per-component and per-engine power/area budgets (Table V).

use assasin_core::EngineKind;
use assasin_mem::sram;

/// One hardware block's budget.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Block name as it appears in Table V.
    pub name: &'static str,
    /// Power in milliwatts at 1 GHz, 14 nm.
    pub power_mw: f64,
    /// Silicon area in mm² at 14 nm.
    pub area_mm2: f64,
}

/// Activity assumptions (accesses per nanosecond at 1 GHz) used for the
/// dynamic-power terms. Derived from the measured instruction mixes:
/// instruction fetch every cycle, data access roughly every third
/// instruction, L2 filtered by the L1, scratchpad hot in ASSASIN kernels,
/// streambuffer head touched about every fourth cycle.
mod activity {
    pub const IFETCH: f64 = 1.0;
    pub const L1D: f64 = 0.33;
    pub const L2: f64 = 0.05;
    pub const SCRATCHPAD: f64 = 0.5;
    pub const STREAM_HEAD: f64 = 0.25;
}

/// The in-order scalar core's logic (ibex-class, 14 nm).
pub fn core_logic() -> Component {
    Component {
        name: "RISC-V core logic",
        power_mw: 4.0,
        area_mm2: 0.015,
    }
}

/// 32 KiB instruction cache.
pub fn l1i() -> Component {
    Component {
        name: "32KB L1I",
        power_mw: sram::sram_power_mw(32.0, 4, activity::IFETCH),
        area_mm2: sram::sram_area_mm2(32.0, true),
    }
}

/// 32 KiB 8-way data cache.
pub fn l1d() -> Component {
    Component {
        name: "32KB 8W L1D",
        power_mw: sram::sram_power_mw(32.0, 8, activity::L1D),
        area_mm2: sram::sram_area_mm2(32.0, true),
    }
}

/// 256 KiB 16-way L2.
pub fn l2() -> Component {
    Component {
        name: "256KB 16W L2",
        power_mw: sram::sram_power_mw(256.0, 8, activity::L2),
        area_mm2: sram::sram_area_mm2(256.0, true),
    }
}

/// 64 KiB function-state scratchpad.
pub fn scratchpad64k() -> Component {
    Component {
        name: "64KB scratchpad",
        power_mw: sram::sram_power_mw(64.0, 8, activity::SCRATCHPAD),
        area_mm2: sram::sram_area_mm2(64.0, false),
    }
}

/// One 64 KiB streambuffer (input or output): page ring plus prefetched
/// head FIFO. The ring is accessed in coarse 128 B chunks, so its dynamic
/// activity is low; the hot head FIFO is tiny.
pub fn streambuffer64k() -> Component {
    let ring = sram::sram_leakage_mw(64.0)
        + sram::sram_dynamic_mw(64.0, 128, activity::STREAM_HEAD / 32.0);
    let fifo = sram::sram_power_mw(0.25, 8, activity::STREAM_HEAD);
    Component {
        name: "64KB streambuffer",
        power_mw: ring + fifo,
        area_mm2: sram::sram_area_mm2(64.0, false) + sram::sram_area_mm2(0.25, false),
    }
}

/// UDP lane logic (multiway dispatch pipeline).
pub fn udp_lane_logic() -> Component {
    Component {
        name: "UDP lane logic",
        power_mw: 5.0,
        area_mm2: 0.030,
    }
}

/// UDP's 256 KiB lane scratchpad.
pub fn udp_scratchpad() -> Component {
    Component {
        name: "256KB UDP scratchpad",
        power_mw: sram::sram_power_mw(256.0, 8, activity::SCRATCHPAD),
        area_mm2: sram::sram_area_mm2(256.0, false),
    }
}

/// All components of one compute engine of the given kind (Table IV
/// memory architectures).
pub fn engine_components(kind: EngineKind) -> Vec<Component> {
    match kind {
        EngineKind::Baseline | EngineKind::Prefetch => {
            vec![core_logic(), l1i(), l1d(), l2()]
        }
        EngineKind::AssasinSp => vec![
            core_logic(),
            l1i(),
            scratchpad64k(),
            // Two staging scratchpads (ping + pong per direction share
            // the same macros as the streambuffer capacity-wise).
            Component {
                name: "64KB in staging",
                ..scratchpad64k()
            },
            Component {
                name: "64KB out staging",
                ..scratchpad64k()
            },
        ],
        EngineKind::AssasinSb => vec![
            core_logic(),
            l1i(),
            scratchpad64k(),
            Component {
                name: "64KB in streambuffer",
                ..streambuffer64k()
            },
            Component {
                name: "64KB out streambuffer",
                ..streambuffer64k()
            },
        ],
        EngineKind::AssasinSbCache => {
            let mut v = engine_components(EngineKind::AssasinSb);
            v.push(l1d());
            v
        }
        EngineKind::Udp => vec![udp_lane_logic(), udp_scratchpad()],
    }
}

/// Total (power mW, area mm²) of one engine.
pub fn engine_budget(kind: EngineKind) -> (f64, f64) {
    engine_components(kind)
        .iter()
        .fold((0.0, 0.0), |(p, a), c| (p + c.power_mw, a + c.area_mm2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_is_same_order_as_core_logic() {
        // Section VI-G: "a L1 cache or similar-size SRAM are at the same
        // order of magnitude with the compute logic of a core".
        let core = core_logic();
        let l1 = l1d();
        assert!(l1.power_mw > core.power_mw * 0.3 && l1.power_mw < core.power_mw * 10.0);
        assert!(l1.area_mm2 > core.area_mm2 * 0.5 && l1.area_mm2 < core.area_mm2 * 10.0);
    }

    #[test]
    fn assasin_sb_is_smaller_and_cooler_than_baseline() {
        let (pb, ab) = engine_budget(EngineKind::Baseline);
        let (ps, as_) = engine_budget(EngineKind::AssasinSb);
        assert!(ps < pb, "power {ps} vs {pb}");
        assert!(as_ < ab, "area {as_} vs {ab}");
        // Dropping the L2 (the largest SRAM) dominates the saving.
        assert!(ab / as_ > 1.5, "area ratio {}", ab / as_);
    }

    #[test]
    fn sb_cache_adds_an_l1d() {
        let (p, a) = engine_budget(EngineKind::AssasinSbCache);
        let (pb, ab) = engine_budget(EngineKind::AssasinSb);
        assert!(p > pb && a > ab);
    }

    #[test]
    fn eight_engines_fit_an_ssd_power_budget() {
        // Sanity: 8 engines of any kind stay well under the ~5 W device
        // budget the paper cites for SSDs.
        for kind in EngineKind::ALL {
            let (p, _) = engine_budget(kind);
            assert!(8.0 * p < 1000.0, "{kind:?}: {p} mW/engine");
        }
    }
}
