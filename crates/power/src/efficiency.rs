//! Relative power/area efficiency (Figure 22).

use crate::components::engine_budget;
use assasin_core::EngineKind;

/// One engine's Figure 22 entry: speedup and efficiency relative to
/// Baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiency {
    /// Which engine.
    pub kind: EngineKind,
    /// Measured speedup over Baseline (from the performance experiments).
    pub speedup: f64,
    /// Speedup per unit power, relative to Baseline.
    pub power_efficiency: f64,
    /// Speedup per unit area, relative to Baseline.
    pub area_efficiency: f64,
}

/// Computes Figure 22 for a set of measured speedups. `speedups` holds
/// `(engine, speedup-over-baseline)` pairs, which the benchmark harness
/// derives from the Figure 21 throughput runs.
pub fn figure22(speedups: &[(EngineKind, f64)]) -> Vec<Efficiency> {
    let (base_p, base_a) = engine_budget(EngineKind::Baseline);
    speedups
        .iter()
        .map(|&(kind, speedup)| {
            let (p, a) = engine_budget(kind);
            Efficiency {
                kind,
                speedup,
                power_efficiency: speedup * (base_p / p),
                area_efficiency: speedup * (base_a / a),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_the_unit() {
        let e = figure22(&[(EngineKind::Baseline, 1.0)]);
        assert!((e[0].power_efficiency - 1.0).abs() < 1e-12);
        assert!((e[0].area_efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_bands_with_the_paper_speedup() {
        // With the paper's ~1.9x adjusted AssasinSb speedup, the budgets
        // must land near 2.0x power and 3.2x area efficiency.
        let e = figure22(&[(EngineKind::AssasinSb, 1.9)]);
        let sb = &e[0];
        assert!(
            (1.6..=2.6).contains(&sb.power_efficiency),
            "power efficiency {}",
            sb.power_efficiency
        );
        assert!(
            (2.5..=4.2).contains(&sb.area_efficiency),
            "area efficiency {}",
            sb.area_efficiency
        );
    }

    #[test]
    fn efficiency_scales_with_speedup() {
        let lo = figure22(&[(EngineKind::AssasinSb, 1.0)])[0].power_efficiency;
        let hi = figure22(&[(EngineKind::AssasinSb, 2.0)])[0].power_efficiency;
        assert!((hi / lo - 2.0).abs() < 1e-12);
    }
}
