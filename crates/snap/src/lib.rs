//! Versioned binary snapshot encoding shared by every simulated layer.
//!
//! The format is deliberately dumb: fixed-width little-endian primitives,
//! length-prefixed byte strings, and one-byte section tags so a decoder that
//! drifts out of sync fails fast with a typed error instead of reading
//! garbage. Each layer owns its own `save_state`/`restore_state` pair built
//! on [`Encoder`]/[`Decoder`]; the SSD-level container adds the magic,
//! version and config fingerprint (see DESIGN.md §14).

use std::fmt;

/// Typed decode failure. Snapshots come from disk or another process, so
/// every malformation must surface as an error, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before the decoder finished.
    UnexpectedEof { at: usize, need: usize },
    /// The leading magic bytes are not a snapshot's.
    BadMagic { found: u32 },
    /// The snapshot was written by an incompatible format version.
    BadVersion { found: u16, expected: u16 },
    /// A section tag did not match the expected layer boundary.
    BadTag { found: u8, expected: u8, at: usize },
    /// Bytes remained after the last field decoded.
    TrailingBytes { extra: usize },
    /// The snapshot was taken under a different device configuration.
    ConfigMismatch { found: String, expected: String },
    /// A structurally valid field carried an impossible value.
    Malformed(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::UnexpectedEof { at, need } => {
                write!(f, "snapshot truncated at byte {at} (needed {need} more)")
            }
            SnapError::BadMagic { found } => {
                write!(f, "not a snapshot (magic {found:#010x})")
            }
            SnapError::BadVersion { found, expected } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (expected {expected})"
                )
            }
            SnapError::BadTag {
                found,
                expected,
                at,
            } => {
                write!(
                    f,
                    "section tag {found:#04x} at byte {at} where {expected:#04x} expected"
                )
            }
            SnapError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after snapshot end")
            }
            SnapError::ConfigMismatch { found, expected } => {
                write!(
                    f,
                    "snapshot config mismatch: snapshot was taken under {found:?}, \
                     restore requested {expected:?}"
                )
            }
            SnapError::Malformed(what) => write!(f, "malformed snapshot field: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only little-endian writer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub fn new() -> Self {
        Encoder::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// f64 round-trips bit-exactly (the fault model depends on it).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// usize narrowed through u64 so 32- and 64-bit targets agree on bytes.
    pub fn len_of(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.len_of(v.len());
        self.buf.extend_from_slice(v);
    }

    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// One-byte section boundary marker.
    pub fn tag(&mut self, t: u8) {
        self.u8(t);
    }
}

/// Cursor-based reader mirroring [`Encoder`]; every read is bounds-checked.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::UnexpectedEof {
                at: self.pos,
                need: n - self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::Malformed(format!("bool byte {b:#04x}"))),
        }
    }

    /// Reads a length written by [`Encoder::len_of`], bounded by the bytes
    /// that could possibly remain so a corrupted length cannot trigger a
    /// huge allocation.
    pub fn len_of(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        if v > self.remaining() as u64 * 8 + 64 {
            return Err(SnapError::Malformed(format!("implausible length {v}")));
        }
        Ok(v as usize)
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.len_of()?;
        self.take(n)
    }

    pub fn str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| SnapError::Malformed("non-UTF-8 string".into()))
    }

    pub fn expect_tag(&mut self, expected: u8) -> Result<(), SnapError> {
        let at = self.pos;
        let found = self.u8()?;
        if found != expected {
            return Err(SnapError::BadTag {
                found,
                expected,
                at,
            });
        }
        Ok(())
    }

    /// Fails if any bytes remain; every complete decode must end here.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u16(0xBEEF);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.i64(-42);
        e.f64(std::f64::consts::PI);
        e.bool(true);
        e.bytes(b"abc");
        e.str("snapshot");
        e.tag(0x5A);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 0xBEEF);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap(), std::f64::consts::PI);
        assert!(d.bool().unwrap());
        assert_eq!(d.bytes().unwrap(), b"abc");
        assert_eq!(d.str().unwrap(), "snapshot");
        d.expect_tag(0x5A).unwrap();
        d.finish().unwrap();
    }

    #[test]
    fn truncation_is_typed_eof() {
        let mut e = Encoder::new();
        e.u64(99);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..5]);
        assert!(matches!(
            d.u64(),
            Err(SnapError::UnexpectedEof { at: 0, need: 3 })
        ));
    }

    #[test]
    fn wrong_tag_reports_position() {
        let mut e = Encoder::new();
        e.tag(1);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(
            d.expect_tag(2),
            Err(SnapError::BadTag {
                found: 1,
                expected: 2,
                at: 0
            })
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut e = Encoder::new();
        e.u8(1);
        e.u8(2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        d.u8().unwrap();
        assert_eq!(d.finish(), Err(SnapError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut e = Encoder::new();
        e.u64(u64::MAX);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.len_of(), Err(SnapError::Malformed(_))));
    }
}
