//! Programmatic assembler with label resolution.

use crate::instr::{AluOp, BranchCond};
use crate::{AsmError, Instr, Program, Reg};

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Builds [`Program`]s instruction by instruction.
///
/// Errors (immediates out of range, unbound labels, bad stream ids) are
/// collected and reported by [`Assembler::finish`], keeping the emitting
/// code linear — the same style compiler back-ends use.
///
/// ```
/// use assasin_isa::{Assembler, Reg};
/// let mut asm = Assembler::with_name("double");
/// asm.li(Reg::A1, 2);
/// asm.mul(Reg::A0, Reg::A0, Reg::A1);
/// asm.halt();
/// let p = asm.finish()?;
/// assert_eq!(p.len(), 3);
/// # Ok::<(), assasin_isa::AsmError>(())
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    name: String,
    instrs: Vec<Instr>,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, usize)>,
    error: Option<AsmError>,
}

const IMM12_MIN: i64 = -2048;
const IMM12_MAX: i64 = 2047;

impl Assembler {
    /// The architectural stream count (S = 8, Table IV).
    pub const MAX_STREAMS: u8 = 8;

    /// Creates an empty assembler.
    pub fn new() -> Self {
        Assembler::with_name("anonymous")
    }

    /// Creates an empty assembler for a named program.
    pub fn with_name(name: impl Into<String>) -> Self {
        Assembler {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Current instruction index (where the next emitted instruction goes).
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Allocates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        if self.labels[label.0].is_some() {
            self.record(AsmError::Rebound(label.0));
            return;
        }
        self.labels[label.0] = Some(self.here());
    }

    fn record(&mut self, e: AsmError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn emit(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    fn check_imm12(&mut self, v: i64) -> i32 {
        if !(IMM12_MIN..=IMM12_MAX).contains(&v) {
            self.record(AsmError::ImmOutOfRange { value: v, bits: 12 });
        }
        v as i32
    }

    fn check_shamt(&mut self, v: i64) -> i32 {
        if !(0..32).contains(&v) {
            self.record(AsmError::ImmOutOfRange { value: v, bits: 5 });
        }
        v as i32
    }

    fn check_sid(&mut self, sid: u8) -> u8 {
        if sid >= Self::MAX_STREAMS {
            self.record(AsmError::BadStreamId(sid));
        }
        sid
    }

    fn check_width(&mut self, w: u8) -> u8 {
        if !matches!(w, 1 | 2 | 4) {
            self.record(AsmError::BadWidth(w));
        }
        w
    }

    fn target_of(&mut self, label: Label) -> u32 {
        match self.labels[label.0] {
            Some(t) => t,
            None => {
                self.fixups.push((self.instrs.len(), label.0));
                0
            }
        }
    }

    // ------------------------------------------------------------- ALU r/r

    fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op, rd, rs1, rs2 });
    }

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Add, rd, rs1, rs2);
    }
    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Sub, rd, rs1, rs2);
    }
    /// `rd = rs1 << (rs2 & 31)`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Sll, rd, rs1, rs2);
    }
    /// `rd = (rs1 as i32) < (rs2 as i32)`
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Slt, rd, rs1, rs2);
    }
    /// `rd = rs1 < rs2` (unsigned)
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Sltu, rd, rs1, rs2);
    }
    /// `rd = rs1 ^ rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Xor, rd, rs1, rs2);
    }
    /// `rd = rs1 >> (rs2 & 31)` (logical)
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Srl, rd, rs1, rs2);
    }
    /// `rd = (rs1 as i32) >> (rs2 & 31)`
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Sra, rd, rs1, rs2);
    }
    /// `rd = rs1 | rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Or, rd, rs1, rs2);
    }
    /// `rd = rs1 & rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::And, rd, rs1, rs2);
    }
    /// `rd = (rs1 * rs2) as u32`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Mul, rd, rs1, rs2);
    }
    /// Signed upper 32 bits of the 64-bit product.
    pub fn mulh(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Mulh, rd, rs1, rs2);
    }
    /// Unsigned upper 32 bits of the 64-bit product.
    pub fn mulhu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Mulhu, rd, rs1, rs2);
    }
    /// Signed division (RISC-V semantics: div by zero yields all-ones).
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Div, rd, rs1, rs2);
    }
    /// Unsigned division.
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Divu, rd, rs1, rs2);
    }
    /// Signed remainder.
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Rem, rd, rs1, rs2);
    }
    /// Unsigned remainder.
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Remu, rd, rs1, rs2);
    }

    // ------------------------------------------------------------ ALU r/imm

    fn alu_imm(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) {
        let imm = self.check_imm12(imm);
        self.emit(Instr::AluImm { op, rd, rs1, imm });
    }

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Add, rd, rs1, imm);
    }
    /// `rd = (rs1 as i32) < imm`
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Slt, rd, rs1, imm);
    }
    /// `rd = rs1 < imm as u32`
    pub fn sltiu(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Sltu, rd, rs1, imm);
    }
    /// `rd = rs1 ^ imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Xor, rd, rs1, imm);
    }
    /// `rd = rs1 | imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::Or, rd, rs1, imm);
    }
    /// `rd = rs1 & imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu_imm(AluOp::And, rd, rs1, imm);
    }
    /// `rd = rs1 << shamt`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: i64) {
        let imm = self.check_shamt(shamt);
        self.emit(Instr::AluImm {
            op: AluOp::Sll,
            rd,
            rs1,
            imm,
        });
    }
    /// `rd = rs1 >> shamt` (logical)
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: i64) {
        let imm = self.check_shamt(shamt);
        self.emit(Instr::AluImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm,
        });
    }
    /// `rd = (rs1 as i32) >> shamt`
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: i64) {
        let imm = self.check_shamt(shamt);
        self.emit(Instr::AluImm {
            op: AluOp::Sra,
            rd,
            rs1,
            imm,
        });
    }
    /// `rd = imm << 12`
    pub fn lui(&mut self, rd: Reg, imm20: u32) {
        if imm20 > 0xF_FFFF {
            self.record(AsmError::ImmOutOfRange {
                value: imm20 as i64,
                bits: 20,
            });
        }
        self.emit(Instr::Lui { rd, imm: imm20 });
    }

    // ------------------------------------------------------------- pseudos

    /// Loads an arbitrary 32-bit constant (expands to `lui`+`addi` when it
    /// does not fit in 12 bits).
    pub fn li(&mut self, rd: Reg, value: i64) {
        let v = value as i32;
        if (IMM12_MIN..=IMM12_MAX).contains(&(v as i64)) {
            self.addi(rd, Reg::ZERO, v as i64);
            return;
        }
        // Standard RISC-V material: hi corrects for addi's sign extension.
        let hi = ((v as u32).wrapping_add(0x800)) >> 12;
        let lo = v.wrapping_sub((hi << 12) as i32);
        self.lui(rd, hi);
        if lo != 0 {
            self.addi(rd, rd, lo as i64);
        }
    }

    /// `rd = rs`
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// No-op.
    pub fn nop(&mut self) {
        self.addi(Reg::ZERO, Reg::ZERO, 0);
    }

    /// Unconditional jump.
    pub fn j(&mut self, label: Label) {
        let target = self.target_of(label);
        self.emit(Instr::Jal {
            rd: Reg::ZERO,
            target,
        });
    }

    /// Branch if `rs == 0`.
    pub fn beqz(&mut self, rs: Reg, label: Label) {
        self.beq(rs, Reg::ZERO, label);
    }

    /// Branch if `rs != 0`.
    pub fn bnez(&mut self, rs: Reg, label: Label) {
        self.bne(rs, Reg::ZERO, label);
    }

    // ------------------------------------------------------------- memory

    /// Signed byte load.
    pub fn lb(&mut self, rd: Reg, base: Reg, offset: i64) {
        let offset = self.check_imm12(offset);
        self.emit(Instr::Load {
            width: 1,
            signed: true,
            rd,
            base,
            offset,
        });
    }
    /// Unsigned byte load.
    pub fn lbu(&mut self, rd: Reg, base: Reg, offset: i64) {
        let offset = self.check_imm12(offset);
        self.emit(Instr::Load {
            width: 1,
            signed: false,
            rd,
            base,
            offset,
        });
    }
    /// Signed halfword load.
    pub fn lh(&mut self, rd: Reg, base: Reg, offset: i64) {
        let offset = self.check_imm12(offset);
        self.emit(Instr::Load {
            width: 2,
            signed: true,
            rd,
            base,
            offset,
        });
    }
    /// Unsigned halfword load.
    pub fn lhu(&mut self, rd: Reg, base: Reg, offset: i64) {
        let offset = self.check_imm12(offset);
        self.emit(Instr::Load {
            width: 2,
            signed: false,
            rd,
            base,
            offset,
        });
    }
    /// Word load.
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i64) {
        let offset = self.check_imm12(offset);
        self.emit(Instr::Load {
            width: 4,
            signed: true,
            rd,
            base,
            offset,
        });
    }
    /// Byte store.
    pub fn sb(&mut self, rs: Reg, base: Reg, offset: i64) {
        let offset = self.check_imm12(offset);
        self.emit(Instr::Store {
            width: 1,
            rs,
            base,
            offset,
        });
    }
    /// Halfword store.
    pub fn sh(&mut self, rs: Reg, base: Reg, offset: i64) {
        let offset = self.check_imm12(offset);
        self.emit(Instr::Store {
            width: 2,
            rs,
            base,
            offset,
        });
    }
    /// Word store.
    pub fn sw(&mut self, rs: Reg, base: Reg, offset: i64) {
        let offset = self.check_imm12(offset);
        self.emit(Instr::Store {
            width: 4,
            rs,
            base,
            offset,
        });
    }

    // ------------------------------------------------------------ branches

    fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: Label) {
        let target = self.target_of(label);
        self.emit(Instr::Branch {
            cond,
            rs1,
            rs2,
            target,
        });
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchCond::Eq, rs1, rs2, label);
    }
    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchCond::Ne, rs1, rs2, label);
    }
    /// Branch if signed less-than.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchCond::Lt, rs1, rs2, label);
    }
    /// Branch if signed greater-or-equal.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchCond::Ge, rs1, rs2, label);
    }
    /// Branch if unsigned less-than.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchCond::Ltu, rs1, rs2, label);
    }
    /// Branch if unsigned greater-or-equal.
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(BranchCond::Geu, rs1, rs2, label);
    }

    /// Jump and link.
    pub fn jal(&mut self, rd: Reg, label: Label) {
        let target = self.target_of(label);
        self.emit(Instr::Jal { rd, target });
    }

    /// Indirect jump and link (`offset` in instructions).
    pub fn jalr(&mut self, rd: Reg, base: Reg, offset: i64) {
        let offset = self.check_imm12(offset);
        self.emit(Instr::Jalr { rd, base, offset });
    }

    /// Return through `ra`.
    pub fn ret(&mut self) {
        self.emit(Instr::Jalr {
            rd: Reg::ZERO,
            base: Reg::RA,
            offset: 0,
        });
    }

    // ------------------------------------------------------- stream & misc

    /// Stops the core.
    pub fn halt(&mut self) {
        self.emit(Instr::Halt);
    }

    /// `StreamLoad rd, sid, width` (Table III).
    pub fn stream_load(&mut self, rd: Reg, sid: u8, width: u8) {
        let sid = self.check_sid(sid);
        let width = self.check_width(width);
        self.emit(Instr::StreamLoad { rd, sid, width });
    }

    /// `StreamStore sid, width, rs` (Table III).
    pub fn stream_store(&mut self, sid: u8, width: u8, rs: Reg) {
        let sid = self.check_sid(sid);
        let width = self.check_width(width);
        self.emit(Instr::StreamStore { sid, width, rs });
    }

    /// Non-blocking available-bytes query.
    pub fn stream_avail(&mut self, rd: Reg, sid: u8) {
        let sid = self.check_sid(sid);
        self.emit(Instr::StreamAvail { rd, sid });
    }

    /// End-of-stream query.
    pub fn stream_eos(&mut self, rd: Reg, sid: u8) {
        let sid = self.check_sid(sid);
        self.emit(Instr::StreamEos { rd, sid });
    }

    /// Ping-pong staging-buffer swap (AssasinSp).
    pub fn buf_swap(&mut self, bank: u8) {
        self.emit(Instr::BufSwap { bank });
    }

    /// CSR read.
    pub fn csrr(&mut self, rd: Reg, csr: u16) {
        self.emit(Instr::CsrR { rd, csr });
    }

    // -------------------------------------------------------------- finish

    /// Resolves labels and returns the program.
    ///
    /// # Errors
    ///
    /// Reports the first recorded emission error, or the first label that
    /// was referenced but never bound.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        for (at, label) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label].ok_or(AsmError::UnboundLabel(label))?;
            match &mut self.instrs[at] {
                Instr::Branch { target: t, .. } | Instr::Jal { target: t, .. } => *t = target,
                other => unreachable!("fixup on non-branch {other}"),
            }
        }
        Ok(Program::from_instrs(self.name, self.instrs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Assembler::new();
        let fwd = asm.label();
        let back = asm.label();
        asm.bind(back);
        asm.addi(Reg::A0, Reg::A0, 1);
        asm.beq(Reg::A0, Reg::A1, fwd);
        asm.j(back);
        asm.bind(fwd);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(
            p.fetch(1),
            Some(Instr::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::A0,
                rs2: Reg::A1,
                target: 3,
            })
        );
        assert_eq!(
            p.fetch(2),
            Some(Instr::Jal {
                rd: Reg::ZERO,
                target: 0
            })
        );
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut asm = Assembler::new();
        let l = asm.label();
        asm.j(l);
        assert_eq!(asm.finish().unwrap_err(), AsmError::UnboundLabel(0));
    }

    #[test]
    fn rebound_label_is_an_error() {
        let mut asm = Assembler::new();
        let l = asm.label();
        asm.bind(l);
        asm.bind(l);
        assert_eq!(asm.finish().unwrap_err(), AsmError::Rebound(0));
    }

    #[test]
    fn imm_range_enforced() {
        let mut asm = Assembler::new();
        asm.addi(Reg::A0, Reg::A0, 4096);
        assert!(matches!(
            asm.finish().unwrap_err(),
            AsmError::ImmOutOfRange { bits: 12, .. }
        ));
    }

    #[test]
    fn li_expands_large_constants() {
        for &v in &[
            0i64,
            1,
            -1,
            2047,
            -2048,
            2048,
            0x1234_5678,
            -0x7654_3210,
            u32::MAX as i64,
        ] {
            let mut asm = Assembler::new();
            asm.li(Reg::A0, v);
            let p = asm.finish().unwrap();
            // Emulate the instruction sequence.
            let mut reg = 0u32;
            for i in p.iter() {
                match *i {
                    Instr::Lui { imm, .. } => reg = imm << 12,
                    Instr::AluImm { imm, .. } => reg = reg.wrapping_add(imm as u32),
                    other => panic!("unexpected {other}"),
                }
            }
            assert_eq!(reg, v as u32, "li {v}");
        }
    }

    #[test]
    fn stream_validation() {
        let mut asm = Assembler::new();
        asm.stream_load(Reg::A0, 9, 4);
        assert_eq!(asm.finish().unwrap_err(), AsmError::BadStreamId(9));

        let mut asm = Assembler::new();
        asm.stream_store(0, 3, Reg::A0);
        assert_eq!(asm.finish().unwrap_err(), AsmError::BadWidth(3));
    }

    #[test]
    fn shift_amount_enforced() {
        let mut asm = Assembler::new();
        asm.slli(Reg::A0, Reg::A0, 32);
        assert!(matches!(
            asm.finish().unwrap_err(),
            AsmError::ImmOutOfRange { bits: 5, .. }
        ));
    }
}
