//! Assembled programs.

use crate::Instr;
use std::fmt;
use std::sync::Arc;

/// An assembled, label-resolved instruction sequence. Execution starts at
/// instruction index 0. Programs are immutable and cheaply shareable across
/// the (up to 16) cores that run the same offloaded function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instrs: Arc<Vec<Instr>>,
    name: String,
}

impl Program {
    /// Wraps a resolved instruction sequence. Prefer
    /// [`Assembler::finish`](crate::Assembler::finish), which validates
    /// label resolution.
    pub fn from_instrs(name: impl Into<String>, instrs: Vec<Instr>) -> Self {
        Program {
            instrs: Arc::new(instrs),
            name: name.into(),
        }
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn fetch(&self, pc: u32) -> Option<Instr> {
        self.instrs.get(pc as usize).copied()
    }

    /// The whole resolved instruction sequence. Interpreters predecode
    /// from this slice once instead of `fetch`ing per step.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The program's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Iterates over instructions.
    pub fn iter(&self) -> impl Iterator<Item = &Instr> {
        self.instrs.iter()
    }

    /// Static code size in bytes (4 bytes per instruction).
    pub fn code_bytes(&self) -> usize {
        self.instrs.len() * 4
    }

    /// A stable 64-bit content fingerprint of the instruction sequence
    /// (FNV-1a over the instructions' `Hash` feed). Names are excluded:
    /// two programs with identical code share a fingerprint, which is what
    /// predecode caching and lane grouping key on. Collisions are guarded
    /// by full instruction comparison at the use sites.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hash;
        let mut h = Fnv1a(0xcbf2_9ce4_8422_2325);
        self.instrs.hash(&mut h);
        h.0
    }
}

/// FNV-1a, the repo-wide stable hash (same constants as the golden report
/// hashes) — `DefaultHasher` makes no cross-version stability promise.
struct Fnv1a(u64);

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

impl fmt::Display for Program {
    /// Disassembly listing.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; {} ({} instructions)", self.name, self.len())?;
        for (i, instr) in self.instrs.iter().enumerate() {
            writeln!(f, "{i:6}: {instr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Reg};

    #[test]
    fn fetch_and_metadata() {
        let p = Program::from_instrs(
            "demo",
            vec![
                Instr::Halt,
                Instr::Alu {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::A0,
                    rs2: Reg::A1,
                },
            ],
        );
        assert_eq!(p.len(), 2);
        assert_eq!(p.code_bytes(), 8);
        assert_eq!(p.fetch(0), Some(Instr::Halt));
        assert_eq!(p.fetch(2), None);
        assert!(!p.is_empty());
    }

    #[test]
    fn fingerprint_tracks_code_not_name() {
        let code = vec![
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A0,
                rs2: Reg::A1,
            },
            Instr::Halt,
        ];
        let a = Program::from_instrs("a", code.clone());
        let b = Program::from_instrs("b", code);
        assert_eq!(a.fingerprint(), b.fingerprint(), "names are excluded");
        let c = Program::from_instrs("a", vec![Instr::Halt]);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn display_lists_instructions() {
        let p = Program::from_instrs("demo", vec![Instr::Halt]);
        let text = p.to_string();
        assert!(text.contains("; demo"));
        assert!(text.contains("0: halt"));
    }
}
