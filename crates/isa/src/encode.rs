//! Binary encoding of the ASSASIN ISA.
//!
//! A compact fixed 32-bit format (Table III shows the paper's extension
//! also fits the 32-bit instruction word). The encoding here is our own —
//! the reproduction does not need binary compatibility with RV32 — but it
//! proves the ISA (including the stream extension) fits 32-bit words, and
//! the round-trip property is exercised by tests and used to measure code
//! size. Branch/jump targets are instruction indices and are limited to 14
//! bits (branches) / 22 bits (jumps); kernels are far smaller.

use crate::instr::{AluOp, BranchCond};
use crate::{AsmError, DecodeError, Instr, Reg};

const OP_ALU: u32 = 0;
const OP_ALUI: u32 = 1;
const OP_LUI: u32 = 2;
const OP_LOAD: u32 = 3;
const OP_STORE: u32 = 4;
const OP_BRANCH: u32 = 5;
const OP_JAL: u32 = 6;
const OP_JALR: u32 = 7;
const OP_HALT: u32 = 8;
const OP_SLOAD: u32 = 9;
const OP_SSTORE: u32 = 10;
const OP_SAVAIL: u32 = 11;
const OP_SEOS: u32 = 12;
const OP_BUFSWAP: u32 = 13;
const OP_CSRR: u32 = 14;

fn alu_code(op: AluOp) -> u32 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Sll => 2,
        AluOp::Slt => 3,
        AluOp::Sltu => 4,
        AluOp::Xor => 5,
        AluOp::Srl => 6,
        AluOp::Sra => 7,
        AluOp::Or => 8,
        AluOp::And => 9,
        AluOp::Mul => 10,
        AluOp::Mulh => 11,
        AluOp::Mulhu => 12,
        AluOp::Div => 13,
        AluOp::Divu => 14,
        AluOp::Rem => 15,
        AluOp::Remu => 16,
    }
}

fn alu_from(code: u32) -> Option<AluOp> {
    Some(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Sll,
        3 => AluOp::Slt,
        4 => AluOp::Sltu,
        5 => AluOp::Xor,
        6 => AluOp::Srl,
        7 => AluOp::Sra,
        8 => AluOp::Or,
        9 => AluOp::And,
        10 => AluOp::Mul,
        11 => AluOp::Mulh,
        12 => AluOp::Mulhu,
        13 => AluOp::Div,
        14 => AluOp::Divu,
        15 => AluOp::Rem,
        16 => AluOp::Remu,
        _ => return None,
    })
}

fn cond_code(c: BranchCond) -> u32 {
    match c {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
        BranchCond::Ltu => 4,
        BranchCond::Geu => 5,
    }
}

fn cond_from(code: u32) -> Option<BranchCond> {
    Some(match code {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        4 => BranchCond::Ltu,
        5 => BranchCond::Geu,
        _ => return None,
    })
}

fn width_code(w: u8) -> u32 {
    match w {
        1 => 0,
        2 => 1,
        _ => 2,
    }
}

fn width_from(code: u32) -> u8 {
    match code {
        0 => 1,
        1 => 2,
        _ => 4,
    }
}

fn imm12(v: i32) -> Result<u32, AsmError> {
    if !(-2048..=2047).contains(&v) {
        return Err(AsmError::ImmOutOfRange {
            value: v as i64,
            bits: 12,
        });
    }
    Ok((v as u32) & 0xFFF)
}

fn sext12(v: u32) -> i32 {
    ((v << 20) as i32) >> 20
}

/// Encodes one instruction into a 32-bit word.
///
/// # Errors
///
/// Fails when an immediate or branch target exceeds its field width.
pub fn encode(i: Instr) -> Result<u32, AsmError> {
    let r = |r: Reg| r.index() as u32;
    Ok(match i {
        Instr::Alu { op, rd, rs1, rs2 } => {
            OP_ALU | alu_code(op) << 5 | r(rd) << 10 | r(rs1) << 15 | r(rs2) << 20
        }
        Instr::AluImm { op, rd, rs1, imm } => {
            OP_ALUI | alu_code(op) << 5 | r(rd) << 10 | r(rs1) << 15 | imm12(imm)? << 20
        }
        Instr::Lui { rd, imm } => {
            if imm > 0xF_FFFF {
                return Err(AsmError::ImmOutOfRange {
                    value: imm as i64,
                    bits: 20,
                });
            }
            OP_LUI | r(rd) << 5 | imm << 10
        }
        Instr::Load {
            width,
            signed,
            rd,
            base,
            offset,
        } => {
            OP_LOAD
                | width_code(width) << 5
                | (signed as u32) << 7
                | r(rd) << 8
                | r(base) << 13
                | imm12(offset)? << 18
        }
        Instr::Store {
            width,
            rs,
            base,
            offset,
        } => OP_STORE | width_code(width) << 5 | r(rs) << 7 | r(base) << 12 | imm12(offset)? << 17,
        Instr::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            if target > 0x3FFF {
                return Err(AsmError::ImmOutOfRange {
                    value: target as i64,
                    bits: 14,
                });
            }
            OP_BRANCH | cond_code(cond) << 5 | r(rs1) << 8 | r(rs2) << 13 | target << 18
        }
        Instr::Jal { rd, target } => {
            if target > 0x3F_FFFF {
                return Err(AsmError::ImmOutOfRange {
                    value: target as i64,
                    bits: 22,
                });
            }
            OP_JAL | r(rd) << 5 | target << 10
        }
        Instr::Jalr { rd, base, offset } => {
            OP_JALR | r(rd) << 5 | r(base) << 10 | imm12(offset)? << 15
        }
        Instr::Halt => OP_HALT,
        Instr::StreamLoad { rd, sid, width } => {
            OP_SLOAD | r(rd) << 5 | (sid as u32) << 10 | width_code(width) << 13
        }
        Instr::StreamStore { sid, width, rs } => {
            OP_SSTORE | r(rs) << 5 | (sid as u32) << 10 | width_code(width) << 13
        }
        Instr::StreamAvail { rd, sid } => OP_SAVAIL | r(rd) << 5 | (sid as u32) << 10,
        Instr::StreamEos { rd, sid } => OP_SEOS | r(rd) << 5 | (sid as u32) << 10,
        Instr::BufSwap { bank } => OP_BUFSWAP | (bank as u32) << 5,
        Instr::CsrR { rd, csr } => OP_CSRR | r(rd) << 5 | (csr as u32) << 10,
    })
}

/// Decodes a 32-bit word back into an instruction.
///
/// # Errors
///
/// Fails on unknown opcodes or operation codes.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let err = DecodeError { word };
    let reg = |v: u32| Reg::new((v & 0x1F) as u8);
    Ok(match word & 0x1F {
        OP_ALU => Instr::Alu {
            op: alu_from(word >> 5 & 0x1F).ok_or(err)?,
            rd: reg(word >> 10),
            rs1: reg(word >> 15),
            rs2: reg(word >> 20),
        },
        OP_ALUI => Instr::AluImm {
            op: alu_from(word >> 5 & 0x1F).ok_or(err)?,
            rd: reg(word >> 10),
            rs1: reg(word >> 15),
            imm: sext12(word >> 20 & 0xFFF),
        },
        OP_LUI => Instr::Lui {
            rd: reg(word >> 5),
            imm: word >> 10 & 0xF_FFFF,
        },
        OP_LOAD => Instr::Load {
            width: width_from(word >> 5 & 0x3),
            signed: word >> 7 & 1 == 1,
            rd: reg(word >> 8),
            base: reg(word >> 13),
            offset: sext12(word >> 18 & 0xFFF),
        },
        OP_STORE => Instr::Store {
            width: width_from(word >> 5 & 0x3),
            rs: reg(word >> 7),
            base: reg(word >> 12),
            offset: sext12(word >> 17 & 0xFFF),
        },
        OP_BRANCH => Instr::Branch {
            cond: cond_from(word >> 5 & 0x7).ok_or(err)?,
            rs1: reg(word >> 8),
            rs2: reg(word >> 13),
            target: word >> 18 & 0x3FFF,
        },
        OP_JAL => Instr::Jal {
            rd: reg(word >> 5),
            target: word >> 10 & 0x3F_FFFF,
        },
        OP_JALR => Instr::Jalr {
            rd: reg(word >> 5),
            base: reg(word >> 10),
            offset: sext12(word >> 15 & 0xFFF),
        },
        OP_HALT => Instr::Halt,
        OP_SLOAD => Instr::StreamLoad {
            rd: reg(word >> 5),
            sid: (word >> 10 & 0x7) as u8,
            width: width_from(word >> 13 & 0x3),
        },
        OP_SSTORE => Instr::StreamStore {
            rs: reg(word >> 5),
            sid: (word >> 10 & 0x7) as u8,
            width: width_from(word >> 13 & 0x3),
        },
        OP_SAVAIL => Instr::StreamAvail {
            rd: reg(word >> 5),
            sid: (word >> 10 & 0x7) as u8,
        },
        OP_SEOS => Instr::StreamEos {
            rd: reg(word >> 5),
            sid: (word >> 10 & 0x7) as u8,
        },
        OP_BUFSWAP => Instr::BufSwap {
            bank: (word >> 5 & 1) as u8,
        },
        OP_CSRR => Instr::CsrR {
            rd: reg(word >> 5),
            csr: (word >> 10 & 0xFFF) as u16,
        },
        _ => return Err(err),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instrs() -> Vec<Instr> {
        vec![
            Instr::Alu {
                op: AluOp::Xor,
                rd: Reg::A0,
                rs1: Reg::T3,
                rs2: Reg::S11,
            },
            Instr::AluImm {
                op: AluOp::Add,
                rd: Reg::SP,
                rs1: Reg::SP,
                imm: -16,
            },
            Instr::Lui {
                rd: Reg::T0,
                imm: 0xABCDE,
            },
            Instr::Load {
                width: 2,
                signed: false,
                rd: Reg::A1,
                base: Reg::S0,
                offset: 2047,
            },
            Instr::Store {
                width: 4,
                rs: Reg::A2,
                base: Reg::S1,
                offset: -2048,
            },
            Instr::Branch {
                cond: BranchCond::Ltu,
                rs1: Reg::A0,
                rs2: Reg::A1,
                target: 12345,
            },
            Instr::Jal {
                rd: Reg::RA,
                target: 99999,
            },
            Instr::Jalr {
                rd: Reg::ZERO,
                base: Reg::RA,
                offset: 3,
            },
            Instr::Halt,
            Instr::StreamLoad {
                rd: Reg::A0,
                sid: 7,
                width: 4,
            },
            Instr::StreamStore {
                sid: 3,
                width: 1,
                rs: Reg::T6,
            },
            Instr::StreamAvail {
                rd: Reg::A3,
                sid: 5,
            },
            Instr::StreamEos {
                rd: Reg::A4,
                sid: 0,
            },
            Instr::BufSwap { bank: 1 },
            Instr::CsrR {
                rd: Reg::A5,
                csr: 0xC00,
            },
        ]
    }

    #[test]
    fn roundtrip_all_forms() {
        for i in sample_instrs() {
            let w = encode(i).unwrap();
            let back = decode(w).unwrap();
            assert_eq!(back, i, "word {w:#010x}");
        }
    }

    #[test]
    fn out_of_range_targets_rejected() {
        let e = encode(Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A0,
            target: 1 << 20,
        })
        .unwrap_err();
        assert!(matches!(e, AsmError::ImmOutOfRange { bits: 14, .. }));
    }

    #[test]
    fn unknown_opcode_fails_decode() {
        assert!(decode(0x1F).is_err());
        assert!(decode(OP_ALU | 17 << 5).is_err(), "bad alu code");
    }
}
