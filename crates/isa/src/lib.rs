//! The ASSASIN instruction set.
//!
//! ASSASIN cores execute an RV32IM-like scalar base ISA extended with the
//! stream-access instructions of Table III (Section V-B):
//!
//! * [`Instr::StreamLoad`] — pop `width` bytes from the head of an input
//!   stream into a register, advancing the Head CSR automatically; blocks
//!   (never overflows/underflows) until data arrives, and *hangs* when the
//!   stream is exhausted — the paper's loop-exit convention (Listing 1).
//! * [`Instr::StreamStore`] — append `width` bytes to an output stream,
//!   advancing its Tail.
//! * [`Instr::StreamAvail`] / [`Instr::StreamEos`] — non-blocking occupancy
//!   and end-of-stream queries.
//! * [`Instr::BufSwap`] — the AssasinSp variant's ping-pong buffer swap
//!   (waits until the firmware has filled/drained the other bank).
//! * [`Instr::CsrR`] — read streambuffer Head/Tail CSRs or the cycle
//!   counter.
//!
//! Programs are built with the [`Assembler`], which resolves labels and
//! enforces RV32-style immediate ranges:
//!
//! ```
//! use assasin_isa::{Assembler, Reg};
//!
//! let mut asm = Assembler::new();
//! let loop_top = asm.label();
//! // sum bytes from stream 0 until it is exhausted, then the core halts.
//! asm.bind(loop_top);
//! asm.stream_load(Reg::A0, 0, 1);
//! asm.add(Reg::A1, Reg::A1, Reg::A0);
//! asm.j(loop_top);
//! let program = asm.finish()?;
//! assert_eq!(program.len(), 3);
//! # Ok::<(), assasin_isa::AsmError>(())
//! ```

mod asm;
mod encode;
mod error;
mod instr;
mod program;
mod reg;
mod text;

pub use asm::{Assembler, Label};
pub use encode::{decode, encode};
pub use error::{AsmError, DecodeError};
pub use instr::{csr, AluOp, BranchCond, Instr};
pub use program::Program;
pub use reg::Reg;
pub use text::{parse_program, TextError};
