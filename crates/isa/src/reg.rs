//! Architectural registers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the 32 general-purpose registers. `x0` is hardwired to zero, as
/// in RISC-V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// Hardwired zero.
    pub const ZERO: Reg = Reg(0);
    /// Return address.
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Global pointer.
    pub const GP: Reg = Reg(3);
    /// Thread pointer.
    pub const TP: Reg = Reg(4);
    /// Temporary 0.
    pub const T0: Reg = Reg(5);
    /// Temporary 1.
    pub const T1: Reg = Reg(6);
    /// Temporary 2.
    pub const T2: Reg = Reg(7);
    /// Saved 0 / frame pointer.
    pub const S0: Reg = Reg(8);
    /// Saved 1.
    pub const S1: Reg = Reg(9);
    /// Argument/return 0.
    pub const A0: Reg = Reg(10);
    /// Argument/return 1.
    pub const A1: Reg = Reg(11);
    /// Argument 2.
    pub const A2: Reg = Reg(12);
    /// Argument 3.
    pub const A3: Reg = Reg(13);
    /// Argument 4.
    pub const A4: Reg = Reg(14);
    /// Argument 5.
    pub const A5: Reg = Reg(15);
    /// Argument 6.
    pub const A6: Reg = Reg(16);
    /// Argument 7.
    pub const A7: Reg = Reg(17);
    /// Saved 2.
    pub const S2: Reg = Reg(18);
    /// Saved 3.
    pub const S3: Reg = Reg(19);
    /// Saved 4.
    pub const S4: Reg = Reg(20);
    /// Saved 5.
    pub const S5: Reg = Reg(21);
    /// Saved 6.
    pub const S6: Reg = Reg(22);
    /// Saved 7.
    pub const S7: Reg = Reg(23);
    /// Saved 8.
    pub const S8: Reg = Reg(24);
    /// Saved 9.
    pub const S9: Reg = Reg(25);
    /// Saved 10.
    pub const S10: Reg = Reg(26);
    /// Saved 11.
    pub const S11: Reg = Reg(27);
    /// Temporary 3.
    pub const T3: Reg = Reg(28);
    /// Temporary 4.
    pub const T4: Reg = Reg(29);
    /// Temporary 5.
    pub const T5: Reg = Reg(30);
    /// Temporary 6.
    pub const T6: Reg = Reg(31);

    /// Builds a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    pub fn new(index: u8) -> Reg {
        assert!(index < 32, "register index {index} out of range");
        Reg(index)
    }

    /// The register's index, 0–31.
    pub fn index(self) -> u8 {
        self.0
    }

    /// True for `x0`.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        f.write_str(NAMES[self.0 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names() {
        assert_eq!(Reg::ZERO.to_string(), "zero");
        assert_eq!(Reg::A0.to_string(), "a0");
        assert_eq!(Reg::T6.to_string(), "t6");
        assert_eq!(Reg::T6.index(), 31);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_32_rejected() {
        let _ = Reg::new(32);
    }
}
