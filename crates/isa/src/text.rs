//! Textual assembly: parse the disassembler's output format back into
//! programs.
//!
//! The syntax is exactly what [`Program`]'s `Display` prints — one
//! instruction per line, `;`-prefixed comments, branch/jump targets as
//! `@index` — plus named labels (`name:` definitions, `@name` references)
//! for hand-written sources:
//!
//! ```
//! use assasin_isa::parse_program;
//! let p = parse_program("sum", r"
//!     li   a1, 0
//! loop:
//!     stream.load a0, s0, 1
//!     add  a1, a1, a0
//!     jal  zero, @loop
//! ")?;
//! assert_eq!(p.len(), 4);
//! # Ok::<(), assasin_isa::TextError>(())
//! ```

use crate::instr::{AluOp, BranchCond};
use crate::{Instr, Program, Reg};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A textual-assembly parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for TextError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, TextError> {
    Err(TextError {
        line,
        message: message.into(),
    })
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, TextError> {
    const NAMES: [&str; 32] = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
        "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
        "t5", "t6",
    ];
    if let Some(i) = NAMES.iter().position(|&n| n == tok) {
        return Ok(Reg::new(i as u8));
    }
    if let Some(n) = tok.strip_prefix('x') {
        if let Ok(i) = n.parse::<u8>() {
            if i < 32 {
                return Ok(Reg::new(i));
            }
        }
    }
    err(line, format!("unknown register `{tok}`"))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, TextError> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    };
    match value {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("bad immediate `{tok}`")),
    }
}

/// `off(base)` operands.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(Reg, i64), TextError> {
    let Some(open) = tok.find('(') else {
        return err(line, format!("expected off(base), got `{tok}`"));
    };
    if !tok.ends_with(')') {
        return err(line, format!("expected off(base), got `{tok}`"));
    }
    let off = parse_imm(&tok[..open], line)?;
    let base = parse_reg(&tok[open + 1..tok.len() - 1], line)?;
    Ok((base, off))
}

fn parse_sid(tok: &str, line: usize) -> Result<u8, TextError> {
    let Some(n) = tok.strip_prefix('s') else {
        return err(line, format!("expected stream id `sN`, got `{tok}`"));
    };
    match n.parse::<u8>() {
        Ok(v) if v < 8 => Ok(v),
        _ => err(line, format!("bad stream id `{tok}`")),
    }
}

enum Target {
    Index(u32),
    Name(String),
}

fn parse_target(tok: &str, line: usize) -> Result<Target, TextError> {
    let Some(t) = tok.strip_prefix('@') else {
        return err(line, format!("expected @target, got `{tok}`"));
    };
    if let Ok(i) = t.parse::<u32>() {
        Ok(Target::Index(i))
    } else if !t.is_empty() {
        Ok(Target::Name(t.to_string()))
    } else {
        err(line, "empty branch target")
    }
}

enum Parsed {
    Ready(Instr),
    /// Needs a label patched into the `target` field.
    Branch(Instr, String),
}

/// Parses textual assembly into a [`Program`].
///
/// # Errors
///
/// Reports the first syntax error, unknown mnemonic, out-of-range operand
/// or undefined label, with its line number.
pub fn parse_program(name: &str, source: &str) -> Result<Program, TextError> {
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut parsed: Vec<(usize, Parsed)> = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        // Strip comments (`;` and leading `N:` listing indices).
        let mut line = raw;
        if let Some(c) = line.find(';') {
            line = &line[..c];
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Label definition?
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            // A bare listing index like `12:` is ignored; names register.
            if label.parse::<u32>().is_err()
                && labels
                    .insert(label.to_string(), parsed.len() as u32)
                    .is_some()
            {
                return err(line_no, format!("label `{label}` defined twice"));
            }
            continue;
        }
        // Strip a leading listing index (`  3: add ...`).
        let line = match line.split_once(':') {
            Some((maybe_idx, rest)) if maybe_idx.trim().parse::<u32>().is_ok() => rest.trim(),
            _ => line,
        };
        let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (line, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let nops = ops.len();
        let want = |n: usize| -> Result<(), TextError> {
            if nops == n {
                Ok(())
            } else {
                err(
                    line_no,
                    format!("`{mnemonic}` wants {n} operands, got {nops}"),
                )
            }
        };

        let alu3 = |op: AluOp, ops: &[&str]| -> Result<Parsed, TextError> {
            Ok(Parsed::Ready(Instr::Alu {
                op,
                rd: parse_reg(ops[0], line_no)?,
                rs1: parse_reg(ops[1], line_no)?,
                rs2: parse_reg(ops[2], line_no)?,
            }))
        };
        let alui = |op: AluOp, ops: &[&str]| -> Result<Parsed, TextError> {
            Ok(Parsed::Ready(Instr::AluImm {
                op,
                rd: parse_reg(ops[0], line_no)?,
                rs1: parse_reg(ops[1], line_no)?,
                imm: parse_imm(ops[2], line_no)? as i32,
            }))
        };
        let load = |width: u8, signed: bool, ops: &[&str]| -> Result<Parsed, TextError> {
            let (base, offset) = parse_mem_operand(ops[1], line_no)?;
            Ok(Parsed::Ready(Instr::Load {
                width,
                signed,
                rd: parse_reg(ops[0], line_no)?,
                base,
                offset: offset as i32,
            }))
        };
        let store = |width: u8, ops: &[&str]| -> Result<Parsed, TextError> {
            let (base, offset) = parse_mem_operand(ops[1], line_no)?;
            Ok(Parsed::Ready(Instr::Store {
                width,
                rs: parse_reg(ops[0], line_no)?,
                base,
                offset: offset as i32,
            }))
        };
        let branch = |cond: BranchCond, ops: &[&str]| -> Result<Parsed, TextError> {
            let instr = Instr::Branch {
                cond,
                rs1: parse_reg(ops[0], line_no)?,
                rs2: parse_reg(ops[1], line_no)?,
                target: 0,
            };
            match parse_target(ops[2], line_no)? {
                Target::Index(i) => Ok(Parsed::Ready(match instr {
                    Instr::Branch { cond, rs1, rs2, .. } => Instr::Branch {
                        cond,
                        rs1,
                        rs2,
                        target: i,
                    },
                    _ => unreachable!(),
                })),
                Target::Name(n) => Ok(Parsed::Branch(instr, n)),
            }
        };

        let item = match mnemonic {
            "add" => {
                want(3)?;
                alu3(AluOp::Add, &ops)?
            }
            "sub" => {
                want(3)?;
                alu3(AluOp::Sub, &ops)?
            }
            "sll" => {
                want(3)?;
                alu3(AluOp::Sll, &ops)?
            }
            "slt" => {
                want(3)?;
                alu3(AluOp::Slt, &ops)?
            }
            "sltu" => {
                want(3)?;
                alu3(AluOp::Sltu, &ops)?
            }
            "xor" => {
                want(3)?;
                alu3(AluOp::Xor, &ops)?
            }
            "srl" => {
                want(3)?;
                alu3(AluOp::Srl, &ops)?
            }
            "sra" => {
                want(3)?;
                alu3(AluOp::Sra, &ops)?
            }
            "or" => {
                want(3)?;
                alu3(AluOp::Or, &ops)?
            }
            "and" => {
                want(3)?;
                alu3(AluOp::And, &ops)?
            }
            "mul" => {
                want(3)?;
                alu3(AluOp::Mul, &ops)?
            }
            "mulh" => {
                want(3)?;
                alu3(AluOp::Mulh, &ops)?
            }
            "mulhu" => {
                want(3)?;
                alu3(AluOp::Mulhu, &ops)?
            }
            "div" => {
                want(3)?;
                alu3(AluOp::Div, &ops)?
            }
            "divu" => {
                want(3)?;
                alu3(AluOp::Divu, &ops)?
            }
            "rem" => {
                want(3)?;
                alu3(AluOp::Rem, &ops)?
            }
            "remu" => {
                want(3)?;
                alu3(AluOp::Remu, &ops)?
            }
            "addi" => {
                want(3)?;
                alui(AluOp::Add, &ops)?
            }
            "slti" => {
                want(3)?;
                alui(AluOp::Slt, &ops)?
            }
            "sltui" | "sltiu" => {
                want(3)?;
                alui(AluOp::Sltu, &ops)?
            }
            "xori" => {
                want(3)?;
                alui(AluOp::Xor, &ops)?
            }
            "ori" => {
                want(3)?;
                alui(AluOp::Or, &ops)?
            }
            "andi" => {
                want(3)?;
                alui(AluOp::And, &ops)?
            }
            "slli" => {
                want(3)?;
                alui(AluOp::Sll, &ops)?
            }
            "srli" => {
                want(3)?;
                alui(AluOp::Srl, &ops)?
            }
            "srai" => {
                want(3)?;
                alui(AluOp::Sra, &ops)?
            }
            "lui" => {
                want(2)?;
                Parsed::Ready(Instr::Lui {
                    rd: parse_reg(ops[0], line_no)?,
                    imm: parse_imm(ops[1], line_no)? as u32,
                })
            }
            "li" => {
                // Pseudo: expand immediately (may become two instructions).
                want(2)?;
                let rd = parse_reg(ops[0], line_no)?;
                let v = parse_imm(ops[1], line_no)? as i32;
                if (-2048..=2047).contains(&v) {
                    Parsed::Ready(Instr::AluImm {
                        op: AluOp::Add,
                        rd,
                        rs1: Reg::ZERO,
                        imm: v,
                    })
                } else {
                    let hi = ((v as u32).wrapping_add(0x800)) >> 12;
                    let lo = v.wrapping_sub((hi << 12) as i32);
                    parsed.push((line_no, Parsed::Ready(Instr::Lui { rd, imm: hi })));
                    if lo != 0 {
                        Parsed::Ready(Instr::AluImm {
                            op: AluOp::Add,
                            rd,
                            rs1: rd,
                            imm: lo,
                        })
                    } else {
                        continue;
                    }
                }
            }
            "mv" => {
                want(2)?;
                Parsed::Ready(Instr::AluImm {
                    op: AluOp::Add,
                    rd: parse_reg(ops[0], line_no)?,
                    rs1: parse_reg(ops[1], line_no)?,
                    imm: 0,
                })
            }
            "nop" => {
                want(0)?;
                Parsed::Ready(Instr::AluImm {
                    op: AluOp::Add,
                    rd: Reg::ZERO,
                    rs1: Reg::ZERO,
                    imm: 0,
                })
            }
            "lb" => {
                want(2)?;
                load(1, true, &ops)?
            }
            "lbu" => {
                want(2)?;
                load(1, false, &ops)?
            }
            "lh" => {
                want(2)?;
                load(2, true, &ops)?
            }
            "lhu" => {
                want(2)?;
                load(2, false, &ops)?
            }
            "lw" => {
                want(2)?;
                load(4, true, &ops)?
            }
            "sb" => {
                want(2)?;
                store(1, &ops)?
            }
            "sh" => {
                want(2)?;
                store(2, &ops)?
            }
            "sw" => {
                want(2)?;
                store(4, &ops)?
            }
            "beq" => {
                want(3)?;
                branch(BranchCond::Eq, &ops)?
            }
            "bne" => {
                want(3)?;
                branch(BranchCond::Ne, &ops)?
            }
            "blt" => {
                want(3)?;
                branch(BranchCond::Lt, &ops)?
            }
            "bge" => {
                want(3)?;
                branch(BranchCond::Ge, &ops)?
            }
            "bltu" => {
                want(3)?;
                branch(BranchCond::Ltu, &ops)?
            }
            "bgeu" => {
                want(3)?;
                branch(BranchCond::Geu, &ops)?
            }
            "jal" => {
                want(2)?;
                let rd = parse_reg(ops[0], line_no)?;
                match parse_target(ops[1], line_no)? {
                    Target::Index(i) => Parsed::Ready(Instr::Jal { rd, target: i }),
                    Target::Name(n) => Parsed::Branch(Instr::Jal { rd, target: 0 }, n),
                }
            }
            "j" => {
                want(1)?;
                match parse_target(ops[0], line_no)? {
                    Target::Index(i) => Parsed::Ready(Instr::Jal {
                        rd: Reg::ZERO,
                        target: i,
                    }),
                    Target::Name(n) => Parsed::Branch(
                        Instr::Jal {
                            rd: Reg::ZERO,
                            target: 0,
                        },
                        n,
                    ),
                }
            }
            "jalr" => {
                want(2)?;
                let (base, offset) = parse_mem_operand(ops[1], line_no)?;
                Parsed::Ready(Instr::Jalr {
                    rd: parse_reg(ops[0], line_no)?,
                    base,
                    offset: offset as i32,
                })
            }
            "halt" => {
                want(0)?;
                Parsed::Ready(Instr::Halt)
            }
            "stream.load" => {
                want(3)?;
                Parsed::Ready(Instr::StreamLoad {
                    rd: parse_reg(ops[0], line_no)?,
                    sid: parse_sid(ops[1], line_no)?,
                    width: parse_imm(ops[2], line_no)? as u8,
                })
            }
            "stream.store" => {
                want(3)?;
                Parsed::Ready(Instr::StreamStore {
                    sid: parse_sid(ops[0], line_no)?,
                    width: parse_imm(ops[1], line_no)? as u8,
                    rs: parse_reg(ops[2], line_no)?,
                })
            }
            "stream.avail" => {
                want(2)?;
                Parsed::Ready(Instr::StreamAvail {
                    rd: parse_reg(ops[0], line_no)?,
                    sid: parse_sid(ops[1], line_no)?,
                })
            }
            "stream.eos" => {
                want(2)?;
                Parsed::Ready(Instr::StreamEos {
                    rd: parse_reg(ops[0], line_no)?,
                    sid: parse_sid(ops[1], line_no)?,
                })
            }
            "buf.swap" => {
                want(1)?;
                Parsed::Ready(Instr::BufSwap {
                    bank: parse_imm(ops[0], line_no)? as u8,
                })
            }
            "csrr" => {
                want(2)?;
                Parsed::Ready(Instr::CsrR {
                    rd: parse_reg(ops[0], line_no)?,
                    csr: parse_imm(ops[1], line_no)? as u16,
                })
            }
            other => return err(line_no, format!("unknown mnemonic `{other}`")),
        };
        parsed.push((line_no, item));
    }

    // Resolve named labels.
    let mut instrs = Vec::with_capacity(parsed.len());
    for (line_no, item) in parsed {
        let instr = match item {
            Parsed::Ready(i) => i,
            Parsed::Branch(mut i, label) => {
                let Some(&target) = labels.get(&label) else {
                    return err(line_no, format!("undefined label `{label}`"));
                };
                match &mut i {
                    Instr::Branch { target: t, .. } | Instr::Jal { target: t, .. } => *t = target,
                    _ => unreachable!("only branches carry labels"),
                }
                i
            }
        };
        instrs.push(instr);
    }
    Ok(Program::from_instrs(name, instrs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assembler, Reg};

    #[test]
    fn disassembly_reparses_to_the_same_program() {
        // Build a program touching every instruction form, print it,
        // re-parse it, compare.
        let mut asm = Assembler::with_name("roundtrip");
        let top = asm.label();
        asm.bind(top);
        asm.li(Reg::A0, 0x1234_5678);
        asm.addi(Reg::A1, Reg::A0, -5);
        asm.mul(Reg::A2, Reg::A1, Reg::A0);
        asm.lw(Reg::T0, Reg::S0, 12);
        asm.sb(Reg::T0, Reg::S5, -3);
        asm.stream_load(Reg::T1, 2, 4);
        asm.stream_store(0, 1, Reg::T1);
        asm.stream_avail(Reg::T2, 7);
        asm.stream_eos(Reg::T3, 1);
        asm.buf_swap(1);
        asm.csrr(Reg::T4, 0xC00);
        asm.beq(Reg::A0, Reg::A1, top);
        asm.jalr(Reg::RA, Reg::T0, 2);
        asm.halt();
        let program = asm.finish().unwrap();

        let text = program.to_string();
        let reparsed = parse_program("roundtrip", &text).unwrap();
        assert_eq!(reparsed.len(), program.len());
        for (a, b) in program.iter().zip(reparsed.iter()) {
            assert_eq!(a, b, "text:\n{text}");
        }
    }

    #[test]
    fn named_labels_resolve_forward_and_backward() {
        let p = parse_program(
            "labels",
            r"
            ; counts down from 3
                li a0, 3
            loop:
                addi a0, a0, -1
                bne a0, zero, @loop
                j @done
                nop
            done:
                halt
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(
            p.fetch(2),
            Some(Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::A0,
                rs2: Reg::ZERO,
                target: 1,
            })
        );
        assert_eq!(
            p.fetch(3),
            Some(Instr::Jal {
                rd: Reg::ZERO,
                target: 5
            })
        );
    }

    #[test]
    fn parsed_program_executes() {
        use crate::Program;
        // Cross-check with a hand-computed value by decoding the parse.
        let p: Program = parse_program(
            "sum10",
            r"
                li a0, 10
                li a1, 0
            top:
                add a1, a1, a0
                addi a0, a0, -1
                bne a0, zero, @top
                halt
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_program("bad", "add a0, a1\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("wants 3 operands"));

        let e = parse_program("bad", "\n\nfrobnicate a0\n").unwrap_err();
        assert_eq!(e.line, 3);

        let e = parse_program("bad", "j @nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined label"));

        let e = parse_program("bad", "lw a0, 12\n").unwrap_err();
        assert!(e.message.contains("off(base)"));

        let e = parse_program("bad", "loop:\nloop:\n").unwrap_err();
        assert!(e.message.contains("defined twice"));
    }

    #[test]
    fn x_register_names_work() {
        let p = parse_program("x", "add x10, x11, x31\nhalt\n").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Instr::Alu {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::T6,
            })
        );
    }
}
