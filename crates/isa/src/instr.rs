//! Instruction definitions.

use crate::Reg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// ALU operations shared by register-register and register-immediate forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction (register form only).
    Sub,
    /// Logical shift left.
    Sll,
    /// Signed set-less-than.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Bitwise xor.
    Xor,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
    /// 32x32 -> low 32 multiply (M extension).
    Mul,
    /// Signed high multiply.
    Mulh,
    /// Unsigned high multiply.
    Mulhu,
    /// Signed division.
    Div,
    /// Unsigned division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

impl AluOp {
    /// True for the multi-cycle M-extension operations.
    pub fn is_muldiv(self) -> bool {
        matches!(
            self,
            AluOp::Mul
                | AluOp::Mulh
                | AluOp::Mulhu
                | AluOp::Div
                | AluOp::Divu
                | AluOp::Rem
                | AluOp::Remu
        )
    }
}

/// Branch comparison conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// One ASSASIN instruction. Branch and jump targets are *instruction
/// indices* into the owning [`Program`](crate::Program) (the assembler
/// resolves labels to these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// Register-register ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Register-immediate ALU operation (12-bit signed immediate; shifts
    /// use the low 5 bits).
    AluImm {
        /// Operation (`Sub` is not encodable; use a negative `Add` imm).
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate.
        imm: i32,
    },
    /// Load upper immediate: `rd = imm << 12`.
    Lui {
        /// Destination.
        rd: Reg,
        /// Upper 20 bits.
        imm: u32,
    },
    /// Memory load of `width` bytes (1, 2 or 4).
    Load {
        /// Access width in bytes.
        width: u8,
        /// Sign-extend narrow loads.
        signed: bool,
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Memory store of `width` bytes (1, 2 or 4).
    Store {
        /// Access width in bytes.
        width: u8,
        /// Value source.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Conditional branch to instruction index `target`.
    Branch {
        /// Comparison.
        cond: BranchCond,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Jump and link to instruction index `target`.
    Jal {
        /// Link register (receives return instruction index).
        rd: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Indirect jump and link.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base register (holds an instruction index).
        base: Reg,
        /// Signed offset in instructions.
        offset: i32,
    },
    /// Stops the core (firmware-visible completion for non-stream kernels).
    Halt,
    /// Stream extension (Table III): pop `width` bytes (1, 2 or 4) from the
    /// head of input stream `sid` into `rd`. Blocks until data arrives;
    /// hangs (halting the core) when the stream is exhausted.
    StreamLoad {
        /// Destination.
        rd: Reg,
        /// Input stream id.
        sid: u8,
        /// Bytes to pop (1, 2 or 4).
        width: u8,
    },
    /// Stream extension: append the low `width` bytes of `rs` to output
    /// stream `sid`. Blocks while the output ring drains.
    StreamStore {
        /// Output stream id.
        sid: u8,
        /// Bytes to push (1, 2 or 4).
        width: u8,
        /// Value source.
        rs: Reg,
    },
    /// Stream extension: `rd =` bytes currently available on input stream
    /// `sid` (saturated to `u32::MAX`), without blocking.
    StreamAvail {
        /// Destination.
        rd: Reg,
        /// Input stream id.
        sid: u8,
    },
    /// Stream extension: `rd = 1` if input stream `sid` is closed and fully
    /// consumed, else 0.
    StreamEos {
        /// Destination.
        rd: Reg,
        /// Input stream id.
        sid: u8,
    },
    /// AssasinSp ping-pong swap: wait until the other bank of staging
    /// scratchpad `bank` is ready, then switch to it.
    BufSwap {
        /// 0 = input staging buffer, 1 = output staging buffer.
        bank: u8,
    },
    /// Read a control/status register (stream Head/Tail, cycle counter).
    CsrR {
        /// Destination.
        rd: Reg,
        /// CSR number (see [`csr`]).
        csr: u16,
    },
}

/// CSR numbers for [`Instr::CsrR`].
pub mod csr {
    /// Head (bytes consumed) of input stream `sid`.
    pub fn in_head(sid: u8) -> u16 {
        0x800 + sid as u16
    }
    /// Tail (bytes arrived) of input stream `sid`.
    pub fn in_tail(sid: u8) -> u16 {
        0x810 + sid as u16
    }
    /// Head (bytes drained) of output stream `sid`.
    pub fn out_head(sid: u8) -> u16 {
        0x820 + sid as u16
    }
    /// Tail (bytes produced) of output stream `sid`.
    pub fn out_tail(sid: u8) -> u16 {
        0x830 + sid as u16
    }
    /// Core cycle counter (low 32 bits).
    pub const CYCLE: u16 = 0xC00;
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", alu_name(op))
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", alu_name(op))
            }
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Instr::Load {
                width,
                signed,
                rd,
                base,
                offset,
            } => {
                let name = match (width, signed) {
                    (1, true) => "lb",
                    (1, false) => "lbu",
                    (2, true) => "lh",
                    (2, false) => "lhu",
                    _ => "lw",
                };
                write!(f, "{name} {rd}, {offset}({base})")
            }
            Instr::Store {
                width,
                rs,
                base,
                offset,
            } => {
                let name = match width {
                    1 => "sb",
                    2 => "sh",
                    _ => "sw",
                };
                write!(f, "{name} {rs}, {offset}({base})")
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let name = match cond {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                    BranchCond::Lt => "blt",
                    BranchCond::Ge => "bge",
                    BranchCond::Ltu => "bltu",
                    BranchCond::Geu => "bgeu",
                };
                write!(f, "{name} {rs1}, {rs2}, @{target}")
            }
            Instr::Jal { rd, target } => write!(f, "jal {rd}, @{target}"),
            Instr::Jalr { rd, base, offset } => write!(f, "jalr {rd}, {offset}({base})"),
            Instr::Halt => write!(f, "halt"),
            Instr::StreamLoad { rd, sid, width } => {
                write!(f, "stream.load {rd}, s{sid}, {width}")
            }
            Instr::StreamStore { sid, width, rs } => {
                write!(f, "stream.store s{sid}, {width}, {rs}")
            }
            Instr::StreamAvail { rd, sid } => write!(f, "stream.avail {rd}, s{sid}"),
            Instr::StreamEos { rd, sid } => write!(f, "stream.eos {rd}, s{sid}"),
            Instr::BufSwap { bank } => write!(f, "buf.swap {bank}"),
            Instr::CsrR { rd, csr } => write!(f, "csrr {rd}, {csr:#x}"),
        }
    }
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Sll => "sll",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Xor => "xor",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Or => "or",
        AluOp::And => "and",
        AluOp::Mul => "mul",
        AluOp::Mulh => "mulh",
        AluOp::Mulhu => "mulhu",
        AluOp::Div => "div",
        AluOp::Divu => "divu",
        AluOp::Rem => "rem",
        AluOp::Remu => "remu",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_assembly_like() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(i.to_string(), "add a0, a1, a2");
        let i = Instr::Load {
            width: 4,
            signed: true,
            rd: Reg::T0,
            base: Reg::S0,
            offset: -8,
        };
        assert_eq!(i.to_string(), "lw t0, -8(s0)");
        let i = Instr::StreamLoad {
            rd: Reg::A0,
            sid: 2,
            width: 4,
        };
        assert_eq!(i.to_string(), "stream.load a0, s2, 4");
    }

    #[test]
    fn csr_numbers_do_not_collide() {
        let mut all: Vec<u16> = (0..8)
            .flat_map(|s| {
                [
                    csr::in_head(s),
                    csr::in_tail(s),
                    csr::out_head(s),
                    csr::out_tail(s),
                ]
            })
            .collect();
        all.push(csr::CYCLE);
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn muldiv_classification() {
        assert!(AluOp::Mul.is_muldiv());
        assert!(AluOp::Rem.is_muldiv());
        assert!(!AluOp::Add.is_muldiv());
    }
}
