//! Assembler and decoder errors.

use std::error::Error;
use std::fmt;

/// Errors reported while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(usize),
    /// A label was bound twice.
    Rebound(usize),
    /// An immediate exceeded its encodable range.
    ImmOutOfRange {
        /// Offending value.
        value: i64,
        /// Bits available.
        bits: u32,
    },
    /// Stream id exceeds the 8-stream architectural limit.
    BadStreamId(u8),
    /// Unsupported access width.
    BadWidth(u8),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {l} referenced but never bound"),
            AsmError::Rebound(l) => write!(f, "label {l} bound twice"),
            AsmError::ImmOutOfRange { value, bits } => {
                write!(f, "immediate {value} does not fit in {bits} bits")
            }
            AsmError::BadStreamId(s) => write!(f, "stream id {s} exceeds architectural limit"),
            AsmError::BadWidth(w) => write!(f, "unsupported access width {w}"),
        }
    }
}

impl Error for AsmError {}

/// Errors reported while decoding a binary instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<AsmError>();
        assert_bounds::<DecodeError>();
    }
}
