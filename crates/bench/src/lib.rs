//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section VI).
//!
//! Each experiment lives in [`experiments`] as a `run(&Scale) -> Report`
//! function whose report type implements `Display` (the paper's rows) and
//! `serde::Serialize` (for `EXPERIMENTS.md` regeneration). The binaries in
//! `src/bin/` wrap one experiment each; `all_experiments` runs the full
//! evaluation and writes text + JSON reports under `reports/`.
//!
//! | binary | reproduces |
//! |---|---|
//! | `table04_configs` | Table IV (engine configurations) |
//! | `fig05_motivation` | Section III example + Figure 5 decomposition |
//! | `fig13_standalone` | Figure 13 (Stat/RAID4/RAID6/AES throughput) |
//! | `fig14_psf` | Figure 14 (Parse-Select-Filter pipeline) |
//! | `fig15_tpch` | Figure 15 (22-query end-to-end latency) |
//! | `fig16_scalability` | Figures 16 + 17 (scaling, utilization) |
//! | `fig18_channel_balance` | Figure 18 (per-channel throughput) |
//! | `fig19_skew` | Section VI-E (crossbar vs channel-local under skew) |
//! | `fig20_timing` | Figure 20 (memory-structure access times) |
//! | `fig21_adjusted` | Figure 21 (timing-adjusted throughput) |
//! | `fig22_efficiency` | Figure 22 + Table V (power/area efficiency) |
//! | `fig_reliability` | Reliability sweep (NAND fault injection, DESIGN.md §12) |
//! | `fig_array` | Multi-device array scaling, degraded reads, rebuild storms (DESIGN.md §15) |

pub mod bundles;
pub mod experiments;
pub mod gate;
pub mod provider;
pub mod report;
pub mod runner;
pub mod scale;
pub mod sweep;

pub use scale::Scale;
