//! Experiment sizing.

/// Input sizes for the experiments. The paper uses 8 GiB arrays and TPC-H
//  SF 10; all reported metrics are steady-state rates, which converge at
/// MiB scale in this simulator, so the default keeps full runs under a few
/// minutes. Scale up via `ASSASIN_SCALE` (a multiplier) for longer runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Bytes per standalone-function input stream (Figure 13).
    pub standalone_bytes: usize,
    /// Bytes for the AES input (AES simulates ~70 instructions/byte, so it
    /// gets a smaller input at equal simulated fidelity).
    pub aes_bytes: usize,
    /// TPC-H scale factor for PSF and end-to-end runs.
    pub sf: f64,
    /// Bytes scanned per core-count point in the scalability sweep.
    pub scalability_bytes: usize,
    /// RNG seed for dataset generation.
    pub seed: u64,
}

impl Scale {
    /// The default experiment scale (CI-friendly).
    pub fn default_scale() -> Scale {
        Scale {
            standalone_bytes: 4 << 20,
            aes_bytes: 512 << 10,
            sf: 0.01,
            scalability_bytes: 16 << 20,
            seed: 0xA55A,
        }
    }

    /// A tiny scale for integration tests.
    pub fn test_scale() -> Scale {
        Scale {
            standalone_bytes: 256 << 10,
            aes_bytes: 64 << 10,
            sf: 0.002,
            scalability_bytes: 1 << 20,
            seed: 0xA55A,
        }
    }

    /// Reads `ASSASIN_SCALE` as a multiplier over the default scale.
    pub fn from_env() -> Scale {
        let mult: f64 = std::env::var("ASSASIN_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0);
        let d = Scale::default_scale();
        Scale {
            standalone_bytes: (d.standalone_bytes as f64 * mult) as usize,
            aes_bytes: (d.aes_bytes as f64 * mult) as usize,
            sf: d.sf * mult,
            scalability_bytes: (d.scalability_bytes as f64 * mult) as usize,
            seed: d.seed,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::default_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_positive() {
        for s in [Scale::default_scale(), Scale::test_scale()] {
            assert!(s.standalone_bytes > 0 && s.aes_bytes > 0);
            assert!(s.sf > 0.0);
        }
    }
}
