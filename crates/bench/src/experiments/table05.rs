//! Table V: per-component power and silicon area.

use crate::report;
use assasin_core::EngineKind;
use assasin_power::components::{engine_budget, engine_components};
use serde::Serialize;
use std::fmt;

/// One component row.
#[derive(Debug, Clone, Serialize)]
pub struct ComponentRow {
    /// Engine the component belongs to.
    pub engine: String,
    /// Component name.
    pub component: String,
    /// Power, mW.
    pub power_mw: f64,
    /// Area, mm².
    pub area_mm2: f64,
}

/// The Table V report.
#[derive(Debug, Clone, Serialize)]
pub struct Table05Report {
    /// All component rows, grouped by engine.
    pub rows: Vec<ComponentRow>,
    /// Per-engine totals.
    pub totals: Vec<(String, f64, f64)>,
}

/// The engines Table V itemizes.
pub const ENGINES: [EngineKind; 3] = [EngineKind::Baseline, EngineKind::Udp, EngineKind::AssasinSb];

/// Builds the table.
pub fn run() -> Table05Report {
    let mut rows = Vec::new();
    let mut totals = Vec::new();
    for kind in ENGINES {
        for c in engine_components(kind) {
            rows.push(ComponentRow {
                engine: kind.label().to_string(),
                component: c.name.to_string(),
                power_mw: c.power_mw,
                area_mm2: c.area_mm2,
            });
        }
        let (p, a) = engine_budget(kind);
        totals.push((kind.label().to_string(), p, a));
    }
    Table05Report { rows, totals }
}

impl fmt::Display for Table05Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table V: power and area of engine subcomponents (14nm model)"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.engine.clone(),
                    r.component.clone(),
                    format!("{:.2}", r.power_mw),
                    format!("{:.4}", r.area_mm2),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            report::table(&["engine", "component", "mW", "mm2"], &rows)
        )?;
        writeln!(f, "totals per engine:")?;
        let rows: Vec<Vec<String>> = self
            .totals
            .iter()
            .map(|(e, p, a)| vec![e.clone(), format!("{p:.2}"), format!("{a:.4}")])
            .collect();
        write!(f, "{}", report::table(&["engine", "mW", "mm2"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_components() {
        let t = run();
        for (engine, p, a) in &t.totals {
            let sp: f64 = t
                .rows
                .iter()
                .filter(|r| &r.engine == engine)
                .map(|r| r.power_mw)
                .sum();
            let sa: f64 = t
                .rows
                .iter()
                .filter(|r| &r.engine == engine)
                .map(|r| r.area_mm2)
                .sum();
            assert!((sp - p).abs() < 1e-9);
            assert!((sa - a).abs() < 1e-9);
        }
    }
}
