//! Multi-device array experiment: throughput scaling 1→N devices,
//! degraded reads, and rebuild storms (DESIGN.md §15).
//!
//! Everything reported here is *simulated* time from the array's
//! deterministic event merge, so the report is byte-identical across
//! runs, across serial vs. threaded execution, and across machines —
//! the wall-clock payoff of the threaded engine is measured separately
//! by `perf_smoke`. Three scenarios:
//!
//! 1. **Scaling** — one object striped over 1, 2, 4, … devices; a
//!    conventional read (every byte crosses the shared root, so stalls
//!    appear once the lanes outrun it) and a scan offload (per-device
//!    compute shrinks with width). A final skewed row (weighted
//!    striping) shows the slowest lane dominating.
//! 2. **Degraded reads** — RAID4/RAID6 arrays losing one or two
//!    devices; the reconstruction reads amplify both bytes moved and
//!    elapsed time.
//! 3. **Rebuild storms** — a failed device repopulated from survivors,
//!    including a skewed small-object layout where the failed device
//!    held a disproportionate share of the chunks.
//!
//! Topology knobs: `ASSASIN_ARRAY_DEVICES` caps the scaling sweep
//! (default 8) and `ASSASIN_ARRAY_PLACEMENT` picks its placement
//! (`striped`, `replicated`, `raid4`, `raid6`; default `striped`).
//! Malformed values are hard errors, not silent defaults.

use crate::bundles;
use crate::report;
use crate::Scale;
use assasin_array::{ArrayConfig, ArrayExec, ArrayPlacement, SsdArray};
use assasin_core::EngineKind;
use assasin_ssd::SsdConfig;
use serde::Serialize;
use std::fmt;

/// One width of the scaling sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingPoint {
    /// Devices in the array.
    pub devices: usize,
    /// Placement policy name (the skew row says `weighted`).
    pub placement: String,
    /// Conventional-read throughput, GB/s (bytes / simulated elapsed).
    pub read_gbps: f64,
    /// Aggregate per-transfer root-link queuing time divided by the
    /// read's elapsed time. Exceeds 1.0 once several lanes queue
    /// concurrently — it sums queue time across transfers.
    pub read_stall_frac: f64,
    /// Scan-offload throughput, GB/s.
    pub scomp_gbps: f64,
    /// Slowest lane's simulated GB/s during the offload.
    pub lane_gbps_min: f64,
    /// Fastest lane's simulated GB/s during the offload.
    pub lane_gbps_max: f64,
}

/// One degraded-read scenario.
#[derive(Debug, Clone, Serialize)]
pub struct DegradedPoint {
    /// Placement policy name.
    pub placement: String,
    /// Devices in the array.
    pub devices: usize,
    /// Devices failed before the degraded read.
    pub failed: usize,
    /// Healthy full-object read, simulated ms.
    pub healthy_ms: f64,
    /// Same read with the failures in place, simulated ms.
    pub degraded_ms: f64,
    /// `degraded_ms / healthy_ms`.
    pub slowdown: f64,
    /// Chunks served via reconstruction or a surviving replica.
    pub degraded_chunks: u64,
}

/// One rebuild-storm scenario.
#[derive(Debug, Clone, Serialize)]
pub struct RebuildPoint {
    /// Scenario name.
    pub scenario: String,
    /// Devices in the array.
    pub devices: usize,
    /// Objects resident when the device failed.
    pub objects: usize,
    /// Chunks reconstructed onto the replacement.
    pub chunks: u64,
    /// Bytes read from survivors during the storm.
    pub bytes_read: u64,
    /// Bytes written to the replacement.
    pub bytes_written: u64,
    /// Simulated rebuild time, ms.
    pub rebuild_ms: f64,
    /// Aggregate root-link queuing time over the storm's elapsed time
    /// (sums across transfers, so it can exceed 1.0).
    pub stall_frac: f64,
}

/// The array experiment report.
#[derive(Debug, Clone, Serialize)]
pub struct ArrayReport {
    /// Object bytes used for each scenario.
    pub object_bytes: usize,
    /// Scaling sweep, one row per width plus the skewed row.
    pub scaling: Vec<ScalingPoint>,
    /// Degraded-read scenarios.
    pub degraded: Vec<DegradedPoint>,
    /// Rebuild storms.
    pub rebuild: Vec<RebuildPoint>,
}

fn pattern(n: usize, seed: u64) -> Vec<u8> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed) >> 8) as u8)
        .collect()
}

/// The scaling-sweep widths: powers of two up to `max`, plus `max`.
fn widths(max: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut w = 1;
    while w < max {
        out.push(w);
        w *= 2;
    }
    out.push(max);
    out
}

/// `ASSASIN_ARRAY_DEVICES`: scaling-sweep device cap, default 8. A
/// set-but-malformed value is a hard error.
fn env_devices() -> usize {
    match std::env::var("ASSASIN_ARRAY_DEVICES") {
        Err(std::env::VarError::NotPresent) => 8,
        Err(e) => panic!("ASSASIN_ARRAY_DEVICES is not valid unicode: {e}"),
        Ok(s) => match s.parse::<usize>() {
            Ok(n) if (1..=64).contains(&n) => n,
            _ => panic!("invalid ASSASIN_ARRAY_DEVICES {s:?}: expected 1..=64"),
        },
    }
}

/// `ASSASIN_ARRAY_PLACEMENT`: placement for the scaling sweep, default
/// `striped`. A set-but-unknown policy is a hard error.
fn env_placement() -> String {
    match std::env::var("ASSASIN_ARRAY_PLACEMENT") {
        Err(std::env::VarError::NotPresent) => "striped".to_string(),
        Err(e) => panic!("ASSASIN_ARRAY_PLACEMENT is not valid unicode: {e}"),
        Ok(s) => match s.as_str() {
            "striped" | "replicated" | "raid4" | "raid6" => s,
            _ => panic!(
                "invalid ASSASIN_ARRAY_PLACEMENT {s:?}: \
                 expected striped, replicated, raid4, or raid6"
            ),
        },
    }
}

fn placement_by_name(name: &str) -> ArrayPlacement {
    match name {
        "striped" => ArrayPlacement::Striped,
        "replicated" => ArrayPlacement::Replicated { copies: 2 },
        "raid4" => ArrayPlacement::Raid4,
        "raid6" => ArrayPlacement::Raid6,
        other => panic!("unknown placement {other:?}"),
    }
}

fn array(devices: usize, placement: ArrayPlacement, exec: ArrayExec) -> SsdArray {
    let device = SsdConfig::engine_config(EngineKind::AssasinSb);
    let cfg = ArrayConfig::new(devices, placement, device).with_exec(exec);
    SsdArray::new(cfg).unwrap_or_else(|e| panic!("array config: {e}"))
}

fn scaling_point(
    devices: usize,
    name: &str,
    placement: ArrayPlacement,
    exec: ArrayExec,
    data: &[u8],
) -> ScalingPoint {
    let mut a = array(devices, placement, exec);
    a.store_object(1, data)
        .unwrap_or_else(|e| panic!("store: {e}"));
    let read = a.read_object(1).unwrap_or_else(|e| panic!("read: {e}"));
    let read_secs = read.elapsed.as_secs_f64();
    let scomp = a
        .scomp_object(1, bundles::scan_bundle)
        .unwrap_or_else(|e| panic!("scomp: {e}"));
    let lanes: Vec<f64> = scomp.per_device.iter().map(|l| l.simulated_gbps).collect();
    ScalingPoint {
        devices,
        placement: name.to_string(),
        read_gbps: data.len() as f64 / read_secs.max(1e-12) / 1e9,
        read_stall_frac: read.link.stalled.as_secs_f64() / read_secs.max(1e-12),
        scomp_gbps: scomp.throughput_gbps(),
        lane_gbps_min: lanes.iter().copied().fold(f64::INFINITY, f64::min),
        lane_gbps_max: lanes.iter().copied().fold(0.0, f64::max),
    }
}

fn degraded_point(
    name: &str,
    devices: usize,
    fail: &[usize],
    exec: ArrayExec,
    data: &[u8],
) -> DegradedPoint {
    let mut a = array(devices, placement_by_name(name), exec);
    a.store_object(1, data)
        .unwrap_or_else(|e| panic!("store: {e}"));
    let healthy = a.read_object(1).unwrap_or_else(|e| panic!("read: {e}"));
    for &d in fail {
        a.fail_device(d);
    }
    let degraded = a
        .read_object(1)
        .unwrap_or_else(|e| panic!("degraded read: {e}"));
    assert_eq!(degraded.data, data, "reconstruction is bit-exact");
    let healthy_ms = healthy.elapsed.as_secs_f64() * 1e3;
    let degraded_ms = degraded.elapsed.as_secs_f64() * 1e3;
    DegradedPoint {
        placement: name.to_string(),
        devices,
        failed: fail.len(),
        healthy_ms,
        degraded_ms,
        slowdown: degraded_ms / healthy_ms.max(1e-12),
        degraded_chunks: degraded.degraded_chunks,
    }
}

fn rebuild_point(
    scenario: &str,
    devices: usize,
    placement: ArrayPlacement,
    exec: ArrayExec,
    objects: &[Vec<u8>],
    fail: usize,
) -> RebuildPoint {
    let mut a = array(devices, placement, exec);
    for (i, data) in objects.iter().enumerate() {
        a.store_object(i as u64 + 1, data)
            .unwrap_or_else(|e| panic!("store {i}: {e}"));
    }
    a.fail_device(fail);
    let r = a
        .rebuild_device(fail)
        .unwrap_or_else(|e| panic!("rebuild: {e}"));
    for (i, data) in objects.iter().enumerate() {
        let read = a
            .read_object(i as u64 + 1)
            .unwrap_or_else(|e| panic!("post-rebuild read {i}: {e}"));
        assert_eq!(&read.data, data, "rebuild restored object {i} bit-exact");
    }
    let secs = r.elapsed.as_secs_f64();
    RebuildPoint {
        scenario: scenario.to_string(),
        devices,
        objects: objects.len(),
        chunks: r.chunks,
        bytes_read: r.bytes_read,
        bytes_written: r.bytes_written,
        rebuild_ms: secs * 1e3,
        stall_frac: r.link.stalled.as_secs_f64() / secs.max(1e-12),
    }
}

/// Runs the array experiment with an explicit execution mode. The
/// report is byte-identical for `Serial` and `Threaded` — that is the
/// determinism contract, and `perf_smoke` checks it on every run.
pub fn run_with(scale: &Scale, exec: ArrayExec) -> ArrayReport {
    let max_devices = env_devices();
    let sweep_placement = env_placement();
    let object_bytes = scale.scalability_bytes;
    let data = pattern(object_bytes, scale.seed);

    let mut scaling = Vec::new();
    for d in widths(max_devices) {
        let placement = placement_by_name(&sweep_placement);
        if d < placement.min_devices() {
            continue;
        }
        scaling.push(scaling_point(d, &sweep_placement, placement, exec, &data));
    }
    if max_devices >= 2 {
        // The skew row: one device weighted 4x, the rest 1x — the heavy
        // lane's longer scan dominates the offload.
        let mut weights = vec![1u32; max_devices];
        weights[0] = 4;
        scaling.push(scaling_point(
            max_devices,
            "weighted",
            ArrayPlacement::WeightedStriped { weights },
            exec,
            &data,
        ));
    }

    let degraded = vec![
        degraded_point("replicated", 3, &[0], exec, &data),
        degraded_point("raid4", 4, &[0], exec, &data),
        degraded_point("raid6", 5, &[0], exec, &data),
        degraded_point("raid6", 5, &[0, 2], exec, &data),
    ];

    // Storm 1: the full dataset split over several objects on RAID6.
    let quarters: Vec<Vec<u8>> = (0..4)
        .map(|i| pattern(object_bytes / 4, scale.seed + i))
        .collect();
    // Storm 2: skewed small objects on RAID4 — each object is a single
    // chunk, so every data chunk lands on device 0 and the failed
    // device held far more than its fair share.
    let chunk = ArrayConfig::new(
        4,
        ArrayPlacement::Raid4,
        SsdConfig::engine_config(EngineKind::AssasinSb),
    )
    .chunk_bytes;
    let smalls: Vec<Vec<u8>> = (0..8)
        .map(|i| pattern(chunk as usize, scale.seed + 100 + i))
        .collect();
    let rebuild = vec![
        rebuild_point("raid6-storm", 5, ArrayPlacement::Raid6, exec, &quarters, 1),
        rebuild_point(
            "raid4-skewed-small-objects",
            4,
            ArrayPlacement::Raid4,
            exec,
            &smalls,
            0,
        ),
    ];

    ArrayReport {
        object_bytes,
        scaling,
        degraded,
        rebuild,
    }
}

/// Runs the array experiment threaded (one worker per device, degrading
/// to serial under a 1-thread budget — the report is identical either
/// way).
pub fn run(scale: &Scale) -> ArrayReport {
    run_with(scale, ArrayExec::Threaded { workers: 8 })
}

impl fmt::Display for ArrayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Array scaling: {} B object, shared-root contention (simulated time)",
            self.object_bytes
        )?;
        let headers = vec![
            "devices",
            "placement",
            "read GB/s",
            "root queue",
            "scomp GB/s",
            "lane min",
            "lane max",
        ];
        let rows: Vec<Vec<String>> = self
            .scaling
            .iter()
            .map(|p| {
                vec![
                    p.devices.to_string(),
                    p.placement.clone(),
                    report::gbps(p.read_gbps),
                    report::ratio(p.read_stall_frac),
                    report::gbps(p.scomp_gbps),
                    report::gbps(p.lane_gbps_min),
                    report::gbps(p.lane_gbps_max),
                ]
            })
            .collect();
        write!(f, "{}", report::table(&headers, &rows))?;

        writeln!(f, "\nDegraded reads")?;
        let headers = vec![
            "placement",
            "devices",
            "failed",
            "healthy ms",
            "degraded ms",
            "slowdown",
            "degraded chunks",
        ];
        let rows: Vec<Vec<String>> = self
            .degraded
            .iter()
            .map(|p| {
                vec![
                    p.placement.clone(),
                    p.devices.to_string(),
                    p.failed.to_string(),
                    format!("{:.3}", p.healthy_ms),
                    format!("{:.3}", p.degraded_ms),
                    report::ratio(p.slowdown),
                    p.degraded_chunks.to_string(),
                ]
            })
            .collect();
        write!(f, "{}", report::table(&headers, &rows))?;

        writeln!(f, "\nRebuild storms")?;
        let headers = vec![
            "scenario",
            "devices",
            "objects",
            "chunks",
            "read B",
            "written B",
            "rebuild ms",
            "root queue",
        ];
        let rows: Vec<Vec<String>> = self
            .rebuild
            .iter()
            .map(|p| {
                vec![
                    p.scenario.clone(),
                    p.devices.to_string(),
                    p.objects.to_string(),
                    p.chunks.to_string(),
                    p.bytes_read.to_string(),
                    p.bytes_written.to_string(),
                    format!("{:.3}", p.rebuild_ms),
                    report::ratio(p.stall_frac),
                ]
            })
            .collect();
        write!(f, "{}", report::table(&headers, &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_report_is_deterministic_across_exec_modes() {
        let scale = Scale::test_scale();
        let serial = serde_json::to_string(&run_with(&scale, ArrayExec::Serial)).unwrap();
        let threaded =
            serde_json::to_string(&run_with(&scale, ArrayExec::Threaded { workers: 4 })).unwrap();
        assert_eq!(serial, threaded, "threaded report must be byte-identical");
    }

    #[test]
    fn scaling_degraded_and_rebuild_move_the_right_way() {
        let r = run_with(&Scale::test_scale(), ArrayExec::Serial);
        let one = r.scaling.first().expect("1-device row");
        let widest = r
            .scaling
            .iter()
            .rfind(|p| p.placement == "striped")
            .expect("widest striped row");
        assert!(one.devices == 1 && widest.devices == 8);
        assert!(
            widest.scomp_gbps > 2.0 * one.scomp_gbps,
            "offload scales with devices: {} vs {}",
            widest.scomp_gbps,
            one.scomp_gbps
        );
        assert!(
            widest.read_stall_frac > 0.0,
            "8 lanes outrun the shared root"
        );
        let skew = r.scaling.last().expect("weighted row");
        assert_eq!(skew.placement, "weighted");
        assert!(
            skew.lane_gbps_max > skew.lane_gbps_min,
            "skewed placement spreads lane throughput"
        );
        for p in &r.degraded {
            assert!(
                p.slowdown >= 1.0,
                "{}: degraded reads cost time",
                p.placement
            );
            assert!(p.degraded_chunks > 0);
        }
        for p in &r.rebuild {
            assert!(p.bytes_read > 0 && p.bytes_written > 0, "{}", p.scenario);
            assert!(p.rebuild_ms > 0.0);
        }
        let skewed = &r.rebuild[1];
        assert_eq!(
            skewed.chunks, 8,
            "every small object's data chunk sat on the failed device"
        );
    }
}
