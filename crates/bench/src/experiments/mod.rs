//! One module per reproduced table/figure.

pub mod ablations;
pub mod fig05;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig_array;
pub mod fig_reliability;
pub mod fig_serving;
pub mod table02;
pub mod table04;
pub mod table05;
