//! Figures 16–18: performance scalability (Section VI-D).
//!
//! The dummy byte-scan over the TPC-H dataset: compute throughput vs core
//! count (Figure 16), normalized core utilization (Figure 17), and
//! per-channel throughput balance at 8 cores (Figure 18). Paper shape:
//! linear scaling until the 8 GB/s flash bound, >98% normalized
//! utilization, balanced channels.

use crate::bundles::scan_bundle;
use crate::report;
use crate::runner::LoadedImage;
use crate::sweep;
use crate::Scale;
use assasin_core::EngineKind;
use assasin_workloads::{TableId, TpchGen};
use serde::Serialize;
use std::fmt;

/// One core-count point.
#[derive(Debug, Clone, Serialize)]
pub struct ScalePoint {
    /// Number of ASSASIN cores.
    pub cores: usize,
    /// Achieved compute throughput, GB/s (Figure 16).
    pub gbps: f64,
    /// Mean raw core utilization over the run.
    pub utilization: f64,
    /// Utilization normalized by the ideal derived from nominal
    /// bandwidths (Figure 17's normalization).
    pub normalized_utilization: f64,
}

/// The scalability report.
#[derive(Debug, Clone, Serialize)]
pub struct Fig16Report {
    /// Bytes scanned at each point.
    pub input_bytes: u64,
    /// Single-core scan rate when data is always available, GB/s
    /// (the paper's "a 1 GHz core achieves 1 GB/s").
    pub core_rate_gbps: f64,
    /// The flash array bound, GB/s.
    pub flash_bound_gbps: f64,
    /// Sweep points.
    pub points: Vec<ScalePoint>,
    /// Per-channel GB/s at the 8-core point (Figure 18).
    pub channel_gbps: Vec<f64>,
}

/// Core counts swept (the paper scales through the flash bound).
pub const CORE_COUNTS: [usize; 6] = [1, 2, 4, 8, 12, 16];

/// Runs the sweep.
pub fn run(scale: &Scale) -> Fig16Report {
    // TPC-H data, padded to the scan granularity.
    let gen = TpchGen::new(scale.sf, scale.seed);
    let mut data = gen.table(TableId::Lineitem).to_binary();
    let want = scale.scalability_bytes.next_multiple_of(8);
    while data.len() < want {
        let take = (want - data.len()).min(data.len());
        data.extend_from_within(..take);
    }
    data.truncate(want);

    // Single-core compute rate with instant data (calibration point).
    let core_rate_gbps = {
        use assasin_core::{Core, CoreConfig, SyntheticEnv};
        use assasin_kernels::{scan, AccessStyle};
        let sample = &data[..(1 << 20).min(data.len())];
        let mut env = SyntheticEnv::new(8, 4096);
        env.set_input(0, sample);
        let mut core = Core::new(
            0,
            CoreConfig::assasin_sb(),
            scan::program(AccessStyle::Stream),
            None,
        );
        core.run_to_halt(&mut env);
        sample.len() as f64 / core.cycles() as f64 // bytes/cycle == GB/s at 1 GHz
    };

    // Each core count is an independent sweep point over its own SSD, but
    // every point runs the same scan program, so the whole sweep executes
    // as one lane-batched group: the 1-, 2- and 4-core points ride in the
    // same dispatch loop as the wide points instead of each spinning its
    // own. The dataset is also identical across points, so it is loaded
    // onto flash once and every point forks a copy-on-write device off
    // the shared image. Normalization happens after reassembly (it only
    // needs the calibration constant above).
    let image = LoadedImage::precondition(std::slice::from_ref(&data))
        .unwrap_or_else(|e| panic!("scan dataset load: {e}"));
    let measured = sweep::run_lane_groups(&CORE_COUNTS, CORE_COUNTS.len(), |&cores| {
        let ssd = image.fork(EngineKind::AssasinSb, cores, false, false);
        let flash_bound_gbps = ssd.config().flash_bw() / 1e9;
        let req = image.request(scan_bundle());
        (ssd, req, flash_bound_gbps)
    });
    let mut points = Vec::new();
    let mut channel_gbps = Vec::new();
    let mut flash_bound_gbps = 8.0;
    for (&cores, (r, bound)) in CORE_COUNTS.iter().zip(measured) {
        let r = r.expect("scan completes");
        let utilization =
            r.per_core.iter().map(|c| c.utilization).sum::<f64>() / r.per_core.len().max(1) as f64;
        let secs = r.elapsed.as_secs_f64();
        let channels: Vec<f64> = r
            .channel_bytes
            .iter()
            .map(|&b| b as f64 / secs / 1e9)
            .collect();
        let gbps = r.throughput_gbps();
        flash_bound_gbps = bound;
        // Ideal utilization: what the nominal bandwidth relationship
        // between cores and channels allows (Figure 17's normalization).
        let ideal = (flash_bound_gbps / (cores as f64 * core_rate_gbps)).min(1.0);
        points.push(ScalePoint {
            cores,
            gbps,
            utilization,
            normalized_utilization: (utilization / ideal).min(1.0),
        });
        if cores == 8 {
            channel_gbps = channels;
        }
    }
    Fig16Report {
        input_bytes: data.len() as u64,
        core_rate_gbps,
        flash_bound_gbps,
        points,
        channel_gbps,
    }
}

impl Fig16Report {
    /// Skew of the per-channel throughput distribution (Figure 18 should
    /// be near zero).
    pub fn channel_skew(&self) -> f64 {
        let counts: Vec<u64> = self
            .channel_gbps
            .iter()
            .map(|&g| (g * 1e6) as u64)
            .collect();
        if counts.len() < 2 {
            return 0.0;
        }
        assasin_ftl::skew::measure_skew(&counts)
    }
}

impl fmt::Display for Fig16Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figures 16+17: scan scalability ({} MiB; core rate {} GB/s; flash bound {} GB/s)",
            self.input_bytes >> 20,
            report::gbps(self.core_rate_gbps),
            report::gbps(self.flash_bound_gbps)
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.cores.to_string(),
                    report::gbps(p.gbps),
                    format!("{:.1}%", p.utilization * 100.0),
                    format!("{:.1}%", p.normalized_utilization * 100.0),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            report::table(&["cores", "GB/s", "util", "normalized util"], &rows)
        )?;
        writeln!(f, "Figure 18: per-channel GB/s at 8 cores")?;
        let rows: Vec<Vec<String>> = self
            .channel_gbps
            .iter()
            .enumerate()
            .map(|(i, g)| vec![format!("ch{i}"), report::gbps(*g)])
            .collect();
        write!(f, "{}", report::table(&["channel", "GB/s"], &rows))?;
        writeln!(
            f,
            "channel skew = {:.4} (0 = perfectly balanced)",
            self.channel_skew()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_is_linear_then_flash_bound() {
        let mut s = Scale::test_scale();
        s.scalability_bytes = 4 << 20;
        let r = run(&s);
        let by_cores = |n: usize| r.points.iter().find(|p| p.cores == n).expect("swept").gbps;
        // Near-linear from 1 to 4 cores.
        let one = by_cores(1);
        assert!((0.8..=1.3).contains(&one), "1-core scan {one} GB/s");
        assert!(by_cores(4) > 3.0 * one, "4-core scaling");
        // Saturation: 16 cores do not help beyond the flash bound.
        assert!(by_cores(16) <= r.flash_bound_gbps * 1.02);
        assert!(by_cores(16) > r.flash_bound_gbps * 0.80);
        // Unsaturated points keep cores busy (Figure 17).
        let p1 = &r.points[0];
        assert!(
            p1.normalized_utilization > 0.9,
            "1-core normalized utilization {}",
            p1.normalized_utilization
        );
    }

    #[test]
    fn channels_stay_balanced() {
        let mut s = Scale::test_scale();
        s.scalability_bytes = 2 << 20;
        let r = run(&s);
        assert_eq!(r.channel_gbps.len(), 8);
        assert!(r.channel_skew() < 0.05, "skew {}", r.channel_skew());
    }
}
