//! Table IV: the evaluated engine configurations.

use crate::report;
use assasin_core::{CoreConfig, EngineKind};
use serde::Serialize;
use std::fmt;

/// One configuration row.
#[derive(Debug, Clone, Serialize)]
pub struct ConfigRow {
    /// Engine label.
    pub engine: String,
    /// Where storage data comes from.
    pub data_source: String,
    /// Number of engines.
    pub cores: usize,
    /// Clock frequency, GHz.
    pub freq_ghz: f64,
    /// Memory architecture summary.
    pub mem_arch: String,
}

/// The Table IV report.
#[derive(Debug, Clone, Serialize)]
pub struct Table04Report {
    /// All six configurations.
    pub rows: Vec<ConfigRow>,
}

fn mem_arch(cfg: &CoreConfig) -> String {
    let mut parts = Vec::new();
    if let Some(h) = cfg.hierarchy {
        if let Some(l1) = h.l1 {
            parts.push(format!("L1D {}KB/{}W", l1.size_bytes >> 10, l1.ways));
        }
        if let Some(l2) = h.l2 {
            parts.push(format!("L2 {}KB/{}W", l2.size_bytes >> 10, l2.ways));
        }
        if h.prefetch {
            parts.push("DCPT prefetcher".into());
        }
    }
    match cfg.kind {
        EngineKind::AssasinSp => {
            parts.push(format!("{}KB scratchpad", cfg.scratchpad_bytes >> 10));
            parts.push(format!(
                "{}KB I + {}KB O ping-pong staging",
                cfg.staging_bytes >> 10,
                cfg.staging_bytes >> 10
            ));
        }
        EngineKind::AssasinSb | EngineKind::AssasinSbCache => {
            parts.push(format!("{}KB scratchpad", cfg.scratchpad_bytes >> 10));
            let sb = cfg.streambuffer;
            parts.push(format!(
                "{}KB I + {}KB O streambuffer (S={} P={})",
                sb.capacity_bytes() >> 10,
                sb.capacity_bytes() >> 10,
                sb.streams,
                sb.pages_per_stream
            ));
        }
        EngineKind::Udp => {
            parts.push(format!("{}KB lane scratchpad", cfg.scratchpad_bytes >> 10));
        }
        _ => {}
    }
    parts.join(", ")
}

/// Builds the table.
pub fn run() -> Table04Report {
    let rows = EngineKind::ALL
        .into_iter()
        .map(|kind| {
            let cfg = CoreConfig::for_kind(kind);
            ConfigRow {
                engine: kind.label().to_string(),
                data_source: if kind.bypasses_dram() {
                    "Flash (streambuffer/staging)".into()
                } else {
                    "DRAM (8GB/s)".into()
                },
                cores: 8,
                freq_ghz: cfg.clock.freq_hz() / 1e9,
                mem_arch: mem_arch(&cfg),
            }
        })
        .collect();
    Table04Report { rows }
}

impl fmt::Display for Table04Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table IV: configurations of in-SSD compute engines")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.engine.clone(),
                    r.data_source.clone(),
                    r.cores.to_string(),
                    format!("{:.1} GHz", r.freq_ghz),
                    r.mem_arch.clone(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            report::table(
                &["engine", "data source", "#", "freq", "memory architecture"],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_shapes() {
        let t = run();
        assert_eq!(t.rows.len(), 6);
        let sb = t.rows.iter().find(|r| r.engine == "AssasinSb").unwrap();
        assert!(sb.mem_arch.contains("S=8 P=2"));
        assert!(sb.data_source.contains("Flash"));
        let base = t.rows.iter().find(|r| r.engine == "Baseline").unwrap();
        assert!(base.mem_arch.contains("L2 256KB/16W"));
    }
}
