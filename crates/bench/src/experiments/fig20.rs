//! Figure 20: memory-structure timing (Section VI-F).

use crate::report;
use assasin_power::timing::{clock_plan, fig20_series, TimingPoint};
use serde::Serialize;
use std::fmt;

/// The Figure 20 report.
#[derive(Debug, Clone, Serialize)]
pub struct Fig20Report {
    /// Access-time points.
    pub points: Vec<Point>,
    /// Streambuffer-based clock period, ps (Section VI-F: 890).
    pub sb_period_ps: u64,
    /// Scratchpad-based clock period, ps (1000, with 2-cycle accesses).
    pub sp_period_ps: u64,
}

/// Serializable mirror of [`TimingPoint`].
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Structure label.
    pub label: String,
    /// Access time, ns.
    pub access_ns: f64,
    /// Cycles at 1 GHz.
    pub cycles: u32,
}

/// Runs (computes) the figure.
pub fn run() -> Fig20Report {
    let points = fig20_series()
        .into_iter()
        .map(
            |TimingPoint {
                 label,
                 access_ns,
                 cycles_at_1ghz,
                 ..
             }| Point {
                label,
                access_ns,
                cycles: cycles_at_1ghz,
            },
        )
        .collect();
    Fig20Report {
        points,
        sb_period_ps: clock_plan(true).period_ps,
        sp_period_ps: clock_plan(false).period_ps,
    }
}

impl fmt::Display for Fig20Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 20: memory-structure access timing (SAED14-calibrated model)"
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.label.clone(),
                    format!("{:.2}", p.access_ns),
                    p.cycles.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            report::table(&["structure", "access ns", "cycles @1GHz"], &rows)
        )?;
        writeln!(
            f,
            "clock: streambuffer design {} ps (11% faster); scratchpad design {} ps with 2-cycle SP access",
            self.sb_period_ps, self.sp_period_ps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_carries_the_paper_anchors() {
        let r = run();
        assert_eq!(r.sb_period_ps, 890);
        let sb64 = r
            .points
            .iter()
            .find(|p| p.label.contains("SB head (64B)"))
            .unwrap();
        assert!(sb64.access_ns <= 0.55);
        let sp = r
            .points
            .iter()
            .find(|p| p.label.contains("SP 64KB (8B)"))
            .unwrap();
        assert_eq!(sp.cycles, 2);
    }
}
