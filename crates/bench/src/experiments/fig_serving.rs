//! Serving experiment: tail latency, admission control, and fairness
//! when N tenants share one computational SSD (DESIGN.md §16).
//!
//! Everything here is *simulated* time from the serving front-end's
//! virtual clock, so the report is byte-identical across runs, thread
//! counts, and machines (pinned by a determinism test and the serve
//! crate's property suite). Three scenarios over one device loaded with
//! a `standalone_bytes` object and two registered workloads (scan and
//! stat):
//!
//! 1. **Load curve** — tenants offer 0.5x..4x of the device's measured
//!    capacity; per-tenant p50/p99 stay near the service time below
//!    saturation, then queueing dominates and admission control starts
//!    rejecting at the configured queue depth. This is the classic
//!    tail-latency-vs-offered-load curve, per tenant.
//! 2. **Fairness** — one hog tenant offers 2x capacity alone while two
//!    victims offer 0.25x each; the same mix runs unweighted and with
//!    the victims weighted 4x. Weighted-fair scheduling pulls the
//!    victims' tail back near their no-contention latency at the hog's
//!    expense.
//! 3. **Closed loop** — a fleet of clients that wait for each response
//!    before resubmitting; offered load self-throttles to capacity, so
//!    nothing is rejected and utilization approaches 1.
//!
//! Serving knobs: `ASSASIN_SERVE_TENANTS` (load-curve tenants, default
//! 2), `ASSASIN_SERVE_DEPTH` (per-tenant queue depth, default 16),
//! `ASSASIN_SERVE_SEED` (load-generator seed, default the scale's), and
//! `ASSASIN_SERVE_ARRIVAL` (`open`/`closed` load-curve arrivals, default
//! `open`). Malformed values are hard errors, not silent defaults.

use crate::bundles;
use crate::report;
use crate::Scale;
use assasin_core::EngineKind;
use assasin_serve::{
    arrival_from_env, depth_from_env, seed_from_env, serve, tenants_from_env, ArrivalKind,
    ArrivalModel, Instance, ServeConfig, ServeReport, SsdInstance, TenantReport, TenantSpec,
};
use assasin_sim::SimDur;
use assasin_ssd::{ScompRequest, Ssd, SsdConfig};
use serde::Serialize;
use std::fmt;

/// Offered-load multipliers for the load curve (x the measured
/// single-request capacity).
pub const LOAD_MULTIPLIERS: [f64; 5] = [0.5, 0.8, 1.2, 2.0, 4.0];

/// Requests each load-curve tenant offers per point.
const REQUESTS_PER_TENANT: u32 = 50;

/// One offered-load point.
#[derive(Debug, Clone, Serialize)]
pub struct LoadPoint {
    /// Aggregate offered load as a multiple of device capacity.
    pub offered_x: f64,
    /// Per-tenant mean inter-arrival gap, simulated microseconds.
    pub mean_gap_us: f64,
    /// Device busy fraction over the point's makespan.
    pub utilization: Option<f64>,
    /// Simulated span of the point, microseconds.
    pub makespan_us: f64,
    /// Per-tenant SLO rows (p50/p99/max, rejections, violations).
    pub tenants: Vec<TenantReport>,
}

/// One fairness scheme's outcome (same offered load, different weights).
#[derive(Debug, Clone, Serialize)]
pub struct FairnessRow {
    /// Scheme name.
    pub scheme: String,
    /// The hog tenant's row.
    pub hog: TenantReport,
    /// The victim tenants' rows.
    pub victims: Vec<TenantReport>,
}

/// The serving experiment report.
#[derive(Debug, Clone, Serialize)]
pub struct ServingReport {
    /// Load-generator seed.
    pub seed: u64,
    /// Load-curve tenants.
    pub tenants: usize,
    /// Per-tenant admission-control queue depth.
    pub queue_depth: usize,
    /// Load-curve arrival shape (`open` or `closed`).
    pub arrival: String,
    /// Measured single-request service time of the scan workload,
    /// simulated microseconds (the capacity the multipliers scale).
    pub base_service_us: f64,
    /// Tail latency and rejections vs offered load.
    pub load_curve: Vec<LoadPoint>,
    /// Unweighted vs weighted outcomes under a hog tenant.
    pub fairness: Vec<FairnessRow>,
    /// The closed-loop self-throttling run.
    pub closed_loop: ServeReport,
}

fn pattern(n: usize, seed: u64) -> Vec<u8> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed) >> 8) as u8)
        .collect()
}

/// One device, loaded once, serving a scan and a stat workload.
fn build_instance(scale: &Scale) -> SsdInstance {
    let mut inst = SsdInstance::new(Ssd::new(SsdConfig::engine_config(EngineKind::AssasinSb)));
    let data = pattern(scale.standalone_bytes, scale.seed);
    let bytes = data.len() as u64;
    let lpas = inst
        .ssd_mut()
        .load_object(0, &data)
        .unwrap_or_else(|e| panic!("serving: load object: {e}"));
    let scan_lpas = lpas.clone();
    inst.register("scan", move || {
        ScompRequest::new(bundles::scan_bundle(), vec![scan_lpas.clone()])
            .with_stream_bytes(vec![bytes])
    });
    inst.register("stat", move || {
        ScompRequest::new(bundles::stat_bundle(), vec![lpas.clone()]).with_stream_bytes(vec![bytes])
    });
    inst
}

/// Load-curve arrival model at one offered multiplier: open loop fixes
/// the aggregate rate at `mult * capacity` across `tenants`; closed loop
/// scales the client fleet instead (and self-throttles at capacity).
fn arrival_at(mult: f64, tenants: usize, base: SimDur, kind: ArrivalKind) -> ArrivalModel {
    match kind {
        ArrivalKind::Open => ArrivalModel::Open {
            mean_gap: SimDur::from_ps((base.as_ps() as f64 * tenants as f64 / mult) as u64),
            requests: REQUESTS_PER_TENANT,
        },
        ArrivalKind::Closed => {
            let concurrency = ((2.0 * mult).round() as u32).max(1);
            ArrivalModel::Closed {
                concurrency,
                think: base,
                requests_per_client: (REQUESTS_PER_TENANT / concurrency).max(1),
            }
        }
    }
}

fn run_serving(instance: &mut SsdInstance, cfg: &ServeConfig) -> ServeReport {
    serve(instance, cfg).unwrap_or_else(|e| panic!("serving run: {e}"))
}

/// Runs the serving experiment.
pub fn run(scale: &Scale) -> ServingReport {
    let tenants = tenants_from_env().unwrap_or(2);
    let queue_depth = depth_from_env().unwrap_or(16);
    let seed = seed_from_env().unwrap_or(scale.seed);
    let arrival = arrival_from_env().unwrap_or(ArrivalKind::Open);

    let mut instance = build_instance(scale);
    // Capacity calibration: one genuine execution of the scan workload
    // (the device quiesces per request, so this is side-effect-free).
    let base = instance
        .execute(0)
        .unwrap_or_else(|e| panic!("serving: calibration: {e}"))
        .elapsed;
    let slo = base * 5;

    // Scenario 1: the load curve.
    let load_curve = LOAD_MULTIPLIERS
        .iter()
        .map(|&mult| {
            let specs = (0..tenants)
                .map(|i| {
                    // Alternate scan-heavy and stat-heavy mixes so the
                    // tenants are not interchangeable.
                    let mix = if i % 2 == 0 {
                        vec![(0, 3), (1, 1)]
                    } else {
                        vec![(0, 1), (1, 3)]
                    };
                    TenantSpec::new(
                        format!("tenant{i}"),
                        queue_depth,
                        arrival_at(mult, tenants, base, arrival),
                    )
                    .with_mix(mix)
                    .with_slo(slo)
                })
                .collect();
            let r = run_serving(&mut instance, &ServeConfig::new(seed, specs));
            LoadPoint {
                offered_x: mult,
                mean_gap_us: base.as_ps() as f64 * tenants as f64 / mult * 1e-6,
                utilization: r.utilization,
                makespan_us: r.makespan_us,
                tenants: r.tenants,
            }
        })
        .collect();

    // Scenario 2: fairness under a hog. Same offered load both times;
    // only the weights change. The victims offer 0.4x capacity each —
    // enough that they stay backlogged under contention, which is the
    // regime where weights bite: an unweighted 1/3 share starves them
    // (their queues grow for the whole run) while a 4x weight grants
    // 4/9 > 0.4 and their tails collapse back toward the service time.
    let fairness = [("unweighted", 1u32), ("victims-weighted-4x", 4)]
        .iter()
        .map(|&(scheme, victim_weight)| {
            let hog = TenantSpec::new(
                "hog",
                queue_depth,
                ArrivalModel::Open {
                    mean_gap: base / 2,
                    requests: 80,
                },
            )
            .with_slo(slo);
            let victim = |name: &str| {
                TenantSpec::new(
                    name,
                    queue_depth,
                    ArrivalModel::Open {
                        mean_gap: base * 5 / 2,
                        requests: 24,
                    },
                )
                .with_mix(vec![(1, 1)])
                .with_weight(victim_weight)
                .with_slo(slo)
            };
            let cfg = ServeConfig::new(seed, vec![hog, victim("victim0"), victim("victim1")]);
            let mut r = run_serving(&mut instance, &cfg);
            let victims = r.tenants.split_off(1);
            FairnessRow {
                scheme: scheme.to_string(),
                hog: r.tenants.pop().expect("hog row"),
                victims,
            }
        })
        .collect();

    // Scenario 3: the closed loop.
    let closed_cfg = ServeConfig::new(
        seed,
        vec![TenantSpec::new(
            "closed",
            queue_depth.max(8),
            ArrivalModel::Closed {
                concurrency: 8,
                think: base,
                requests_per_client: 8,
            },
        )
        .with_mix(vec![(0, 1), (1, 1)])
        .with_slo(slo)],
    );
    let closed_loop = run_serving(&mut instance, &closed_cfg);

    ServingReport {
        seed,
        tenants,
        queue_depth,
        arrival: match arrival {
            ArrivalKind::Open => "open".to_string(),
            ArrivalKind::Closed => "closed".to_string(),
        },
        base_service_us: base.as_ps() as f64 * 1e-6,
        load_curve,
        fairness,
        closed_loop,
    }
}

fn opt_us(v: Option<f64>) -> String {
    v.map_or("-".to_string(), |us| format!("{us:.1}"))
}

impl fmt::Display for ServingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Serving: {} tenants, depth {}, {} arrivals, {:.1} us/request capacity (seed {:#x})",
            self.tenants, self.queue_depth, self.arrival, self.base_service_us, self.seed
        )?;
        let headers = vec![
            "offered x",
            "tenant",
            "p50 us",
            "p99 us",
            "max us",
            "rejected",
            "SLO viol",
            "util",
        ];
        let rows: Vec<Vec<String>> = self
            .load_curve
            .iter()
            .flat_map(|p| {
                p.tenants.iter().map(move |t| {
                    vec![
                        format!("{:.1}", p.offered_x),
                        t.name.clone(),
                        opt_us(t.p50_us),
                        opt_us(t.p99_us),
                        opt_us(t.max_us),
                        format!("{}/{}", t.rejected, t.submitted),
                        t.slo_violations.to_string(),
                        p.utilization.map_or("-".into(), report::ratio),
                    ]
                })
            })
            .collect();
        write!(f, "{}", report::table(&headers, &rows))?;

        writeln!(f, "\nFairness under a 2x-capacity hog")?;
        let headers = vec!["scheme", "tenant", "weight", "p50 us", "p99 us", "rejected"];
        let rows: Vec<Vec<String>> = self
            .fairness
            .iter()
            .flat_map(|row| {
                std::iter::once(&row.hog)
                    .chain(row.victims.iter())
                    .map(move |t| {
                        vec![
                            row.scheme.clone(),
                            t.name.clone(),
                            t.weight.to_string(),
                            opt_us(t.p50_us),
                            opt_us(t.p99_us),
                            format!("{}/{}", t.rejected, t.submitted),
                        ]
                    })
            })
            .collect();
        write!(f, "{}", report::table(&headers, &rows))?;

        let c = &self.closed_loop.tenants[0];
        writeln!(
            f,
            "\nClosed loop: {} clients completed {}/{} requests, p99 {} us, \
             0 rejections expected (got {}), utilization {}",
            8,
            c.completed,
            c.submitted,
            opt_us(c.p99_us),
            c.rejected,
            self.closed_loop
                .utilization
                .map_or("-".into(), report::ratio),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_curve_fairness_and_closed_loop_move_the_right_way() {
        let r = run(&Scale::test_scale());
        assert!(r.base_service_us > 0.0);
        assert_eq!(r.load_curve.len(), LOAD_MULTIPLIERS.len());

        // Below saturation: p99 near the service time, nothing rejected.
        let low = &r.load_curve[0];
        let high = r.load_curve.last().unwrap();
        for t in &low.tenants {
            assert_eq!(t.rejected, 0, "0.5x load never overflows depth 16");
            assert!(t.completed > 0);
        }
        // Past saturation: queueing inflates the tail and admission
        // control engages.
        let low_p99 = low.tenants[0].p99_us.unwrap();
        let high_p99 = high.tenants[0].p99_us.unwrap();
        assert!(
            high_p99 > 2.0 * low_p99,
            "tail grows with load: {low_p99} -> {high_p99}"
        );
        assert!(
            high.tenants.iter().any(|t| t.rejected > 0),
            "4x offered load must hit the queue bound"
        );
        assert!(high.utilization.unwrap() > low.utilization.unwrap());

        // Weights pull the victims' tail down under the same hog.
        let unweighted = &r.fairness[0];
        let weighted = &r.fairness[1];
        let worst = |row: &FairnessRow| {
            row.victims
                .iter()
                .map(|v| v.p99_us.unwrap())
                .fold(0.0, f64::max)
        };
        assert!(
            worst(weighted) < worst(unweighted),
            "weighted victims p99 {} vs unweighted {}",
            worst(weighted),
            worst(unweighted)
        );

        // Closed loop self-throttles: every attempt admitted and served.
        let c = &r.closed_loop.tenants[0];
        assert_eq!(c.submitted, 64);
        assert_eq!(c.rejected, 0);
        assert_eq!(c.completed, 64);
        assert!(r.closed_loop.utilization.unwrap() <= 1.0);
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let a = serde_json::to_string(&run(&Scale::test_scale())).unwrap();
        let b = serde_json::to_string(&run(&Scale::test_scale())).unwrap();
        assert_eq!(a, b);
    }
}
