//! Figure 22: power and area efficiency (Section VI-G).
//!
//! Speedups come from the timing-adjusted runs (Figure 21); budgets from
//! the component models (Table V). Paper shape: AssasinSb reaches ~2.0x
//! power efficiency and ~3.2x area efficiency over Baseline and beats the
//! UDP accelerator.

use crate::experiments::fig21::Fig21Report;
use crate::report;
use assasin_core::EngineKind;
use assasin_power::efficiency::figure22;
use serde::Serialize;
use std::fmt;

/// One engine's efficiency entry.
#[derive(Debug, Clone, Serialize)]
pub struct Entry {
    /// Engine label.
    pub engine: String,
    /// Speedup over Baseline (GeoMean over workloads, adjusted timing).
    pub speedup: f64,
    /// Power in mW per engine.
    pub power_mw: f64,
    /// Area in mm² per engine.
    pub area_mm2: f64,
    /// Speedup per unit power vs Baseline.
    pub power_efficiency: f64,
    /// Speedup per unit area vs Baseline.
    pub area_efficiency: f64,
}

/// The Figure 22 report.
#[derive(Debug, Clone, Serialize)]
pub struct Fig22Report {
    /// Entries for Baseline, UDP, AssasinSp, AssasinSb.
    pub entries: Vec<Entry>,
}

/// Computes the figure from adjusted-timing speedups.
pub fn run(fig21: &Fig21Report) -> Fig22Report {
    let speedups = [
        (EngineKind::Baseline, 1.0),
        (EngineKind::Udp, fig21.udp_geomean_speedup),
        (EngineKind::AssasinSp, fig21.sp_geomean_speedup),
        (EngineKind::AssasinSb, fig21.sb_geomean_speedup),
    ];
    let entries = figure22(&speedups)
        .into_iter()
        .map(|e| {
            let (p, a) = assasin_power::components::engine_budget(e.kind);
            Entry {
                engine: e.kind.label().to_string(),
                speedup: e.speedup,
                power_mw: p,
                area_mm2: a,
                power_efficiency: e.power_efficiency,
                area_efficiency: e.area_efficiency,
            }
        })
        .collect();
    Fig22Report { entries }
}

impl Fig22Report {
    /// Finds one engine's entry.
    pub fn entry(&self, engine: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.engine == engine)
    }
}

impl fmt::Display for Fig22Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 22: efficiency relative to Baseline (adjusted speedups)"
        )?;
        let rows: Vec<Vec<String>> = self
            .entries
            .iter()
            .map(|e| {
                vec![
                    e.engine.clone(),
                    report::ratio(e.speedup),
                    format!("{:.1}", e.power_mw),
                    format!("{:.3}", e.area_mm2),
                    report::ratio(e.power_efficiency),
                    report::ratio(e.area_efficiency),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            report::table(
                &["engine", "speedup", "mW", "mm2", "power eff", "area eff"],
                &rows
            )
        )?;
        writeln!(
            f,
            "paper: AssasinSb ~2.0x power and ~3.2x area efficiency, above UDP"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig21;
    use crate::Scale;

    #[test]
    fn assasin_beats_baseline_and_udp_on_efficiency() {
        // Medium input sizes: large enough to amortize per-request startup
        // (which the analytical UDP path does not pay), small enough for CI.
        let scale = Scale {
            standalone_bytes: 1 << 20,
            aes_bytes: 64 << 10,
            sf: 0.004,
            scalability_bytes: 1 << 20,
            seed: 0xA55A,
        };
        let f21 = fig21::run(&scale);
        let r = run(&f21);
        let sb = r.entry("AssasinSb").unwrap();
        assert!(
            sb.power_efficiency > 1.3,
            "power eff {}",
            sb.power_efficiency
        );
        assert!(sb.area_efficiency > 2.0, "area eff {}", sb.area_efficiency);
        let udp = r.entry("UDP").unwrap();
        assert!(
            sb.power_efficiency > udp.power_efficiency,
            "ASSASIN with general-purpose cores must beat the UDP accelerator"
        );
        assert!(sb.area_efficiency > udp.area_efficiency);
    }
}
