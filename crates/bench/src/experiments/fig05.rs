//! Section III motivating example + Figure 5 cycle decomposition.
//!
//! One Baseline core running the Filter function over TPC-H lineitem
//! tuples staged in SSD DRAM. The paper reports 0.63 GB/s — far below a
//! flash channel — with the cycle decomposition dominated by memory
//! stalls, and derives a >= 25.6 GB/s DRAM requirement at 12.8 GB/s flash.

use crate::bundles::filter_bundle;
use crate::report;
use crate::runner::{offload, ssd_with};
use crate::sweep;
use crate::Scale;
use assasin_core::EngineKind;
use assasin_kernels::query::FilterParams;
use assasin_workloads::{lineitem_cols, TableId, TpchGen};
use serde::Serialize;
use std::fmt;

/// The filter the motivating example runs: one-year shipdate window.
pub fn motivating_filter() -> FilterParams {
    FilterParams {
        tuple_words: TableId::Lineitem.width() as u32,
        pred_word: lineitem_cols::SHIPDATE,
        lo: 365,
        hi: 730,
    }
}

/// The report for the Section III example.
#[derive(Debug, Clone, Serialize)]
pub struct Fig05Report {
    /// Single-core Baseline filter throughput, GB/s (paper: 0.63).
    pub throughput_gbps: f64,
    /// Fraction of cycles retiring instructions.
    pub busy_frac: f64,
    /// Fraction stalled on L1 latency.
    pub l1_frac: f64,
    /// Fraction stalled on L2 hits.
    pub l2_frac: f64,
    /// Fraction stalled on DRAM (compulsory misses of streaming data).
    pub dram_frac: f64,
    /// DRAM traffic per input byte on the Baseline data path (paper: 2x ->
    /// the 25.6 GB/s requirement at 12.8 GB/s flash).
    pub dram_traffic_per_byte: f64,
    /// The implied DRAM bandwidth requirement at 12.8 GB/s flash, GB/s.
    pub dram_requirement_gbps: f64,
}

/// Runs the experiment — a single-point sweep (one core, one workload).
pub fn run(scale: &Scale) -> Fig05Report {
    let gen = TpchGen::new(scale.sf.max(0.002), scale.seed);
    let data = gen.table(TableId::Lineitem).to_binary();
    let point = sweep::SweepPoint::new("filter", EngineKind::Baseline).cores(1);
    let result = sweep::run_points(&[point], |p| {
        let mut ssd = ssd_with(p.engine, p.n_cores, p.adjusted, p.channel_local);
        offload(
            &mut ssd,
            filter_bundle(motivating_filter()),
            std::slice::from_ref(&data),
        )
        .expect("filter offload completes")
    })
    .pop()
    .expect("one point");
    let b = result.total_breakdown();
    let total = b.total().max(1) as f64;
    let per_byte = result.dram_per_input_byte();
    Fig05Report {
        throughput_gbps: result.throughput_gbps(),
        busy_frac: b.busy as f64 / total,
        l1_frac: b.stall_l1 as f64 / total,
        l2_frac: b.stall_l2 as f64 / total,
        dram_frac: (b.stall_dram + b.stall_stream) as f64 / total,
        dram_traffic_per_byte: per_byte,
        dram_requirement_gbps: per_byte * 12.8,
    }
}

impl fmt::Display for Fig05Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Section III example: Filter on 1 Baseline core = {} GB/s (paper: 0.63 GB/s)",
            report::gbps(self.throughput_gbps)
        )?;
        writeln!(f, "Figure 5 cycle decomposition:")?;
        let rows = vec![
            vec![
                "busy".to_string(),
                format!("{:.1}%", self.busy_frac * 100.0),
            ],
            vec![
                "L1 stall".to_string(),
                format!("{:.1}%", self.l1_frac * 100.0),
            ],
            vec![
                "L2 stall".to_string(),
                format!("{:.1}%", self.l2_frac * 100.0),
            ],
            vec![
                "DRAM stall".to_string(),
                format!("{:.1}%", self.dram_frac * 100.0),
            ],
        ];
        write!(f, "{}", report::table(&["component", "cycles"], &rows))?;
        writeln!(
            f,
            "DRAM traffic: {:.2} bytes/byte -> {} GB/s DRAM needed at 12.8 GB/s flash (paper: >= 25.6)",
            self.dram_traffic_per_byte,
            report::gbps(self.dram_requirement_gbps)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_wall_shows_up() {
        let r = run(&Scale::test_scale());
        // Well below a flash channel (1.6-3.2 GB/s)...
        assert!(r.throughput_gbps < 1.6, "throughput {}", r.throughput_gbps);
        // ... dominated by memory stalls ...
        assert!(
            r.dram_frac + r.l2_frac > r.busy_frac,
            "memory stalls must dominate: busy {} l2 {} dram {}",
            r.busy_frac,
            r.l2_frac,
            r.dram_frac
        );
        // ... with ~2x DRAM traffic (staging + compute reads).
        assert!(
            (1.5..=3.0).contains(&r.dram_traffic_per_byte),
            "traffic {}",
            r.dram_traffic_per_byte
        );
        assert!(r.dram_requirement_gbps > 16.0);
    }
}
