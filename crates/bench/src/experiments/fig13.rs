//! Figure 13: standalone-function throughput across the six engines.
//!
//! Stat, RAID4, RAID6 and AES over a flat binary array, in increasing
//! compute intensity. Paper shape: AssasinSp/Sb deliver 1.3–2.0x over
//! Baseline on the first three (memory-bound) functions, Sb beats Sp by
//! ~10% via the stream ISA, Sb == Sb$ (state fits the scratchpad), and the
//! advantage shrinks as compute intensity grows (AES).

use crate::bundles;
use crate::report;
use crate::runner::LoadedImage;
use crate::sweep;
use crate::Scale;
use assasin_core::EngineKind;
use serde::Serialize;
use std::fmt;

/// One engine's measurement for one function.
#[derive(Debug, Clone, Serialize)]
pub struct Entry {
    /// Engine label (Table IV).
    pub engine: String,
    /// Input throughput, GB/s.
    pub gbps: f64,
    /// Speedup over Baseline.
    pub speedup: f64,
    /// DRAM bytes moved per input byte.
    pub dram_per_byte: f64,
}

/// One function's row of entries.
#[derive(Debug, Clone, Serialize)]
pub struct FunctionRow {
    /// Function name.
    pub name: String,
    /// Entries in Table IV engine order.
    pub entries: Vec<Entry>,
}

/// The Figure 13 (or 21, when adjusted) report.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13Report {
    /// Whether Section VI-F timing adjustment was applied.
    pub adjusted: bool,
    /// Per-function results.
    pub functions: Vec<FunctionRow>,
}

fn pattern(n: usize, salt: u64) -> Vec<u8> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(salt) >> 8) as u8)
        .collect()
}

/// The standalone workloads: `(name, input streams)`.
pub fn workloads(scale: &Scale) -> Vec<(&'static str, Vec<Vec<u8>>)> {
    let n = scale.standalone_bytes;
    vec![
        ("stat", vec![pattern(n, 1)]),
        ("raid4", (0..4).map(|s| pattern(n / 4, 10 + s)).collect()),
        ("raid6", (0..4).map(|s| pattern(n / 8, 20 + s)).collect()),
        ("aes", vec![pattern(scale.aes_bytes, 30)]),
    ]
}

fn bundle_for(name: &str) -> assasin_ssd::KernelBundle {
    match name {
        "stat" => bundles::stat_bundle(),
        "raid4" => bundles::raid4_bundle(),
        "raid6" => bundles::raid6_bundle(),
        "aes" => bundles::aes_bundle(),
        other => panic!("unknown standalone function {other}"),
    }
}

/// Runs the standalone sweep (shared by Figures 13 and 21).
///
/// Every (function, engine) pair is an independent sweep point; speedups
/// over Baseline are derived after reassembly (`EngineKind::ALL` puts
/// Baseline first in each row). Points sharing a workload share a flash
/// load: each function's streams are preconditioned onto one device image
/// and every engine point forks a copy-on-write device off it, instead of
/// re-loading the same bytes six times.
pub fn run_with(scale: &Scale, adjusted: bool) -> Fig13Report {
    let wl = workloads(scale);
    let indices: Vec<usize> = (0..wl.len()).collect();
    let points = sweep::grid(&indices, &EngineKind::ALL);
    let measured = sweep::run_forked(
        &points,
        |&(wi, _)| wi,
        |&(wi, _)| {
            let (name, streams) = &wl[wi];
            LoadedImage::precondition(streams).unwrap_or_else(|e| panic!("{name} load: {e}"))
        },
        |&(wi, engine), image| {
            let name = wl[wi].0;
            let r = image
                .offload(engine, adjusted, bundle_for(name))
                .unwrap_or_else(|e| panic!("{name} on {engine:?}: {e}"));
            (r.throughput_gbps(), r.dram_per_input_byte())
        },
    );
    let functions = sweep::rows_of(measured, EngineKind::ALL.len())
        .into_iter()
        .zip(&wl)
        .map(|(row, (name, _))| {
            let baseline_gbps = row[0].0;
            let entries = EngineKind::ALL
                .iter()
                .zip(row)
                .map(|(engine, (gbps, dram_per_byte))| Entry {
                    engine: engine.label().to_string(),
                    gbps,
                    speedup: if baseline_gbps > 0.0 {
                        gbps / baseline_gbps
                    } else {
                        0.0
                    },
                    dram_per_byte,
                })
                .collect();
            FunctionRow {
                name: name.to_string(),
                entries,
            }
        })
        .collect();
    Fig13Report {
        adjusted,
        functions,
    }
}

/// Runs Figure 13 (nominal timing).
pub fn run(scale: &Scale) -> Fig13Report {
    run_with(scale, false)
}

impl Fig13Report {
    /// The speedup of `engine` over Baseline for `function`.
    pub fn speedup(&self, function: &str, engine: &str) -> Option<f64> {
        self.functions
            .iter()
            .find(|f| f.name == function)?
            .entries
            .iter()
            .find(|e| e.engine == engine)
            .map(|e| e.speedup)
    }
}

impl fmt::Display for Fig13Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let title = if self.adjusted {
            "Figure 21 (standalone, timing-adjusted)"
        } else {
            "Figure 13: standalone function throughput (GB/s)"
        };
        writeln!(f, "{title}")?;
        let mut headers = vec!["function"];
        if let Some(first) = self.functions.first() {
            for e in &first.entries {
                headers.push(Box::leak(e.engine.clone().into_boxed_str()));
            }
        }
        let rows: Vec<Vec<String>> =
            self.functions
                .iter()
                .map(|row| {
                    let mut cells = vec![row.name.clone()];
                    cells.extend(row.entries.iter().map(|e| {
                        format!("{} ({})", report::gbps(e.gbps), report::ratio(e.speedup))
                    }));
                    cells
                })
                .collect();
        write!(f, "{}", report::table(&headers, &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure13_shape_holds() {
        let r = run(&Scale::test_scale());
        // Memory-bound functions: ASSASIN wins clearly.
        for func in ["stat", "raid4"] {
            let sb = r.speedup(func, "AssasinSb").unwrap();
            assert!(sb > 1.25, "{func}: Sb speedup {sb}");
            let sp = r.speedup(func, "AssasinSp").unwrap();
            assert!(sb >= sp * 0.99, "{func}: Sb ({sb}) >= Sp ({sp})");
        }
        // Sb == Sb$ when state fits the scratchpad.
        for func in ["stat", "raid4", "raid6", "aes"] {
            let sb = r.speedup(func, "AssasinSb").unwrap();
            let sbc = r.speedup(func, "AssasinSb$").unwrap();
            assert!((sb - sbc).abs() / sb < 0.05, "{func}: Sb {sb} vs Sb$ {sbc}");
        }
        // Compute intensity shrinks the benefit: AES speedup below stat's.
        let aes = r.speedup("aes", "AssasinSb").unwrap();
        let stat = r.speedup("stat", "AssasinSb").unwrap();
        assert!(aes < stat, "aes {aes} < stat {stat}");
        assert!(aes >= 0.95, "aes at least matches baseline, got {aes}");
    }
}
