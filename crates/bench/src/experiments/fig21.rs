//! Figure 21: throughput after the Section VI-F timing adjustment.
//!
//! The Figure 13 and 14 sweeps re-run with adjusted clocks: AssasinSb(\$)
//! at a 0.89 ns period, AssasinSp with 2-cycle scratchpads. Paper shape:
//! Sb improves to 1.5–2.4x over Baseline; Sp degrades to 1.1–1.4x.

use crate::experiments::{fig13, fig14};
use crate::Scale;
use assasin_sim::stats::geomean;
use serde::Serialize;
use std::fmt;

/// The Figure 21 report: adjusted standalone + PSF sweeps.
#[derive(Debug, Clone, Serialize)]
pub struct Fig21Report {
    /// Adjusted standalone results.
    pub standalone: fig13::Fig13Report,
    /// Adjusted PSF results.
    pub psf: fig14::Fig14Report,
    /// GeoMean AssasinSb speedup across all five workloads (the Figure 22
    /// input).
    pub sb_geomean_speedup: f64,
    /// GeoMean AssasinSp speedup.
    pub sp_geomean_speedup: f64,
    /// GeoMean UDP speedup.
    pub udp_geomean_speedup: f64,
}

/// Runs both adjusted sweeps.
pub fn run(scale: &Scale) -> Fig21Report {
    let standalone = fig13::run_with(scale, true);
    let psf = fig14::run_with(scale, true);
    let collect = |engine: &str| {
        let mut v: Vec<f64> = standalone
            .functions
            .iter()
            .filter_map(|f| standalone.speedup(&f.name, engine))
            .collect();
        if let Some(s) = psf.speedup(engine) {
            v.push(s);
        }
        geomean(&v).unwrap_or(0.0)
    };
    Fig21Report {
        sb_geomean_speedup: collect("AssasinSb"),
        sp_geomean_speedup: collect("AssasinSp"),
        udp_geomean_speedup: collect("UDP"),
        standalone,
        psf,
    }
}

impl fmt::Display for Fig21Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 21: timing-adjusted throughput")?;
        writeln!(f, "{}", self.standalone)?;
        writeln!(f, "{}", self.psf)?;
        writeln!(
            f,
            "GeoMean speedups over Baseline: AssasinSb {:.2}x (paper band 1.5-2.4x across workloads), AssasinSp {:.2}x (paper 1.1-1.4x), UDP {:.2}x",
            self.sb_geomean_speedup, self.sp_geomean_speedup, self.udp_geomean_speedup
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjustment_helps_sb_and_hurts_sp() {
        let scale = Scale::test_scale();
        let nominal = fig13::run_with(&scale, false);
        let adjusted = fig13::run_with(&scale, true);
        // On memory-bound functions Sb gains from the faster clock.
        let n = nominal.speedup("raid6", "AssasinSb").unwrap();
        let a = adjusted.speedup("raid6", "AssasinSb").unwrap();
        assert!(a > n, "adjusted {a} vs nominal {n}");
        // Sp pays the 2-cycle scratchpad on its staging loads.
        let n = nominal.speedup("raid6", "AssasinSp").unwrap();
        let a = adjusted.speedup("raid6", "AssasinSp").unwrap();
        assert!(a < n, "adjusted {a} vs nominal {n}");
    }
}
