//! Reliability sweep: throughput degradation under NAND fault injection.
//!
//! Sweeps the raw bit-error rate (and one retention-stressed corner) over
//! the AssasinSb scan offload and reports delivered throughput against the
//! read-retry rate the media sustains. DESIGN.md §12 describes the fault
//! model; the sweep's corners are chosen so the ECC budget transitions
//! from always-clean through routinely-corrected to retry-dependent, while
//! staying short of uncorrectable loss — the device degrades, it does not
//! fail. Fault draws are keyed on the scale's fixed seed, so two runs of
//! this experiment are byte-identical (pinned by a determinism test).

use crate::bundles;
use crate::report;
use crate::runner::offload;
use crate::sweep;
use crate::Scale;
use assasin_core::EngineKind;
use assasin_flash::FaultConfig;
use assasin_ssd::{Ssd, SsdConfig};
use serde::Serialize;
use std::fmt;

/// One fault-injection corner's measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Raw bit-error probability per stored bit.
    pub raw_ber: f64,
    /// Retention-stress multiplier on the BER.
    pub retention: f64,
    /// Delivered input throughput, GB/s.
    pub gbps: f64,
    /// Fault-free throughput divided by this corner's (1.0 = no cost).
    pub slowdown: f64,
    /// Page senses issued by the device over the whole run (loads + scomp).
    pub page_reads: u64,
    /// Read-retry re-senses beyond the initial sense.
    pub read_retries: u64,
    /// Retries per page read (can exceed 1.0 when every read retries
    /// multiple ladder levels).
    pub retry_rate: f64,
    /// Pages that needed ECC correction (clean reads excluded).
    pub ecc_corrected: u64,
    /// Pages lost beyond ECC + retry (0 at every swept corner).
    pub uncorrectable: u64,
    /// Blocks retired grown-bad after program/erase failures.
    pub grown_bad_blocks: u64,
}

/// The reliability-sweep report.
#[derive(Debug, Clone, Serialize)]
pub struct ReliabilityReport {
    /// Fault seed used for every corner.
    pub seed: u64,
    /// One entry per (BER, retention) corner, fault-free first.
    pub points: Vec<Point>,
}

/// The swept `(raw_ber, retention)` corners. The first is the fault-free
/// baseline the slowdown column normalizes against.
pub const CORNERS: [(f64, f64); 5] = [
    (0.0, 1.0),
    (1e-4, 1.0),
    (3e-4, 1.0),
    (1e-3, 1.0),
    (1e-3, 4.0),
];

fn pattern(n: usize, seed: u64) -> Vec<u8> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed) >> 8) as u8)
        .collect()
}

/// Runs the reliability sweep.
pub fn run(scale: &Scale) -> ReliabilityReport {
    let streams = vec![pattern(scale.standalone_bytes, scale.seed)];
    let measured = sweep::run_points(&CORNERS, |&(raw_ber, retention)| {
        let mut fault = FaultConfig::with_ber(scale.seed, raw_ber);
        fault.retention = retention;
        // Program failures scale with the same media quality the BER
        // models; x10 keeps them rare but present at the worst corners.
        fault.program_fail_prob = raw_ber * 10.0;
        let mut cfg = SsdConfig::engine_config(EngineKind::AssasinSb);
        cfg.fault = fault;
        let mut ssd = Ssd::new(cfg);
        let r = offload(&mut ssd, bundles::scan_bundle(), &streams)
            .unwrap_or_else(|e| panic!("reliability corner ber={raw_ber}: {e}"));
        let rel = ssd.reliability();
        (r.throughput_gbps(), rel)
    });
    let baseline_gbps = measured[0].0;
    let points = CORNERS
        .iter()
        .zip(measured)
        .map(|(&(raw_ber, retention), (gbps, rel))| Point {
            raw_ber,
            retention,
            gbps,
            slowdown: if gbps > 0.0 {
                baseline_gbps / gbps
            } else {
                0.0
            },
            page_reads: rel.page_reads,
            read_retries: rel.read_retries,
            retry_rate: if rel.page_reads > 0 {
                rel.read_retries as f64 / rel.page_reads as f64
            } else {
                0.0
            },
            ecc_corrected: rel.ecc_corrected,
            uncorrectable: rel.uncorrectable,
            grown_bad_blocks: rel.grown_bad_blocks,
        })
        .collect();
    ReliabilityReport {
        seed: scale.seed,
        points,
    }
}

impl fmt::Display for ReliabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Reliability: scan throughput under NAND fault injection (seed {:#x})",
            self.seed
        )?;
        let headers = vec![
            "raw BER",
            "retention",
            "GB/s",
            "slowdown",
            "retry rate",
            "ecc corrected",
            "uncorrectable",
            "grown bad",
        ];
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0e}", p.raw_ber),
                    format!("{:.1}", p.retention),
                    report::gbps(p.gbps),
                    report::ratio(p.slowdown),
                    format!("{:.3}", p.retry_rate),
                    p.ecc_corrected.to_string(),
                    p.uncorrectable.to_string(),
                    p.grown_bad_blocks.to_string(),
                ]
            })
            .collect();
        write!(f, "{}", report::table(&headers, &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_sweep_degrades_gracefully() {
        let r = run(&Scale::test_scale());
        assert_eq!(r.points.len(), CORNERS.len());
        let base = &r.points[0];
        assert!(base.gbps > 0.0);
        assert_eq!(base.read_retries, 0, "fault-free corner never retries");
        assert_eq!(base.ecc_corrected, 0);
        let worst = r.points.last().unwrap();
        assert!(
            worst.retry_rate > r.points[1].retry_rate,
            "retention stress raises the retry rate: {} vs {}",
            worst.retry_rate,
            r.points[1].retry_rate
        );
        assert!(
            worst.slowdown >= 1.0,
            "retries cost simulated time: {}",
            worst.slowdown
        );
        for p in &r.points {
            assert_eq!(p.uncorrectable, 0, "swept corners stay recoverable");
            assert!(p.gbps > 0.0, "every corner completes");
        }
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let a = serde_json::to_string(&run(&Scale::test_scale())).unwrap();
        let b = serde_json::to_string(&run(&Scale::test_scale())).unwrap();
        assert_eq!(a, b);
    }
}
