//! Figure 14: the offloaded Parse-Select-Filter pipeline (Section VI-C).
//!
//! PSF over TPC-H lineitem flat files. Paper shape: UDP ~1.3x over
//! Baseline (multiway dispatch suits parsing), Prefetch ~1.15x, AssasinSp
//! matches UDP without the exotic ISA, and AssasinSb/Sb$ add ~18% more for
//! 1.5–1.8x total.

use crate::bundles::psf_bundle;
use crate::report;
use crate::runner::LoadedImage;
use crate::sweep;
use crate::Scale;
use assasin_core::EngineKind;
use assasin_kernels::query::PsfParams;
use assasin_workloads::{lineitem_cols, TableId, TpchGen};
use serde::Serialize;
use std::fmt;

/// The offloaded PSF pipeline parameters: a one-year shipdate window with
/// a five-column projection (a TPC-H Q6-flavored scan).
pub fn psf_params() -> PsfParams {
    PsfParams {
        fields: TableId::Lineitem.width() as u32,
        pred_field: lineitem_cols::SHIPDATE,
        lo: 365,
        hi: 730,
        keep: vec![
            0,
            lineitem_cols::QUANTITY,
            lineitem_cols::EXTENDEDPRICE,
            lineitem_cols::DISCOUNT,
            lineitem_cols::SHIPDATE,
        ],
    }
}

/// One engine's PSF measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Entry {
    /// Engine label.
    pub engine: String,
    /// Input (CSV) throughput, GB/s.
    pub gbps: f64,
    /// Speedup over Baseline.
    pub speedup: f64,
}

/// The Figure 14 report.
#[derive(Debug, Clone, Serialize)]
pub struct Fig14Report {
    /// Whether Section VI-F timing adjustment was applied.
    pub adjusted: bool,
    /// CSV bytes scanned.
    pub input_bytes: u64,
    /// Entries in Table IV engine order.
    pub entries: Vec<Entry>,
}

/// Runs the PSF sweep (shared by Figures 14 and 21).
///
/// One sweep point per engine; speedups over the (first) Baseline point
/// are derived after reassembly. All six points scan the same lineitem
/// CSV, so they form one prefix group: the CSV is loaded onto flash once
/// and each engine forks a copy-on-write device off the shared image.
pub fn run_with(scale: &Scale, adjusted: bool) -> Fig14Report {
    let gen = TpchGen::new(scale.sf, scale.seed);
    let csv = gen.table(TableId::Lineitem).to_csv();
    let input_bytes = csv.len() as u64;
    let measured = sweep::run_forked(
        &EngineKind::ALL,
        |_| 0,
        |_| {
            LoadedImage::precondition(std::slice::from_ref(&csv))
                .unwrap_or_else(|e| panic!("lineitem load: {e}"))
        },
        |&engine, image| {
            let r = image
                .offload(engine, adjusted, psf_bundle(psf_params()))
                .unwrap_or_else(|e| panic!("psf on {engine:?}: {e}"));
            r.throughput_gbps()
        },
    );
    let baseline = measured[0];
    let entries = EngineKind::ALL
        .iter()
        .zip(measured)
        .map(|(engine, gbps)| Entry {
            engine: engine.label().to_string(),
            gbps,
            speedup: if baseline > 0.0 { gbps / baseline } else { 0.0 },
        })
        .collect();
    Fig14Report {
        adjusted,
        input_bytes,
        entries,
    }
}

/// Runs Figure 14 (nominal timing).
pub fn run(scale: &Scale) -> Fig14Report {
    run_with(scale, false)
}

impl Fig14Report {
    /// Speedup of one engine over Baseline.
    pub fn speedup(&self, engine: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| e.engine == engine)
            .map(|e| e.speedup)
    }
}

impl fmt::Display for Fig14Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 14: PSF pipeline over lineitem flat file ({} MiB{})",
            self.input_bytes >> 20,
            if self.adjusted {
                ", timing-adjusted"
            } else {
                ""
            }
        )?;
        let rows: Vec<Vec<String>> = self
            .entries
            .iter()
            .map(|e| {
                vec![
                    e.engine.clone(),
                    report::gbps(e.gbps),
                    report::ratio(e.speedup),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            report::table(&["engine", "GB/s", "vs Baseline"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure14_shape_holds() {
        let r = run(&Scale::test_scale());
        let udp = r.speedup("UDP").unwrap();
        let sp = r.speedup("AssasinSp").unwrap();
        let sb = r.speedup("AssasinSb").unwrap();
        // UDP accelerates branchy parsing over Baseline.
        assert!(udp > 1.1, "udp {udp}");
        // AssasinSp is competitive with UDP without ISA exotica.
        assert!(sp > 1.0 && (sp / udp) > 0.7, "sp {sp} vs udp {udp}");
        // The stream ISA adds more on top.
        assert!(sb > sp, "sb {sb} vs sp {sp}");
        assert!(sb > 1.3, "sb {sb}");
    }
}
