//! Section VI-E: sensitivity to flash-layout skew.
//!
//! A compute-bound scan (~0.5 GB/s/core) over datasets laid out with
//! controlled skew, comparing
//! ASSASIN's SSD-level crossbar (any core consumes any channel) against
//! the channel-local architecture of Figure 7 (core i consumes channel i).
//! Paper shape: the crossbar holds throughput nearly flat as skew grows;
//! channel-local compute degrades toward single-channel speed at
//! `Skew = 1`.

use crate::bundles::heavy_scan_bundle;
use crate::report;
use crate::runner::ssd_with;
use crate::sweep;
use crate::Scale;
use assasin_core::EngineKind;
use assasin_ftl::placement::Placement;
use assasin_ftl::skew::measure_skew;
use assasin_ssd::{ScompRequest, Ssd};
use serde::Serialize;
use std::fmt;

/// The skew levels evaluated (the paper's "no skew" through "extreme").
pub const SKEWS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// One (skew, architecture) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct SkewPoint {
    /// Requested layout skew.
    pub skew: f64,
    /// Skew actually measured on the placed pages.
    pub measured_skew: f64,
    /// Crossbar (ASSASIN) throughput, GB/s.
    pub crossbar_gbps: f64,
    /// Channel-local (Figure 7) throughput, GB/s.
    pub channel_local_gbps: f64,
}

/// The skew-sensitivity report.
#[derive(Debug, Clone, Serialize)]
pub struct Fig19Report {
    /// Bytes scanned per point.
    pub input_bytes: u64,
    /// Sweep points.
    pub points: Vec<SkewPoint>,
}

fn prep_one(skew: f64, data: &[u8], channel_local: bool) -> (Ssd, ScompRequest, f64) {
    let mut ssd: Ssd = ssd_with(EngineKind::AssasinSb, 8, false, channel_local);
    let channels = ssd.config().geometry.channels;
    let pages = data
        .len()
        .div_ceil(ssd.config().geometry.page_bytes as usize) as u64;
    if skew > 0.0 {
        ssd.set_placement(Placement::skewed(channels, skew), pages);
    }
    let lpas = ssd.load_object(0, data).expect("dataset fits");
    let measured = measure_skew(&ssd.channel_distribution(&lpas));
    let req = ScompRequest::new(heavy_scan_bundle(), vec![lpas])
        .with_stream_bytes(vec![data.len() as u64]);
    (ssd, req, measured)
}

/// Runs the sweep: every (skew, architecture) pair is an independent
/// point; rows pair crossbar and channel-local after reassembly. All ten
/// points run the same heavy-scan program, so the sweep executes as one
/// lane-batched group.
pub fn run(scale: &Scale) -> Fig19Report {
    let n = scale.scalability_bytes.next_multiple_of(8);
    let data: Vec<u8> = (0..n).map(|i| (i % 253) as u8).collect();
    let configs = sweep::grid(&SKEWS, &[false, true]);
    let measured = sweep::run_lane_groups(&configs, configs.len(), |&(skew, channel_local)| {
        prep_one(skew, &data, channel_local)
    });
    let points = sweep::rows_of(measured, 2)
        .into_iter()
        .zip(&SKEWS)
        .map(|(mut row, &skew)| {
            let (local, _) = row.pop().expect("two architectures per row");
            let (crossbar, measured_skew) = row.pop().expect("two architectures per row");
            SkewPoint {
                skew,
                measured_skew,
                crossbar_gbps: crossbar.expect("scan completes").throughput_gbps(),
                channel_local_gbps: local.expect("scan completes").throughput_gbps(),
            }
        })
        .collect();
    Fig19Report {
        input_bytes: data.len() as u64,
        points,
    }
}

impl fmt::Display for Fig19Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Section VI-E: layout-skew sensitivity ({} MiB scan)",
            self.input_bytes >> 20
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.2}", p.skew),
                    format!("{:.2}", p.measured_skew),
                    report::gbps(p.crossbar_gbps),
                    report::gbps(p.channel_local_gbps),
                    report::ratio(p.crossbar_gbps / p.channel_local_gbps),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            report::table(
                &[
                    "skew",
                    "measured",
                    "crossbar GB/s",
                    "channel-local GB/s",
                    "advantage"
                ],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_is_robust_channel_local_is_not() {
        let mut s = Scale::test_scale();
        s.scalability_bytes = 2 << 20;
        let r = run(&s);
        let at = |skew: f64| {
            r.points
                .iter()
                .find(|p| (p.skew - skew).abs() < 1e-9)
                .expect("swept")
        };
        // The FTL realizes the requested skew.
        for p in &r.points {
            assert!((p.measured_skew - p.skew).abs() < 0.05, "{p:?}");
        }
        // At no skew both architectures are comparable.
        let p0 = at(0.0);
        assert!(p0.crossbar_gbps / p0.channel_local_gbps < 1.3);
        // At extreme skew the crossbar degrades only to the hot channel's
        // physical rate (compute pooled over every core) ...
        let p1 = at(1.0);
        assert!(
            p1.crossbar_gbps > 2.0 * p1.channel_local_gbps,
            "crossbar {} vs channel-local {}",
            p1.crossbar_gbps,
            p1.channel_local_gbps
        );
        // ... while channel-local collapses to a single trapped core.
        assert!(
            p1.channel_local_gbps < 0.3 * p0.channel_local_gbps,
            "channel-local {} vs {}",
            p1.channel_local_gbps,
            p0.channel_local_gbps
        );
        // Mid-skew: the crossbar holds a clear advantage too.
        let p5 = at(0.5);
        assert!(p5.crossbar_gbps > 1.5 * p5.channel_local_gbps);
    }
}
