//! Table II in executable form: every computational-storage function class
//! the survey maps to stream computing, offloaded to the AssasinSb SSD.
//!
//! For each kernel: throughput, DRAM traffic per byte (the memory-wall
//! witness), function-state footprint in the scratchpad, and the data
//! reduction/expansion across the storage interface.

use crate::bundles;
use crate::report;
use crate::runner::{offload, ssd_with};
use crate::sweep;
use crate::Scale;
use assasin_core::EngineKind;
use assasin_kernels::{compress, dedup, nn};
use assasin_ssd::KernelBundle;
use serde::Serialize;
use std::fmt;

/// Builds a case's bundle inside its sweep point (bundles are consumed by
/// `offload`, so points carry constructors rather than bundles).
type BundleFactory = Box<dyn Fn() -> KernelBundle + Send + Sync>;

/// One function-class row.
#[derive(Debug, Clone, Serialize)]
pub struct FunctionRow {
    /// Kernel name.
    pub name: String,
    /// Table II function class.
    pub class: String,
    /// Function-state bytes preloaded in the scratchpad.
    pub state_bytes: usize,
    /// Input throughput on AssasinSb, GB/s.
    pub gbps: f64,
    /// DRAM bytes per byte moved (input + output): ~0 when both paths
    /// bypass DRAM, ~1 when only results stage through it, ≥2 on a
    /// Baseline-style architecture.
    pub dram_per_byte: f64,
    /// Output bytes per input byte (reduction < 1 < expansion).
    pub out_per_in: f64,
}

/// The Table II coverage report.
#[derive(Debug, Clone, Serialize)]
pub struct Table02Report {
    /// One row per kernel.
    pub rows: Vec<FunctionRow>,
}

fn pattern(n: usize, salt: u64) -> Vec<u8> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(salt) >> 9) as u8)
        .collect()
}

fn dedupable(n: usize) -> Vec<u8> {
    // A small working set of unique blocks cycled repeatedly, so every
    // engine's partition contains duplicates (dedup state is per-engine,
    // as in sharded inline dedup).
    let block = dedup::BLOCK_BYTES as usize;
    let uniques = 32usize;
    let mut out = Vec::with_capacity(n);
    let mut i = 0usize;
    while out.len() + block <= n {
        let u = i % uniques;
        let mut b = pattern(block, u as u64 + 1000);
        b[0] = u as u8;
        out.extend_from_slice(&b);
        i += 1;
    }
    out
}

fn compressible(n: usize) -> Vec<u8> {
    let phrase = b"computational storage wants stream computing; ";
    let mut v = Vec::with_capacity(n);
    while v.len() < n {
        v.extend_from_slice(phrase);
    }
    v.truncate(n - n % 8);
    v
}

/// Runs every kernel on the AssasinSb SSD — one sweep point per kernel,
/// each over its own device.
pub fn run(scale: &Scale) -> Table02Report {
    let n = scale.standalone_bytes.min(2 << 20);
    let model = nn::Model::demo(0xA55A);
    let packed = compress::compress(&compressible(n));
    let expansion = n as f64 / packed.len() as f64 + 1.0;
    let cases: Vec<(&str, &str, BundleFactory, Vec<Vec<u8>>)> = vec![
        (
            "stat",
            "Statistics (accumulators)",
            Box::new(bundles::stat_bundle),
            vec![pattern(n, 1)],
        ),
        (
            "raid4",
            "Erasure coding (GF table)",
            Box::new(bundles::raid4_bundle),
            (0..4).map(|s| pattern(n / 4, s)).collect(),
        ),
        (
            "raid6",
            "Erasure coding (GF table)",
            Box::new(bundles::raid6_bundle),
            (0..4).map(|s| pattern(n / 8, 10 + s)).collect(),
        ),
        (
            "aes128",
            "Cryptography (keys)",
            Box::new(bundles::aes_bundle),
            vec![pattern(scale.aes_bytes.min(256 << 10), 20)],
        ),
        (
            "psf",
            "Parse+Select+Filter (state machine)",
            Box::new(|| bundles::psf_bundle(crate::experiments::fig14::psf_params())),
            vec![{
                let gen = assasin_workloads::TpchGen::new(scale.sf, scale.seed);
                gen.table(assasin_workloads::TableId::Lineitem).to_csv()
            }],
        ),
        (
            "dedup",
            "Deduplicate (block metadata)",
            Box::new(bundles::dedup_bundle),
            vec![dedupable(n)],
        ),
        (
            "decompress",
            "Decompress (dictionary)",
            Box::new(move || bundles::decompress_bundle(expansion)),
            vec![packed],
        ),
        (
            "replicate",
            "Replicate (flags)",
            Box::new(bundles::replicate_bundle),
            vec![pattern(n / 2, 30)],
        ),
        (
            "nn-infer",
            "NN Inference (model parameters)",
            Box::new(move || bundles::nn_bundle(&model)),
            vec![pattern(n.min(512 << 10), 40)],
        ),
        (
            "nn-train",
            "NN Training (model parameters)",
            Box::new(bundles::nn_train_bundle),
            vec![pattern(n.min(512 << 10) / 36 * 36, 50)],
        ),
        (
            "graph",
            "Graph Analysis (vertex statistics)",
            Box::new(bundles::graph_bundle),
            vec![pattern(n, 60)],
        ),
    ];
    let rows = sweep::run_points(&cases, |(name, class, factory, streams)| {
        let bundle = factory();
        let state_bytes: usize = bundle.scratchpad_image().iter().map(|(_, b)| b.len()).sum();
        let mut ssd = ssd_with(EngineKind::AssasinSb, 8, false, false);
        let r = offload(&mut ssd, bundle, streams).unwrap_or_else(|e| panic!("{name}: {e}"));
        FunctionRow {
            name: name.to_string(),
            class: class.to_string(),
            state_bytes,
            gbps: r.throughput_gbps(),
            dram_per_byte: r.dram_traffic as f64 / (r.bytes_in + r.bytes_out).max(1) as f64,
            out_per_in: r.bytes_out as f64 / r.bytes_in.max(1) as f64,
        }
    });
    Table02Report { rows }
}

impl fmt::Display for Table02Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table II in execution: stream-computing offloads on AssasinSb"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.class.clone(),
                    format!("{}", r.state_bytes),
                    report::gbps(r.gbps),
                    format!("{:.2}", r.dram_per_byte),
                    format!("{:.2}", r.out_per_in),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            report::table(
                &[
                    "kernel",
                    "Table II class",
                    "state B",
                    "GB/s",
                    "DRAM B/moved",
                    "out/in"
                ],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_function_class_runs_and_bypasses_dram() {
        let r = run(&Scale::test_scale());
        assert_eq!(r.rows.len(), 11);
        for row in &r.rows {
            assert!(row.gbps > 0.01, "{}: {}", row.name, row.gbps);
            // The defining ASSASIN property, for every function class:
            // input data never crosses SSD DRAM.
            assert!(
                row.dram_per_byte < 1.1,
                "{}: {}",
                row.name,
                row.dram_per_byte
            );
        }
        // Reduction functions reduce; expansion functions expand.
        let by = |n: &str| r.rows.iter().find(|x| x.name == n).unwrap();
        assert!(by("dedup").out_per_in < 0.6);
        assert!(by("decompress").out_per_in > 2.0);
        assert!((by("replicate").out_per_in - 2.0).abs() < 0.01);
        assert!(by("stat").out_per_in == 0.0);
        assert!(by("graph").out_per_in == 0.0);
        assert!(by("nn-infer").state_bytes > 500);
        assert!(by("nn-train").state_bytes > 30);
    }
}
