//! Ablation studies of ASSASIN's design choices (the knobs Section V
//! fixes): streambuffer ring depth P, crossbar port bandwidth, firmware
//! polling period, and — for the Baseline comparison — the DRAM bandwidth
//! the memory wall is made of.

use crate::bundles::stat_bundle;
use crate::report;
use crate::runner::offload;
use crate::sweep;
use crate::Scale;
use assasin_core::EngineKind;
use assasin_sim::SimDur;
use assasin_ssd::{Ssd, SsdConfig};
use serde::Serialize;
use std::fmt;

/// One (knob value, throughput) point.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Knob value (unit depends on the sweep).
    pub value: f64,
    /// Stat throughput, GB/s.
    pub gbps: f64,
}

/// The ablation report.
#[derive(Debug, Clone, Serialize)]
pub struct AblationReport {
    /// Streambuffer depth P sweep (AssasinSb).
    pub sb_pages: Vec<Point>,
    /// Crossbar port bandwidth sweep in GB/s (AssasinSb).
    pub crossbar_bw: Vec<Point>,
    /// Firmware poll period sweep in µs (AssasinSb).
    pub firmware_poll_us: Vec<Point>,
    /// DRAM bandwidth sweep in GB/s (Baseline) — the memory wall itself.
    pub baseline_dram_bw: Vec<Point>,
    /// DRAM bandwidth sweep in GB/s (AssasinSb) — should be flat.
    pub assasin_dram_bw: Vec<Point>,
}

fn run_stat(cfg: SsdConfig, bytes: usize) -> f64 {
    let data = vec![(0..bytes)
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9) >> 11) as u8)
        .collect::<Vec<u8>>()];
    let mut ssd = Ssd::new(cfg);
    offload(&mut ssd, stat_bundle(), &data)
        .expect("stat offload")
        .throughput_gbps()
}

/// Runs all sweeps. Every (knob, value) pair is an independent sweep
/// point over its own SSD; the flat result vector is partitioned back
/// into the five sweeps by construction order.
pub fn run(scale: &Scale) -> AblationReport {
    let n = scale.standalone_bytes;
    let base = || SsdConfig::engine_config(EngineKind::AssasinSb);

    // (sweep index, reported knob value, config) — built in report order.
    let mut configs: Vec<(usize, f64, SsdConfig)> = Vec::new();
    for &p in &[1u32, 2, 4, 8] {
        let mut cfg = base();
        cfg.sb_pages = Some(p);
        configs.push((0, p as f64, cfg));
    }
    for &bw in &[0.5e9, 1.0e9, 2.0e9, 8.0e9] {
        let mut cfg = base();
        cfg.crossbar_port_bw = bw;
        configs.push((1, bw / 1e9, cfg));
    }
    for &us in &[0u64, 1, 5, 20] {
        let mut cfg = base();
        cfg.firmware_poll = SimDur::from_us(us);
        configs.push((2, us as f64, cfg));
    }
    for (i, engine) in [EngineKind::Baseline, EngineKind::AssasinSb]
        .into_iter()
        .enumerate()
    {
        for &bw in &[4.0e9, 8.0e9, 16.0e9, 32.0e9] {
            let mut cfg = SsdConfig::engine_config(engine);
            cfg.dram_bw = bw;
            configs.push((3 + i, bw / 1e9, cfg));
        }
    }

    let measured = sweep::run_points(&configs, |&(_, value, cfg)| Point {
        value,
        gbps: run_stat(cfg, n),
    });
    let mut sweeps: Vec<Vec<Point>> = vec![Vec::new(); 5];
    for ((sweep_idx, _, _), point) in configs.iter().zip(measured) {
        sweeps[*sweep_idx].push(point);
    }
    let mut it = sweeps.into_iter();
    AblationReport {
        sb_pages: it.next().unwrap(),
        crossbar_bw: it.next().unwrap(),
        firmware_poll_us: it.next().unwrap(),
        baseline_dram_bw: it.next().unwrap(),
        assasin_dram_bw: it.next().unwrap(),
    }
}

fn fmt_sweep(f: &mut fmt::Formatter<'_>, title: &str, unit: &str, pts: &[Point]) -> fmt::Result {
    writeln!(f, "{title}")?;
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| vec![format!("{}", p.value), report::gbps(p.gbps)])
        .collect();
    write!(f, "{}", report::table(&[unit, "GB/s"], &rows))
}

impl fmt::Display for AblationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablations (Stat kernel, 8 engines)")?;
        fmt_sweep(
            f,
            "\nstreambuffer ring depth (Table IV picks P=2):",
            "P",
            &self.sb_pages,
        )?;
        fmt_sweep(f, "\ncrossbar port bandwidth:", "GB/s", &self.crossbar_bw)?;
        fmt_sweep(f, "\nfirmware poll period:", "us", &self.firmware_poll_us)?;
        fmt_sweep(
            f,
            "\nSSD DRAM bandwidth, Baseline (the memory wall):",
            "GB/s",
            &self.baseline_dram_bw,
        )?;
        fmt_sweep(
            f,
            "\nSSD DRAM bandwidth, AssasinSb (decoupled from DRAM):",
            "GB/s",
            &self.assasin_dram_bw,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_shapes() {
        let mut s = Scale::test_scale();
        s.standalone_bytes = 1 << 20;
        let r = run(&s);
        // P=2 is enough: deepening the ring adds nothing.
        let p2 = r.sb_pages.iter().find(|p| p.value == 2.0).unwrap().gbps;
        let p8 = r.sb_pages.iter().find(|p| p.value == 8.0).unwrap().gbps;
        assert!(p8 < p2 * 1.15, "P=8 {p8} vs P=2 {p2}");
        // A starved crossbar port caps the whole SSD.
        let x05 = r.crossbar_bw.iter().find(|p| p.value == 0.5).unwrap().gbps;
        let x8 = r.crossbar_bw.iter().find(|p| p.value == 8.0).unwrap().gbps;
        assert!(x8 > 1.4 * x05, "port bw matters: {x05} -> {x8}");
        // Baseline chases DRAM bandwidth; ASSASIN ignores it.
        let b = &r.baseline_dram_bw;
        assert!(b.last().unwrap().gbps > 1.5 * b.first().unwrap().gbps);
        let a = &r.assasin_dram_bw;
        let (lo, hi) = (a.first().unwrap().gbps, a.last().unwrap().gbps);
        assert!((hi - lo).abs() / hi < 0.05, "ASSASIN flat: {lo} vs {hi}");
    }
}
