//! Figure 15: end-to-end TPC-H latency (Section VI-C).
//!
//! All 22 queries, three system configurations: pure host CPU
//! (disaggregated storage), Baseline computational SSD, and AssasinSb.
//! Paper shape: Baseline offload is ~1.9x (GeoMean) over CPU-only, and
//! AssasinSb adds 1.1–1.5x (GeoMean 1.3x) on top.

use crate::provider::{CpuOnlyProvider, LoadedTables, SsdScanProvider};
use crate::report;
use crate::sweep;
use crate::Scale;
use assasin_analytics::{queries, Executor, HostCpuModel, ScanProvider};
use assasin_core::EngineKind;
use assasin_sim::stats::geomean;
use assasin_sim::SimDur;
use assasin_workloads::TpchGen;
use serde::Serialize;
use std::fmt;

/// One query's end-to-end latencies (milliseconds of simulated time).
#[derive(Debug, Clone, Serialize)]
pub struct QueryRow {
    /// TPC-H query number.
    pub query: u32,
    /// Pure-CPU latency (ms).
    pub cpu_only_ms: f64,
    /// Baseline-offload latency (ms).
    pub baseline_ms: f64,
    /// AssasinSb-offload latency (ms).
    pub assasin_ms: f64,
}

impl QueryRow {
    /// Baseline speedup over CPU-only.
    pub fn baseline_vs_cpu(&self) -> f64 {
        self.cpu_only_ms / self.baseline_ms
    }
    /// AssasinSb speedup over Baseline.
    pub fn assasin_vs_baseline(&self) -> f64 {
        self.baseline_ms / self.assasin_ms
    }
}

/// The Figure 15 report.
#[derive(Debug, Clone, Serialize)]
pub struct Fig15Report {
    /// TPC-H scale factor used.
    pub sf: f64,
    /// Per-query rows.
    pub rows: Vec<QueryRow>,
    /// GeoMean of Baseline-over-CPU speedups (paper: ~1.9x).
    pub geomean_baseline_vs_cpu: f64,
    /// GeoMean of AssasinSb-over-Baseline speedups (paper: ~1.3x).
    pub geomean_assasin_vs_baseline: f64,
}

fn run_mode(provider: &mut dyn ScanProvider, q: u32) -> SimDur {
    let plan = queries::plan(q);
    let mut ex = Executor::new(provider, HostCpuModel::paper_host());
    ex.run(&plan).total()
}

/// The three system configurations of Figure 15.
#[derive(Debug, Clone, Copy)]
enum Mode {
    CpuOnly,
    Baseline,
    Assasin,
}

/// Runs the experiment. Queries can be limited (tests) via `max_q`.
///
/// The three system configurations are independent sweep points (each
/// owns its provider, whose SSD carries state across queries); the 22
/// queries run serially inside each point, exactly as in a serial run.
/// All three modes scan the same dataset, so it is generated and loaded
/// once and each mode forks its provider off the shared image.
pub fn run_queries(scale: &Scale, max_q: u32) -> Fig15Report {
    let gen = TpchGen::new(scale.sf, scale.seed);
    let loaded = LoadedTables::load(&gen).unwrap_or_else(|e| panic!("tpch load: {e}"));
    let qs: Vec<u32> = queries::all_ids().filter(|&q| q <= max_q).collect();
    let modes = [Mode::CpuOnly, Mode::Baseline, Mode::Assasin];
    let per_mode: Vec<Vec<f64>> = sweep::run_points(&modes, |mode| {
        let mut provider: Box<dyn ScanProvider> = match mode {
            Mode::CpuOnly => Box::new(CpuOnlyProvider::from_tables(&loaded)),
            Mode::Baseline => Box::new(SsdScanProvider::from_tables(
                EngineKind::Baseline,
                false,
                &loaded,
            )),
            Mode::Assasin => Box::new(SsdScanProvider::from_tables(
                EngineKind::AssasinSb,
                false,
                &loaded,
            )),
        };
        qs.iter()
            .map(|&q| run_mode(provider.as_mut(), q).as_secs_f64() * 1e3)
            .collect()
    });
    let rows: Vec<QueryRow> = qs
        .iter()
        .enumerate()
        .map(|(i, &q)| QueryRow {
            query: q,
            cpu_only_ms: per_mode[0][i],
            baseline_ms: per_mode[1][i],
            assasin_ms: per_mode[2][i],
        })
        .collect();
    let b_vs_c: Vec<f64> = rows.iter().map(|r| r.baseline_vs_cpu()).collect();
    let a_vs_b: Vec<f64> = rows.iter().map(|r| r.assasin_vs_baseline()).collect();
    Fig15Report {
        sf: scale.sf,
        geomean_baseline_vs_cpu: geomean(&b_vs_c).unwrap_or(0.0),
        geomean_assasin_vs_baseline: geomean(&a_vs_b).unwrap_or(0.0),
        rows,
    }
}

/// Runs all 22 queries.
pub fn run(scale: &Scale) -> Fig15Report {
    run_queries(scale, 22)
}

impl fmt::Display for Fig15Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 15: TPC-H end-to-end latency (SF {})", self.sf)?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("Q{}", r.query),
                    format!("{:.3}", r.cpu_only_ms),
                    format!("{:.3}", r.baseline_ms),
                    format!("{:.3}", r.assasin_ms),
                    report::ratio(r.baseline_vs_cpu()),
                    report::ratio(r.assasin_vs_baseline()),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            report::table(
                &[
                    "query",
                    "CPU-only ms",
                    "Baseline ms",
                    "AssasinSb ms",
                    "Base/CPU",
                    "Sb/Base"
                ],
                &rows
            )
        )?;
        writeln!(
            f,
            "GeoMean: Baseline vs CPU-only {} (paper ~1.9x); AssasinSb vs Baseline {} (paper ~1.3x, range 1.1-1.5x)",
            report::ratio(self.geomean_baseline_vs_cpu),
            report::ratio(self.geomean_assasin_vs_baseline)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_helps_and_assasin_helps_more() {
        // A handful of queries at tiny scale to keep CI fast.
        let r = run_queries(&Scale::test_scale(), 6);
        assert!(!r.rows.is_empty());
        assert!(
            r.geomean_baseline_vs_cpu > 1.2,
            "offload must beat CPU-only: {}",
            r.geomean_baseline_vs_cpu
        );
        assert!(
            r.geomean_assasin_vs_baseline > 1.02,
            "ASSASIN must beat Baseline end-to-end: {}",
            r.geomean_assasin_vs_baseline
        );
        // End-to-end gains are muted relative to in-SSD gains (host work
        // stacks on top) — the paper's 1.5-1.8x becomes 1.1-1.5x.
        assert!(r.geomean_assasin_vs_baseline < 1.8);
    }
}
