//! Scan providers wiring the SSD into the analytics engine (the
//! datasource API of Figure 9).

use assasin_analytics::{costs, Pred, Relation, ScanOutcome, ScanProvider};
use assasin_core::EngineKind;
use assasin_ftl::Lpa;
use assasin_kernels::query::PsfParams;
use assasin_ssd::{ScompRequest, Ssd, SsdError};
use assasin_workloads::{Table, TableId, TpchGen};
use std::collections::HashMap;

use crate::bundles;
use crate::runner::ssd_with;

#[derive(Debug, Clone)]
struct Stored {
    lpas: Vec<Lpa>,
    csv_len: u64,
    table: Table,
}

fn load_tables(ssd: &mut Ssd, gen: &TpchGen) -> Result<HashMap<TableId, Stored>, SsdError> {
    let mut out = HashMap::new();
    for (i, id) in TableId::ALL.into_iter().enumerate() {
        let table = gen.table(id);
        let csv = table.to_csv();
        let base = (i as u64) * (1 << 20);
        let lpas = ssd.load_object(base, &csv)?;
        out.insert(
            id,
            Stored {
                lpas,
                csv_len: csv.len() as u64,
                table,
            },
        );
    }
    Ok(out)
}

/// The whole TPC-H dataset generated and loaded onto one preconditioned
/// device image, forkable into per-mode providers. Figure 15's three
/// system configurations scan identical media, so they share one load
/// (the media contents are engine-independent) and each fork shares every
/// flash page copy-on-write.
#[derive(Debug, Clone)]
pub struct LoadedTables {
    image: assasin_ssd::SsdImage,
    tables: HashMap<TableId, Stored>,
}

impl LoadedTables {
    /// Generates the dataset and loads every table once.
    ///
    /// # Errors
    ///
    /// Propagates SSD load failures (capacity, device full, media).
    pub fn load(gen: &TpchGen) -> Result<Self, SsdError> {
        let mut ssd = ssd_with(EngineKind::Baseline, 8, false, false);
        let tables = load_tables(&mut ssd, gen)?;
        Ok(LoadedTables {
            image: ssd.into_image(),
            tables,
        })
    }

    fn fork(&self, engine: EngineKind, adjusted: bool) -> Ssd {
        let mut cfg = assasin_ssd::SsdConfig::engine_config(engine);
        cfg.n_cores = 8;
        cfg.adjusted_timing = adjusted;
        self.image.fork(cfg)
    }
}

/// Offloading provider: every base-table scan becomes a PSF `scomp` on the
/// computational SSD; only the filtered, projected rows cross PCIe.
pub struct SsdScanProvider {
    ssd: Ssd,
    tables: HashMap<TableId, Stored>,
}

impl SsdScanProvider {
    /// Builds an SSD with `engine` compute and loads the TPC-H dataset
    /// (CSV form, as SparkSQL's datasource reads it).
    ///
    /// # Errors
    ///
    /// Propagates SSD load failures.
    pub fn new(engine: EngineKind, gen: &TpchGen) -> Result<Self, SsdError> {
        let mut ssd = ssd_with(engine, 8, false, false);
        let tables = load_tables(&mut ssd, gen)?;
        Ok(SsdScanProvider { ssd, tables })
    }

    /// Same, with the Section VI-F timing adjustment.
    ///
    /// # Errors
    ///
    /// Propagates SSD load failures.
    pub fn new_adjusted(engine: EngineKind, gen: &TpchGen) -> Result<Self, SsdError> {
        let mut ssd = ssd_with(engine, 8, true, false);
        let tables = load_tables(&mut ssd, gen)?;
        Ok(SsdScanProvider { ssd, tables })
    }

    /// Forks a provider off a preloaded dataset instead of re-generating
    /// and re-loading it (byte-identical results to [`SsdScanProvider::new`]).
    pub fn from_tables(engine: EngineKind, adjusted: bool, loaded: &LoadedTables) -> Self {
        SsdScanProvider {
            ssd: loaded.fork(engine, adjusted),
            tables: loaded.tables.clone(),
        }
    }
}

impl ScanProvider for SsdScanProvider {
    fn scan(&mut self, table: TableId, preds: &[Pred], project: &[u32]) -> ScanOutcome {
        let stored = self.tables.get(&table).expect("table loaded");
        let fields = table.width() as u32;
        // Push the first predicate into the SSD; the rest are residual.
        let (dev_pred, residual) = match preds.split_first() {
            Some((d, r)) => (*d, r),
            None => (
                Pred {
                    col: 0,
                    lo: 0,
                    hi: u32::MAX,
                },
                &[][..],
            ),
        };
        let mut keep: Vec<u32> = project.to_vec();
        for p in residual {
            if !keep.contains(&p.col) {
                keep.push(p.col);
            }
        }
        let params = PsfParams {
            fields,
            pred_field: dev_pred.col,
            lo: dev_pred.lo,
            hi: dev_pred.hi,
            keep: keep.clone(),
        };
        let req = ScompRequest::new(bundles::psf_bundle(params), vec![stored.lpas.clone()])
            .with_stream_bytes(vec![stored.csv_len]);
        let result = self.ssd.scomp(&req).expect("psf offload completes");
        let wide = Relation::from_binary(keep.len().max(1), &result.concat_output());

        // Residual filtering + final projection on the host.
        let col_pos = |c: u32| keep.iter().position(|&k| k == c).expect("kept");
        let mut rel = Relation::empty(project.len().max(1));
        let mut buf = Vec::with_capacity(project.len());
        let mut kept_rows = 0usize;
        for row in wide.iter() {
            if residual.iter().all(|p| p.matches(row[col_pos(p.col)])) {
                buf.clear();
                buf.extend(project.iter().map(|&c| row[col_pos(c)]));
                rel.push_row(&buf);
                kept_rows += 1;
            }
        }
        let host_ops = wide.rows() as f64 * costs::INGEST_PER_ROW
            + wide.rows() as f64 * residual.len() as f64 * costs::FILTER_PER_ROW
            + kept_rows as f64 * costs::MATERIALIZE_PER_ROW;
        ScanOutcome {
            relation: rel,
            device_time: result.elapsed,
            host_ops,
            bytes_from_storage: result.bytes_out,
        }
    }
}

/// CPU-only provider (the disaggregated-storage comparison of Figure 15):
/// raw CSV crosses the interface; the host parses, filters and projects.
pub struct CpuOnlyProvider {
    ssd: Ssd,
    tables: HashMap<TableId, Stored>,
}

impl CpuOnlyProvider {
    /// Loads the dataset onto a plain SSD.
    ///
    /// # Errors
    ///
    /// Propagates SSD load failures.
    pub fn new(gen: &TpchGen) -> Result<Self, SsdError> {
        let mut ssd = ssd_with(EngineKind::Baseline, 8, false, false);
        let tables = load_tables(&mut ssd, gen)?;
        Ok(CpuOnlyProvider { ssd, tables })
    }

    /// Forks a provider off a preloaded dataset (byte-identical results to
    /// [`CpuOnlyProvider::new`]).
    pub fn from_tables(loaded: &LoadedTables) -> Self {
        CpuOnlyProvider {
            ssd: loaded.fork(EngineKind::Baseline, false),
            tables: loaded.tables.clone(),
        }
    }
}

impl ScanProvider for CpuOnlyProvider {
    fn scan(&mut self, table: TableId, preds: &[Pred], project: &[u32]) -> ScanOutcome {
        let stored = self.tables.get(&table).expect("table loaded");
        let io = self
            .ssd
            .read_lpas(&stored.lpas, stored.csv_len)
            .expect("plain read");
        let mut rel = Relation::empty(project.len().max(1));
        let mut buf = Vec::with_capacity(project.len());
        let mut kept = 0usize;
        for row in stored.table.iter() {
            if preds.iter().all(|p| p.matches(row[p.col as usize])) {
                buf.clear();
                buf.extend(project.iter().map(|&c| row[c as usize]));
                rel.push_row(&buf);
                kept += 1;
            }
        }
        let rows = stored.table.rows() as f64;
        let host_ops = stored.csv_len as f64 * costs::PARSE_PER_BYTE
            + rows * preds.len().max(1) as f64 * costs::FILTER_PER_ROW
            + kept as f64 * costs::MATERIALIZE_PER_ROW;
        ScanOutcome {
            relation: rel,
            device_time: io.elapsed,
            host_ops,
            bytes_from_storage: stored.csv_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use assasin_analytics::{Executor, HostCpuModel, HostScanProvider};
    use assasin_sim::SimDur;

    fn gen() -> TpchGen {
        TpchGen::new(0.002, 99)
    }

    #[test]
    fn offload_scan_matches_host_scan() {
        let g = gen();
        let mut host = HostScanProvider::new();
        for id in TableId::ALL {
            host.add_table(g.table(id));
        }
        let mut offl = SsdScanProvider::new(EngineKind::AssasinSb, &g).expect("dataset fits");
        let preds = vec![Pred::range(10, 365, 900), Pred::range(4, 1, 30)];
        let project = vec![0u32, 5, 10];
        let a = host.scan(TableId::Lineitem, &preds, &project);
        let b = offl.scan(TableId::Lineitem, &preds, &project);
        assert_eq!(
            a.relation, b.relation,
            "offload must be semantically transparent"
        );
        assert!(b.device_time > SimDur::ZERO);
        assert!(
            b.bytes_from_storage < a.bytes_from_storage,
            "early reduction"
        );
    }

    #[test]
    fn cpu_only_provider_pays_parse_costs() {
        let g = gen();
        let mut cpu = CpuOnlyProvider::new(&g).expect("dataset fits");
        let out = cpu.scan(TableId::Orders, &[], &[0, 1]);
        assert!(out.host_ops > out.relation.rows() as f64 * 10.0);
        assert!(out.device_time > SimDur::ZERO);
    }

    #[test]
    fn full_query_same_answer_on_all_providers() {
        let g = gen();
        let plan = assasin_analytics::queries::plan(6);
        let mut host = HostScanProvider::new();
        for id in TableId::ALL {
            host.add_table(g.table(id));
        }
        let run = |p: &mut dyn ScanProvider| {
            Executor::new(p, HostCpuModel::default())
                .run(&plan)
                .relation
        };
        let r_host = run(&mut host);
        let mut cpu = CpuOnlyProvider::new(&g).expect("dataset fits");
        let r_cpu = run(&mut cpu);
        let mut sb = SsdScanProvider::new(EngineKind::AssasinSb, &g).expect("dataset fits");
        let r_sb = run(&mut sb);
        assert_eq!(r_host, r_cpu);
        assert_eq!(r_host, r_sb);
    }

    #[test]
    fn forked_provider_matches_fresh_provider() {
        let g = gen();
        let loaded = LoadedTables::load(&g).expect("dataset fits");
        let preds = vec![Pred::range(10, 365, 900)];
        let project = vec![0u32, 5, 10];
        let mut fresh = SsdScanProvider::new(EngineKind::AssasinSb, &g).expect("dataset fits");
        let a = fresh.scan(TableId::Lineitem, &preds, &project);
        let mut forked = SsdScanProvider::from_tables(EngineKind::AssasinSb, false, &loaded);
        let b = forked.scan(TableId::Lineitem, &preds, &project);
        assert_eq!(a.relation, b.relation);
        assert_eq!(a.device_time, b.device_time, "fork must not change timing");
        assert_eq!(a.bytes_from_storage, b.bytes_from_storage);
    }
}
