//! Ready-to-offload kernel bundles (program generators + function state).

use assasin_kernels::{
    aes, compress, dedup, graph, nn, nn_train, query, raid, replicate, scan, stat,
};
use assasin_ssd::KernelBundle;

/// The benchmark AES key (the FIPS-197 example key).
pub const AES_KEY: [u8; 16] = [
    0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f,
];

/// The byte-scan kernel (Figures 16–19).
pub fn scan_bundle() -> KernelBundle {
    KernelBundle::new("scan", scan::TUPLE_BYTES, 0.0, scan::program)
}

/// The compute-heavier scan used by the Section VI-E skew experiment.
pub fn heavy_scan_bundle() -> KernelBundle {
    KernelBundle::new("scan-heavy", scan::TUPLE_BYTES, 0.0, scan::heavy_program)
}

/// The column-sum kernel (Figure 13 `Stat`).
pub fn stat_bundle() -> KernelBundle {
    KernelBundle::new("stat", stat::TUPLE_BYTES, 0.0, stat::program)
}

/// RAID4 parity (Figure 13).
pub fn raid4_bundle() -> KernelBundle {
    KernelBundle::new("raid4", 4, 0.25, raid::raid4_program)
}

/// RAID6 P+Q (Figure 13); GF tables preloaded as function state.
pub fn raid6_bundle() -> KernelBundle {
    let image = raid::raid6_tables()
        .into_iter()
        .map(|(off, t)| (off, t.to_vec()))
        .collect();
    KernelBundle::new("raid6", 1, 0.5, raid::raid6_program).with_scratchpad_image(image)
}

/// AES-128 encryption (Figure 13); T-tables + key schedule preloaded.
pub fn aes_bundle() -> KernelBundle {
    KernelBundle::new("aes128", 16, 1.0, aes::program)
        .with_scratchpad_image(aes::scratchpad_image(&AES_KEY))
}

/// Block deduplication (Table II "Deduplicate").
pub fn dedup_bundle() -> KernelBundle {
    KernelBundle::new("dedup", dedup::BLOCK_BYTES, 1.01, dedup::program)
}

/// LZ decompression (Table II "Decompress"). Stream/Mem styles only — see
/// `assasin_kernels::compress`.
pub fn decompress_bundle(max_expansion: f64) -> KernelBundle {
    KernelBundle::new("decompress", 1, max_expansion, compress::decompress_program)
}

/// Replica creation (Table II "Replicate"), typically used write-path.
pub fn replicate_bundle() -> KernelBundle {
    KernelBundle::new(
        "replicate",
        replicate::TUPLE_BYTES,
        replicate::COPIES as f64,
        replicate::program,
    )
}

/// MLP inference with scratchpad-stationary weights (Table II
/// "NN Inference").
pub fn nn_bundle(model: &nn::Model) -> KernelBundle {
    KernelBundle::new(
        "nn-infer",
        nn::TUPLE_BYTES,
        (nn::OUT_DIM * 4) as f64 / nn::TUPLE_BYTES as f64,
        nn::program,
    )
    .with_scratchpad_image(model.scratchpad_image())
}

/// Edge-list degree counting (Table II "Graph Analysis").
pub fn graph_bundle() -> KernelBundle {
    KernelBundle::new("graph-degree", graph::EDGE_BYTES, 0.0, graph::program)
}

/// Streaming SGD (Table II "NN Training"); zero-initialized model.
pub fn nn_train_bundle() -> KernelBundle {
    KernelBundle::new(
        "nn-train",
        nn_train::TUPLE_BYTES,
        4.0 / nn_train::TUPLE_BYTES as f64,
        nn_train::program,
    )
    .with_scratchpad_image(nn_train::LinearModel::zeroed().scratchpad_image())
}

/// Binary tuple filter (the Section III / Figure 5 motivating function).
pub fn filter_bundle(p: query::FilterParams) -> KernelBundle {
    KernelBundle::new("filter", p.tuple_words * 4, 1.0, move |s| {
        query::filter_program(s, p)
    })
}

/// The fused Parse-Select-Filter pipeline (Figures 12, 14, 15).
pub fn psf_bundle(p: query::PsfParams) -> KernelBundle {
    let out_ratio = (p.keep.len() as f64 * 4.0 / 6.0).min(1.0); // bytes out per CSV byte bound
    KernelBundle::new("psf", 1, out_ratio.max(0.8), move |s| {
        query::psf_program(s, &p)
    })
    .with_record_delim(b'\n')
}

#[cfg(test)]
mod tests {
    use super::*;
    use assasin_kernels::AccessStyle;

    #[test]
    fn bundles_build_programs_for_all_styles() {
        let p = query::PsfParams {
            fields: 12,
            pred_field: 10,
            lo: 0,
            hi: 100,
            keep: vec![0, 5],
        };
        let bundles = [
            scan_bundle(),
            stat_bundle(),
            raid4_bundle(),
            raid6_bundle(),
            aes_bundle(),
            filter_bundle(query::FilterParams {
                tuple_words: 12,
                pred_word: 10,
                lo: 0,
                hi: 100,
            }),
            psf_bundle(p),
        ];
        for b in &bundles {
            for style in AccessStyle::ALL {
                assert!(b.program(style).len() > 3, "{} {style:?}", b.name());
            }
        }
    }

    #[test]
    fn state_heavy_bundles_carry_images() {
        assert!(!raid6_bundle().scratchpad_image().is_empty());
        assert!(!aes_bundle().scratchpad_image().is_empty());
        assert!(scan_bundle().scratchpad_image().is_empty());
    }
}
