//! Deterministic parallel sweep execution.
//!
//! Every experiment in this crate is a grid of independent simulator
//! invocations: one workload on one engine configuration, with nothing
//! shared between invocations except read-only input data. [`run_points`]
//! fans those invocations out across worker threads and reassembles the
//! results **in point order**, so a parallel run produces byte-identical
//! reports to a serial one (`RAYON_NUM_THREADS=1`).
//!
//! Determinism rests on two properties:
//!
//! 1. Each point builds its own [`Ssd`](assasin_ssd::Ssd) (or provider)
//!    from a fixed seed — simulated time is per-instance, so concurrency
//!    cannot reorder simulated events.
//! 2. Results come back indexed by input position, never by completion
//!    order.
//!
//! Derived quantities that couple points — speedups over the Baseline
//! entry, geomeans, utilization normalization — are computed *after*
//! reassembly, on the ordered result vector.

use assasin_core::EngineKind;
use assasin_ssd::{ScompRequest, ScompResult, Ssd, SsdError};

/// One independent experiment configuration: a workload on one simulated
/// architecture. Experiments build a vector of these (or of their own
/// point types) and hand them to [`run_points`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Workload label (kernel or dataset name).
    pub workload: String,
    /// Engine architecture to simulate.
    pub engine: EngineKind,
    /// Section VI-F timing adjustment.
    pub adjusted: bool,
    /// Channel-local compute (Figure 7) instead of the crossbar.
    pub channel_local: bool,
    /// Engine core count.
    pub n_cores: usize,
}

impl SweepPoint {
    /// A point with the harness defaults (8 cores, nominal timing,
    /// crossbar).
    pub fn new(workload: impl Into<String>, engine: EngineKind) -> Self {
        SweepPoint {
            workload: workload.into(),
            engine,
            adjusted: false,
            channel_local: false,
            n_cores: 8,
        }
    }

    /// Applies the Section VI-F timing adjustment.
    pub fn adjusted(mut self, yes: bool) -> Self {
        self.adjusted = yes;
        self
    }

    /// Switches to the channel-local architecture.
    pub fn channel_local(mut self, yes: bool) -> Self {
        self.channel_local = yes;
        self
    }

    /// Sets the core count.
    pub fn cores(mut self, n: usize) -> Self {
        self.n_cores = n;
        self
    }
}

/// Runs `run` over every point concurrently and returns the results in
/// point order. The worker count honors `RAYON_NUM_THREADS`; with one
/// thread the points run serially on the caller's thread, in order.
pub fn run_points<P, R, F>(points: &[P], run: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    assasin_parallel::par_map(points, run)
}

/// Runs a sweep whose points are all `scomp` offloads, batching execution
/// of up to `group` consecutive points through one lane-batched dispatch
/// loop ([`assasin_ssd::scomp_group`]).
///
/// `prep` builds each point's own SSD and request — plus any per-point
/// carry value the caller needs again after execution — and the group then
/// executes together, so points running the *same kernel program* have
/// their cores interleaved into SIMD-style lane batches instead of each
/// point grinding through its own dispatch loop. Groups fan out across
/// worker threads exactly like [`run_points`]; within a group, requests
/// whose kernels are not lane-eligible fall back to the per-request epoch
/// loop unchanged. Results come back in point order and are byte-identical
/// to calling each point's `scomp` by itself (the lane executor retires
/// every lane on the same deterministic schedule as the scalar
/// interpreter).
pub fn run_lane_groups<P, T, F>(
    points: &[P],
    group: usize,
    prep: F,
) -> Vec<(Result<ScompResult, SsdError>, T)>
where
    P: Sync,
    T: Send,
    F: Fn(&P) -> (Ssd, ScompRequest, T) + Sync,
{
    assert!(group > 0, "lane groups need at least one point");
    let chunks: Vec<&[P]> = points.chunks(group).collect();
    let grouped = run_points(&chunks, |chunk| {
        let mut prepped: Vec<(Ssd, ScompRequest, T)> = chunk.iter().map(&prep).collect();
        let results =
            assasin_ssd::scomp_group(prepped.iter_mut().map(|(ssd, req, _)| (&mut *ssd, &*req)));
        results
            .into_iter()
            .zip(prepped)
            .map(|(r, (_, _, carry))| (r, carry))
            .collect::<Vec<_>>()
    });
    grouped.into_iter().flatten().collect()
}

/// Runs a sweep whose points share expensive setup within groups:
/// `build` materializes one prefix (typically a preconditioned
/// [`SsdImage`](assasin_ssd::SsdImage) plus whatever the runner needs to
/// rebuild requests) per *group* of points, and `run` executes each point
/// against its group's shared prefix — forking a copy-on-write device
/// instead of re-generating and re-loading the same dataset per point.
///
/// `group_of` maps each point to a small group id; `build` runs once per
/// distinct id, on the first point carrying it. Prefix builds fan out
/// across worker threads first, then all points fan out, each borrowing
/// its group's prefix — so with one thread the order is "all builds in
/// group order, then all points in point order", and results are
/// byte-identical to a serial run. Group ids need not be dense: ids that
/// never occur simply build nothing.
pub fn run_forked<P, I, R>(
    points: &[P],
    group_of: impl Fn(&P) -> usize + Sync,
    build: impl Fn(&P) -> I + Sync,
    run: impl Fn(&P, &I) -> R + Sync,
) -> Vec<R>
where
    P: Sync,
    I: Send + Sync,
    R: Send,
{
    let gids: Vec<usize> = points.iter().map(&group_of).collect();
    let n_groups = gids.iter().copied().max().map_or(0, |m| m + 1);
    let mut reps: Vec<Option<usize>> = vec![None; n_groups];
    for (i, &g) in gids.iter().enumerate() {
        if reps[g].is_none() {
            reps[g] = Some(i);
        }
    }
    let prefixes: Vec<Option<I>> = run_points(&reps, |rep| rep.map(|i| build(&points[i])));
    let indices: Vec<usize> = (0..points.len()).collect();
    run_points(&indices, |&i| {
        let prefix = prefixes[gids[i]]
            .as_ref()
            .expect("every occurring group id built a prefix");
        run(&points[i], prefix)
    })
}

/// Row-major cartesian product: `(rows[0], cols[0]), (rows[0], cols[1]),
/// ...` — the canonical point order for two-axis sweeps.
pub fn grid<A: Clone, B: Clone>(rows: &[A], cols: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(rows.len() * cols.len());
    for r in rows {
        for c in cols {
            out.push((r.clone(), c.clone()));
        }
    }
    out
}

/// Splits a flat row-major result vector back into rows of `cols`
/// elements (the inverse of [`grid`] along the row axis).
///
/// # Panics
///
/// Panics if the length is not a multiple of `cols`.
pub fn rows_of<T>(flat: Vec<T>, cols: usize) -> Vec<Vec<T>> {
    assert!(cols > 0, "rows_of needs at least one column");
    assert_eq!(
        flat.len() % cols,
        0,
        "flat sweep result ({}) not a whole number of rows of {cols}",
        flat.len()
    );
    let mut rows = Vec::with_capacity(flat.len() / cols);
    let mut it = flat.into_iter();
    while let Some(first) = it.next() {
        let mut row = Vec::with_capacity(cols);
        row.push(first);
        for _ in 1..cols {
            row.push(it.next().expect("length checked above"));
        }
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_follow_point_order_not_completion_order() {
        let points: Vec<u64> = (0..40).collect();
        let got = run_points(&points, |&p| p * 3);
        assert_eq!(got, points.iter().map(|p| p * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let points: Vec<usize> = (0..23).collect();
        let f = |&p: &usize| p.wrapping_mul(0x9E37_79B9) >> 7;
        let parallel = run_points(&points, f);
        let serial = assasin_parallel::with_max_threads(1, || run_points(&points, f));
        assert_eq!(parallel, serial);
    }

    #[test]
    fn grid_is_row_major_and_rows_of_inverts_it() {
        let g = grid(&["a", "b"], &[1, 2, 3]);
        assert_eq!(
            g,
            vec![("a", 1), ("a", 2), ("a", 3), ("b", 1), ("b", 2), ("b", 3)]
        );
        let rows = rows_of(g, 3);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![("a", 1), ("a", 2), ("a", 3)]);
        assert_eq!(rows[1], vec![("b", 1), ("b", 2), ("b", 3)]);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn ragged_rows_rejected() {
        let _ = rows_of(vec![1, 2, 3], 2);
    }

    #[test]
    fn point_builder_sets_fields() {
        let p = SweepPoint::new("scan", EngineKind::AssasinSb)
            .adjusted(true)
            .channel_local(true)
            .cores(4);
        assert_eq!(p.workload, "scan");
        assert!(p.adjusted && p.channel_local);
        assert_eq!(p.n_cores, 4);
    }
}
