//! Reproduces Figure 21: timing-adjusted throughput.
use assasin_bench::{experiments::fig21, Scale};

fn main() {
    println!("{}", fig21::run(&Scale::from_env()));
}
