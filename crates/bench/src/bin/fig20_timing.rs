//! Reproduces Figure 20: memory-structure access timing.
use assasin_bench::experiments::fig20;

fn main() {
    println!("{}", fig20::run());
}
