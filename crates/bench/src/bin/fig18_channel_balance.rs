//! Reproduces Figure 18 (channel balance; part of the scalability sweep).
use assasin_bench::{experiments::fig16, Scale};

fn main() {
    let r = fig16::run(&Scale::from_env());
    println!("Figure 18: per-channel GB/s at 8 cores");
    for (i, g) in r.channel_gbps.iter().enumerate() {
        println!("  ch{i}: {g:.3} GB/s");
    }
    println!("channel skew = {:.4}", r.channel_skew());
}
