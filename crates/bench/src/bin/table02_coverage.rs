//! Runs every Table II function class on the AssasinSb SSD.
use assasin_bench::{experiments::table02, Scale};

fn main() {
    println!("{}", table02::run(&Scale::from_env()));
}
