//! Reproduces the Section VI-E skew-sensitivity experiment.
use assasin_bench::{experiments::fig19, Scale};

fn main() {
    println!("{}", fig19::run(&Scale::from_env()));
}
