//! A fixed small benchmark sweep for tracking harness performance.
//!
//! Runs a handful of experiments at test scale three ways — fully serial
//! with the scalar interpreter (`with_max_threads(1)`; best of three reps
//! per experiment, since this pass feeds the perf gate), serial with the
//! 8-wide lane-batched executor forced (`set_lane_cap(8)`), and once under
//! an explicit parallel thread budget (`RAYON_NUM_THREADS`, else
//! `std::thread::available_parallelism`) — and writes per-experiment
//! wall-clock plus a representative simulated throughput to
//! `BENCH_perf_smoke.json`. Both thread counts are recorded so a "speedup"
//! of ~1.0 on a single-core box reads as what it is, not as a
//! parallelization regression; the lane pass records each experiment's
//! lane-session count and batch width next to its wall time, so the
//! batched-vs-scalar comparison is attributable per experiment. Every
//! pass also records each experiment's copy-on-write device forks and the
//! flash pages those forks inherited by reference — the prefix-reuse
//! savings of the snapshot/fork sweep harness (DESIGN.md §14). A
//! per-component section times the simulator's hot paths (interpreter,
//! memory hierarchy, flash, streambuffer) in isolation — best of three
//! reps, so one noisy rep on a shared box does not read as a regression —
//! so a slowdown can be attributed before reaching for a profiler. An
//! array pass runs the same 8-device workload serially and with
//! per-device worker threads, asserts the two simulated reports are
//! byte-identical (the DESIGN.md §15 determinism contract), and records
//! requested vs. granted workers, the wall-clock speedup, and the
//! merge/root-stall/rebuild counters. A serving pass runs the
//! multi-tenant front-end experiment once, snapshots the process-wide
//! serving counters (submissions/admitted/rejected/completed plus
//! memoization hits) around it, and records the per-tenant SLO rows —
//! completions, rejections, SLO violations, p50/p99 — of the most
//! saturated load point (DESIGN.md §16). Rerun after harness or
//! simulator changes.

use assasin_array::{array_counters, ArrayConfig, ArrayExec, ArrayPlacement, SsdArray};
use assasin_bench::experiments::{fig13, fig14, fig16, fig_reliability, fig_serving};
use assasin_bench::{bundles, Scale};
use assasin_core::{Core, CoreConfig, SyntheticEnv};
use assasin_flash::{FlashArray, FlashGeometry, FlashTiming, PhysPageAddr};
use assasin_kernels::{scan, AccessStyle};
use assasin_mem::{
    AccessKind, Dram, HierarchyConfig, MemHierarchy, ReadOutcome, StreamBuffer, StreamBufferConfig,
};
use assasin_serve::{serve_counters, TenantReport};
use assasin_sim::{SimDur, SimTime};
use bytes::Bytes;
use serde::Serialize;
use std::time::Instant;

/// One experiment's measurement under one executor mode.
#[derive(Debug, Serialize)]
struct ExperimentSample {
    /// Experiment name.
    name: &'static str,
    /// Wall-clock seconds for the run.
    wall_secs: f64,
    /// Representative simulated throughput from the report, GB/s
    /// (AssasinSb where the experiment sweeps engines).
    simulated_gbps: f64,
    /// Co-simulation rounds executed across all `scomp` calls of the run.
    cosim_rounds: u64,
    /// Fixed-epoch rounds the event-driven deadline jumps skipped.
    epochs_skipped: u64,
    /// `scomp` sessions that ran on the lane-batched executor (0 in the
    /// scalar passes).
    lane_sessions: u64,
    /// Widest lane batch formed so far when this run used lanes, else 0.
    lane_width: u64,
    /// Copy-on-write device forks taken off preconditioned images during
    /// the run (0 for experiments that load each device from scratch).
    forks: u64,
    /// Flash pages the forks inherited by reference instead of reloading
    /// — the prefix-reuse savings of the snapshot/fork sweep harness.
    fork_pages_shared: u64,
    /// Read-retry re-senses across the run (0 unless fault injection ran).
    read_retries: u64,
    /// Pages needing ECC correction across the run.
    ecc_corrected: u64,
    /// Pages lost beyond ECC + read-retry across the run.
    uncorrectable: u64,
    /// Blocks retired grown-bad across the run.
    grown_bad_blocks: u64,
}

/// One hot-path component timed in isolation.
#[derive(Debug, Serialize)]
struct ComponentSample {
    /// Component name.
    name: &'static str,
    /// Wall-clock seconds for the fixed-size loop.
    wall_secs: f64,
    /// Operations performed (instructions, accesses, page reads, words).
    ops: u64,
    /// Millions of operations per second.
    mops: f64,
}

/// One device lane of the array pass.
#[derive(Debug, Serialize)]
struct ArrayDeviceSample {
    /// Device id.
    device: usize,
    /// Simulated scan-offload throughput of this lane, GB/s.
    simulated_gbps: f64,
}

/// The multi-device array pass: the same workload executed serially and
/// with per-device worker threads, reports compared byte-for-byte.
#[derive(Debug, Serialize)]
struct ArrayPass {
    /// Devices in the array.
    devices: usize,
    /// Worker threads the threaded run asked for.
    requested_workers: usize,
    /// Executors actually granted by the thread budget (1 = the
    /// threaded engine degraded to serial on this box).
    effective_workers: usize,
    /// Wall-clock of the serial run, seconds.
    serial_wall_secs: f64,
    /// Wall-clock of the threaded run, seconds.
    threaded_wall_secs: f64,
    /// Serial / threaded wall-clock. Meaningless (~1.0) when
    /// `effective_workers` is 1; read that field first.
    wall_speedup: f64,
    /// Whether the serial and threaded runs produced byte-identical
    /// simulated reports (the determinism contract; always true).
    reports_identical: bool,
    /// Host-bound completions through the deterministic event merge
    /// (one run's worth).
    merged_events: u64,
    /// Simulated time queued on the shared root link (one run), seconds.
    link_stall_secs: f64,
    /// Bytes written to the replacement device by the rebuild storm
    /// (one run).
    rebuild_bytes: u64,
    /// Per-device simulated offload throughput (identical across runs).
    per_device: Vec<ArrayDeviceSample>,
}

/// The multi-tenant serving pass: one full `fig_serving` run with the
/// process-wide serving counters snapshotted around it, plus the
/// per-tenant SLO rows of the most saturated load point (DESIGN.md §16).
#[derive(Debug, Serialize)]
struct ServingPass {
    /// Wall-clock seconds for the run.
    wall_secs: f64,
    /// Requests offered across every serving run of the experiment.
    submissions: u64,
    /// Requests past admission control.
    admitted: u64,
    /// Requests turned away with a typed `Rejected` response.
    rejected: u64,
    /// Requests served to completion.
    completed: u64,
    /// Workloads the backing device actually executed (memoization makes
    /// this far smaller than `completed`).
    executions: u64,
    /// Completions served from a memoized service profile.
    memo_hits: u64,
    /// Offered-load multiple of the saturated point the tenant rows
    /// below come from (the last, heaviest point of the load curve).
    saturated_offered_x: f64,
    /// Per-tenant SLO accounting at that point: submissions, rejections,
    /// SLO violations, p50/p99/max latency.
    tenants: Vec<TenantReport>,
}

#[derive(Debug, Serialize)]
struct PerfSmokeReport {
    /// Scale used (fixed test scale; not affected by `ASSASIN_SCALE`).
    scale: &'static str,
    /// Thread count of the serial pass (always 1).
    serial_threads: usize,
    /// Thread budget of the parallel pass (`RAYON_NUM_THREADS` if set,
    /// else `std::thread::available_parallelism()`).
    parallel_threads: usize,
    /// Per-experiment samples with a single worker thread (scalar
    /// interpreter).
    serial: Vec<ExperimentSample>,
    /// Per-experiment samples with the parallel thread budget (scalar
    /// interpreter).
    parallel: Vec<ExperimentSample>,
    /// Per-experiment samples with a single worker thread and the 8-wide
    /// lane-batched executor forced (`set_lane_cap(8)`).
    lanes: Vec<ExperimentSample>,
    /// Total serial wall-clock, seconds.
    serial_total_secs: f64,
    /// Total parallel wall-clock, seconds.
    parallel_total_secs: f64,
    /// Total lane-pass wall-clock, seconds.
    lanes_total_secs: f64,
    /// Serial / parallel wall-clock ratio. Meaningless (~1.0) when
    /// `parallel_threads` is 1; see that field before reading anything
    /// into this one.
    speedup: f64,
    /// Scalar-serial / lane-serial wall-clock ratio: above 1.0 the lane
    /// executor is faster on this suite, below 1.0 scalar dispatch wins
    /// (the expected result with macro-op fusion — see DESIGN.md §13).
    lane_speedup: f64,
    /// Isolated hot-path component timings (single-threaded).
    components: Vec<ComponentSample>,
    /// Multi-device array pass (serial vs. threaded per-device workers).
    array: ArrayPass,
    /// Multi-tenant serving pass (admission, fairness, SLO accounting).
    serving: ServingPass,
}

fn sb_gbps(entries: &[fig13::Entry]) -> f64 {
    entries
        .iter()
        .find(|e| e.engine == "AssasinSb")
        .map_or(0.0, |e| e.gbps)
}

/// Process-wide counter deltas around one experiment run.
struct RunCounters {
    cosim_rounds: u64,
    epochs_skipped: u64,
    lane_sessions: u64,
    lane_width: u64,
    forks: u64,
    fork_pages_shared: u64,
    rel: assasin_flash::ReliabilityCounters,
}

/// Snapshot-delta of the process-wide co-sim + lane + media-reliability
/// counters around a run.
fn with_counters<T>(f: impl FnOnce() -> T) -> (T, RunCounters) {
    let (r0, s0) = assasin_ssd::cosim_counters();
    let (l0, _) = assasin_ssd::lane_counters();
    let (f0, p0) = assasin_ssd::fork_counters();
    let rel0 = assasin_flash::reliability_counters();
    let out = f();
    let (r1, s1) = assasin_ssd::cosim_counters();
    let (l1, w1) = assasin_ssd::lane_counters();
    let (f1, p1) = assasin_ssd::fork_counters();
    let rel1 = assasin_flash::reliability_counters();
    (
        out,
        RunCounters {
            cosim_rounds: r1 - r0,
            epochs_skipped: s1 - s0,
            lane_sessions: l1 - l0,
            // The width counter is a process-lifetime running max; report
            // it only for runs that actually formed lane batches.
            lane_width: if l1 > l0 { w1 } else { 0 },
            forks: f1 - f0,
            fork_pages_shared: p1 - p0,
            rel: rel1.since(rel0),
        },
    )
}

fn sample(name: &'static str, wall_secs: f64, gbps: f64, c: RunCounters) -> ExperimentSample {
    ExperimentSample {
        name,
        wall_secs,
        simulated_gbps: gbps,
        cosim_rounds: c.cosim_rounds,
        epochs_skipped: c.epochs_skipped,
        lane_sessions: c.lane_sessions,
        lane_width: c.lane_width,
        forks: c.forks,
        fork_pages_shared: c.fork_pages_shared,
        read_retries: c.rel.read_retries,
        ecc_corrected: c.rel.ecc_corrected,
        uncorrectable: c.rel.uncorrectable,
        grown_bad_blocks: c.rel.grown_bad_blocks,
    }
}

fn run_suite(scale: &Scale) -> Vec<ExperimentSample> {
    let mut samples = Vec::new();
    let t = Instant::now();
    let (f13, c) = with_counters(|| fig13::run_with(scale, false));
    samples.push(sample(
        "fig13",
        t.elapsed().as_secs_f64(),
        f13.functions
            .first()
            .map_or(0.0, |row| sb_gbps(&row.entries)),
        c,
    ));
    let t = Instant::now();
    let (f14, c) = with_counters(|| fig14::run_with(scale, false));
    samples.push(sample(
        "fig14",
        t.elapsed().as_secs_f64(),
        f14.entries
            .iter()
            .find(|e| e.engine == "AssasinSb")
            .map_or(0.0, |e| e.gbps),
        c,
    ));
    let t = Instant::now();
    let (f16, c) = with_counters(|| fig16::run(scale));
    samples.push(sample(
        "fig16",
        t.elapsed().as_secs_f64(),
        f16.points.last().map_or(0.0, |p| p.gbps),
        c,
    ));
    let t = Instant::now();
    let (rel, c) = with_counters(|| fig_reliability::run(scale));
    samples.push(sample(
        "reliability",
        t.elapsed().as_secs_f64(),
        rel.points.last().map_or(0.0, |p| p.gbps),
        c,
    ));
    let t = Instant::now();
    let (srv, c) = with_counters(|| fig_serving::run(scale));
    samples.push(sample(
        "fig_serving",
        t.elapsed().as_secs_f64(),
        // Aggregate admitted throughput at the heaviest load point, where
        // the device is saturated and the number is stable run to run.
        srv.load_curve.last().map_or(0.0, |p| {
            p.tenants.iter().filter_map(|t| t.achieved_gbps).sum()
        }),
        c,
    ));
    samples
}

/// Repetitions per component loop; the fastest rep is reported, which
/// damps scheduler and frequency noise on shared machines.
const COMPONENT_REPS: usize = 5;

/// Full-suite repetitions for the gated scalar serial pass; per
/// experiment, the fastest rep's wall time is reported.
const SERIAL_REPS: usize = 3;

fn component(name: &'static str, ops: u64, mut f: impl FnMut()) -> ComponentSample {
    let mut wall_secs = f64::INFINITY;
    for _ in 0..COMPONENT_REPS {
        let t = Instant::now();
        f();
        wall_secs = wall_secs.min(t.elapsed().as_secs_f64());
    }
    ComponentSample {
        name,
        wall_secs,
        ops,
        mops: ops as f64 / wall_secs.max(1e-9) / 1e6,
    }
}

/// Times each simulator hot path in isolation with fixed-size loops.
fn run_components() -> Vec<ComponentSample> {
    let mut out = Vec::new();

    // Interpreter: predecoded dispatch over the scan kernel on a fed
    // stream (the per-instruction path, including streambuffer words).
    // A core halts once, so each rep rebuilds core and environment and
    // times only the run itself.
    let data = vec![0u8; 1 << 20];
    let mut wall_secs = f64::INFINITY;
    let mut retired = 0;
    for _ in 0..COMPONENT_REPS {
        let mut env = SyntheticEnv::new(8, 4096);
        env.set_input(0, &data);
        let mut core = Core::new(
            0,
            CoreConfig::assasin_sb(),
            scan::program(AccessStyle::Stream),
            None,
        );
        let t = Instant::now();
        core.run_to_halt(&mut env);
        wall_secs = wall_secs.min(t.elapsed().as_secs_f64());
        retired = core.mix().total;
    }
    out.push(ComponentSample {
        name: "interpreter",
        wall_secs,
        ops: retired,
        mops: retired as f64 / wall_secs.max(1e-9) / 1e6,
    });

    // Memory hierarchy: sequential single-line loads — mostly L1 hits on
    // the try_hit fast path with a DRAM-filled miss every 16 words.
    const HIER_OPS: u64 = 2_000_000;
    let mut h = MemHierarchy::new(
        HierarchyConfig::baseline(),
        Dram::lpddr5_8gbps().into_shared(),
    );
    out.push(component("hierarchy", HIER_OPS, || {
        let mut t = SimTime::ZERO;
        for i in 0..HIER_OPS {
            t += SimDur::from_ns(2);
            std::hint::black_box(h.access(AccessKind::Load, 0, i * 4, 4, t));
        }
    }));

    // Flash: page reads walking the array (timeline scheduling per read).
    const FLASH_OPS: u64 = 200_000;
    let geom = FlashGeometry::default();
    let mut arr = FlashArray::new(geom, FlashTiming::default());
    let addr = PhysPageAddr {
        channel: 0,
        chip: 0,
        plane: 0,
        block: 0,
        page: 0,
    };
    arr.write_page(addr, Bytes::from(vec![0u8; 4096]), SimTime::ZERO)
        .expect("write page");
    out.push(component("flash", FLASH_OPS, || {
        let mut t = SimTime::ZERO;
        for _ in 0..FLASH_OPS {
            t += SimDur::from_us(5);
            std::hint::black_box(arr.read_page(addr, t).expect("read page").1);
        }
    }));

    // Streambuffer: sequential word reads through the head-page cursor.
    const SB_OPS: u64 = 2_000_000;
    let mut sb = StreamBuffer::new(StreamBufferConfig::default());
    let page = Bytes::from(vec![7u8; 4096]);
    sb.push_page(0, page.clone(), SimTime::ZERO).expect("push");
    out.push(component("streambuffer", SB_OPS, || {
        for _ in 0..SB_OPS {
            match sb.read(0, 4, SimTime::ZERO).expect("read") {
                ReadOutcome::Data { freed_pages, .. } => {
                    if freed_pages > 0 {
                        sb.push_page(0, page.clone(), SimTime::ZERO).expect("push");
                    }
                }
                _ => unreachable!("stream kept fed"),
            }
        }
    }));

    out
}

/// Devices in the array pass (and workers the threaded run requests).
const ARRAY_DEVICES: usize = 8;

/// One array-pass run: a striped store/read/scan-offload over
/// `ARRAY_DEVICES` devices plus a RAID6 rebuild storm. Returns the
/// transcript of every simulated observable (for the byte-identity
/// check) and the per-device offload throughput.
fn array_workload(
    scale: &Scale,
    exec: ArrayExec,
) -> (String, Vec<ArrayDeviceSample>, usize, usize) {
    let device = assasin_ssd::SsdConfig::engine_config(assasin_core::EngineKind::AssasinSb);
    let data: Vec<u8> = (0..scale.scalability_bytes)
        .map(|i| {
            ((i as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(scale.seed)
                >> 8) as u8
        })
        .collect();

    let mut transcript = String::new();
    let mut a = SsdArray::new(
        ArrayConfig::new(ARRAY_DEVICES, ArrayPlacement::Striped, device).with_exec(exec),
    )
    .expect("striped array");
    let (requested, effective) = (a.requested_workers(), a.effective_workers());
    transcript += &format!("store {:?}\n", a.store_object(1, &data).expect("store"));
    let read = a.read_object(1).expect("read");
    transcript += &format!(
        "read {} {:?} {:?}\n",
        read.data.len(),
        read.elapsed,
        read.link
    );
    let scomp = a.scomp_object(1, bundles::scan_bundle).expect("scomp");
    transcript += &format!("scomp {scomp:?}\n");
    let per_device = scomp
        .per_device
        .iter()
        .map(|l| ArrayDeviceSample {
            device: l.device,
            simulated_gbps: l.simulated_gbps,
        })
        .collect();
    transcript += &format!("stats {:?}\n", a.stats());

    let mut r6 = SsdArray::new(ArrayConfig::new(5, ArrayPlacement::Raid6, device).with_exec(exec))
        .expect("raid6 array");
    for i in 0..4u64 {
        let part: Vec<u8> = (0..scale.scalability_bytes / 4)
            .map(|b| ((b as u64).wrapping_mul(0x9E37_79B9).wrapping_add(i) >> 8) as u8)
            .collect();
        r6.store_object(i + 1, &part).expect("store quarter");
    }
    r6.fail_device(1);
    transcript += &format!(
        "degraded {:?}\n",
        r6.read_object(1).expect("degraded").elapsed
    );
    transcript += &format!("rebuild {:?}\n", r6.rebuild_device(1).expect("rebuild"));
    transcript += &format!("stats {:?}\n", r6.stats());
    (transcript, per_device, requested, effective)
}

/// Runs the array workload serially and threaded, compares the reports
/// byte-for-byte, and snapshots the array counters around one run.
fn run_array_pass(scale: &Scale) -> ArrayPass {
    let c0 = array_counters();
    let t = Instant::now();
    let (serial_report, per_device, _, _) = array_workload(scale, ArrayExec::Serial);
    let serial_wall_secs = t.elapsed().as_secs_f64();
    let c1 = array_counters();

    let t = Instant::now();
    let (threaded_report, _, requested_workers, effective_workers) = array_workload(
        scale,
        ArrayExec::Threaded {
            workers: ARRAY_DEVICES,
        },
    );
    let threaded_wall_secs = t.elapsed().as_secs_f64();

    let reports_identical = serial_report == threaded_report;
    assert!(
        reports_identical,
        "array determinism contract violated: threaded report differs from serial"
    );
    ArrayPass {
        devices: ARRAY_DEVICES,
        requested_workers,
        effective_workers,
        serial_wall_secs,
        threaded_wall_secs,
        wall_speedup: serial_wall_secs / threaded_wall_secs.max(1e-9),
        reports_identical,
        merged_events: c1.1 - c0.1,
        link_stall_secs: (c1.2 - c0.2) as f64 / 1e12,
        rebuild_bytes: c1.3 - c0.3,
        per_device,
    }
}

/// Runs the serving experiment once with the process-wide serving
/// counters snapshotted around it and keeps the per-tenant SLO rows of
/// the heaviest load point.
fn run_serving_pass(scale: &Scale) -> ServingPass {
    let c0 = serve_counters();
    let t = Instant::now();
    let r = fig_serving::run(scale);
    let wall_secs = t.elapsed().as_secs_f64();
    let c1 = serve_counters();
    let saturated = r.load_curve.last().expect("load curve is non-empty");
    ServingPass {
        wall_secs,
        submissions: c1.0 - c0.0,
        admitted: c1.1 - c0.1,
        rejected: c1.2 - c0.2,
        completed: c1.3 - c0.3,
        executions: c1.4 - c0.4,
        memo_hits: c1.5 - c0.5,
        saturated_offered_x: saturated.offered_x,
        tenants: saturated.tenants.clone(),
    }
}

fn main() {
    let scale = Scale::test_scale();
    let parallel_threads = assasin_parallel::current_max_threads();

    // Scalar passes: pin the lane cap so an inherited `ASSASIN_LANES`
    // cannot skew the baseline. The serial pass feeds the perf gate, so
    // it repeats the whole suite and keeps each experiment's fastest rep
    // — the suite is deterministic, so only the wall clock differs.
    assasin_ssd::set_lane_cap(1);
    let mut serial: Vec<ExperimentSample> = Vec::new();
    let mut serial_total_secs = f64::INFINITY;
    for _ in 0..SERIAL_REPS {
        let t = Instant::now();
        let rep = assasin_parallel::with_max_threads(1, || run_suite(&scale));
        serial_total_secs = serial_total_secs.min(t.elapsed().as_secs_f64());
        if serial.is_empty() {
            serial = rep;
        } else {
            for (best, s) in serial.iter_mut().zip(rep) {
                best.wall_secs = best.wall_secs.min(s.wall_secs);
            }
        }
    }

    let t = Instant::now();
    let parallel = assasin_parallel::with_max_threads(parallel_threads, || run_suite(&scale));
    let parallel_total_secs = t.elapsed().as_secs_f64();

    // Lane pass: same serial suite on the 8-wide lockstep executor.
    assasin_ssd::set_lane_cap(8);
    let t = Instant::now();
    let lanes = assasin_parallel::with_max_threads(1, || run_suite(&scale));
    let lanes_total_secs = t.elapsed().as_secs_f64();
    assasin_ssd::set_lane_cap(1);

    let components = run_components();
    let array = run_array_pass(&scale);
    let serving = run_serving_pass(&scale);

    let report = PerfSmokeReport {
        scale: "test",
        serial_threads: 1,
        parallel_threads,
        serial,
        parallel,
        lanes,
        serial_total_secs,
        parallel_total_secs,
        lanes_total_secs,
        speedup: serial_total_secs / parallel_total_secs.max(1e-9),
        lane_speedup: serial_total_secs / lanes_total_secs.max(1e-9),
        components,
        array,
        serving,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    std::fs::write("BENCH_perf_smoke.json", &json).expect("write BENCH_perf_smoke.json");
    println!("{json}");
    eprintln!(
        "perf_smoke: serial {:.2}s (1 thread), parallel {:.2}s ({} threads) -> {:.2}x",
        report.serial_total_secs,
        report.parallel_total_secs,
        report.parallel_threads,
        report.speedup
    );
    let widest = report.lanes.iter().map(|s| s.lane_width).max().unwrap_or(0);
    eprintln!(
        "perf_smoke: lane pass {:.2}s (8-wide, widest batch {}) vs scalar {:.2}s -> {:.2}x",
        report.lanes_total_secs, widest, report.serial_total_secs, report.lane_speedup
    );
    let (forks, shared): (u64, u64) = report
        .serial
        .iter()
        .fold((0, 0), |(f, p), s| (f + s.forks, p + s.fork_pages_shared));
    eprintln!(
        "perf_smoke: serial pass took {forks} CoW forks sharing {shared} flash pages by reference"
    );
    for c in &report.components {
        eprintln!(
            "perf_smoke component: {:>12} {:>10} ops in {:.3}s ({:.1} Mops/s)",
            c.name, c.ops, c.wall_secs, c.mops
        );
    }
    let a = &report.array;
    eprintln!(
        "perf_smoke array: {} devices, serial {:.2}s vs threaded {:.2}s \
         ({} of {} workers granted) -> {:.2}x, reports identical: {}, \
         {} merged events, {:.3}ms root stall, {} rebuild bytes",
        a.devices,
        a.serial_wall_secs,
        a.threaded_wall_secs,
        a.effective_workers,
        a.requested_workers,
        a.wall_speedup,
        a.reports_identical,
        a.merged_events,
        a.link_stall_secs * 1e3,
        a.rebuild_bytes
    );
    let s = &report.serving;
    eprintln!(
        "perf_smoke serving: {} submitted, {} admitted, {} rejected, \
         {} completed off {} device executions ({} memo hits); \
         saturated point ({:.1}x offered):",
        s.submissions,
        s.admitted,
        s.rejected,
        s.completed,
        s.executions,
        s.memo_hits,
        s.saturated_offered_x
    );
    for t in &s.tenants {
        eprintln!(
            "perf_smoke serving tenant {:>8}: {}/{} completed, {} rejected, \
             {} SLO violations, p99 {}",
            t.name,
            t.completed,
            t.submitted,
            t.rejected,
            t.slo_violations,
            t.p99_us.map_or("n/a".to_string(), |v| format!("{v:.1} us")),
        );
    }
}
