//! A fixed small benchmark sweep for tracking harness performance.
//!
//! Runs a handful of experiments at test scale twice — once fully serial
//! (`with_max_threads(1)`) and once with the default thread budget — and
//! writes per-experiment wall-clock plus a representative simulated
//! throughput to `BENCH_perf_smoke.json`. Rerun after harness or
//! simulator changes to see the parallel-executor speedup and catch
//! slowdowns in the hot paths.

use assasin_bench::experiments::{fig13, fig14, fig16};
use assasin_bench::Scale;
use serde::Serialize;
use std::time::Instant;

/// One experiment's measurement under one executor mode.
#[derive(Debug, Serialize)]
struct ExperimentSample {
    /// Experiment name.
    name: &'static str,
    /// Wall-clock seconds for the run.
    wall_secs: f64,
    /// Representative simulated throughput from the report, GB/s
    /// (AssasinSb where the experiment sweeps engines).
    simulated_gbps: f64,
}

#[derive(Debug, Serialize)]
struct PerfSmokeReport {
    /// Scale used (fixed test scale; not affected by `ASSASIN_SCALE`).
    scale: &'static str,
    /// Thread budget of the parallel pass (`RAYON_NUM_THREADS` or cores).
    parallel_threads: usize,
    /// Per-experiment samples with a single worker thread.
    serial: Vec<ExperimentSample>,
    /// Per-experiment samples with the default thread budget.
    parallel: Vec<ExperimentSample>,
    /// Total serial wall-clock, seconds.
    serial_total_secs: f64,
    /// Total parallel wall-clock, seconds.
    parallel_total_secs: f64,
    /// Serial / parallel wall-clock ratio.
    speedup: f64,
}

fn sb_gbps(entries: &[fig13::Entry]) -> f64 {
    entries
        .iter()
        .find(|e| e.engine == "AssasinSb")
        .map_or(0.0, |e| e.gbps)
}

fn run_suite(scale: &Scale) -> Vec<ExperimentSample> {
    let mut samples = Vec::new();
    let t = Instant::now();
    let f13 = fig13::run_with(scale, false);
    samples.push(ExperimentSample {
        name: "fig13",
        wall_secs: t.elapsed().as_secs_f64(),
        simulated_gbps: f13
            .functions
            .first()
            .map_or(0.0, |row| sb_gbps(&row.entries)),
    });
    let t = Instant::now();
    let f14 = fig14::run_with(scale, false);
    samples.push(ExperimentSample {
        name: "fig14",
        wall_secs: t.elapsed().as_secs_f64(),
        simulated_gbps: f14
            .entries
            .iter()
            .find(|e| e.engine == "AssasinSb")
            .map_or(0.0, |e| e.gbps),
    });
    let t = Instant::now();
    let f16 = fig16::run(scale);
    samples.push(ExperimentSample {
        name: "fig16",
        wall_secs: t.elapsed().as_secs_f64(),
        simulated_gbps: f16.points.last().map_or(0.0, |p| p.gbps),
    });
    samples
}

fn main() {
    let scale = Scale::test_scale();

    let t = Instant::now();
    let serial = assasin_parallel::with_max_threads(1, || run_suite(&scale));
    let serial_total_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let parallel = run_suite(&scale);
    let parallel_total_secs = t.elapsed().as_secs_f64();

    let report = PerfSmokeReport {
        scale: "test",
        parallel_threads: assasin_parallel::current_max_threads(),
        serial,
        parallel,
        serial_total_secs,
        parallel_total_secs,
        speedup: serial_total_secs / parallel_total_secs.max(1e-9),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    std::fs::write("BENCH_perf_smoke.json", &json).expect("write BENCH_perf_smoke.json");
    println!("{json}");
    eprintln!(
        "perf_smoke: serial {:.2}s, parallel {:.2}s ({} threads) -> {:.2}x",
        report.serial_total_secs,
        report.parallel_total_secs,
        report.parallel_threads,
        report.speedup
    );
}
