//! Runs the multi-device array experiment (scaling, degraded reads,
//! rebuild storms; DESIGN.md §15).

use assasin_bench::experiments::fig_array;
use assasin_bench::Scale;

fn main() {
    println!("{}", fig_array::run(&Scale::from_env()));
}
