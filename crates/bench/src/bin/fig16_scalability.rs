//! Reproduces Figures 16-18: scalability, utilization, channel balance.
use assasin_bench::{experiments::fig16, Scale};

fn main() {
    println!("{}", fig16::run(&Scale::from_env()));
}
