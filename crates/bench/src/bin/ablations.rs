//! Runs the design-choice ablation sweeps.
use assasin_bench::{experiments::ablations, Scale};

fn main() {
    println!("{}", ablations::run(&Scale::from_env()));
}
