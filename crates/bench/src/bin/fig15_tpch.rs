//! Reproduces Figure 15: end-to-end TPC-H latency across 22 queries.
use assasin_bench::{experiments::fig15, Scale};

fn main() {
    println!("{}", fig15::run(&Scale::from_env()));
}
