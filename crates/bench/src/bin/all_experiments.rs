//! Runs the full evaluation (every table and figure) and writes text +
//! JSON reports under `reports/`.
//!
//! Independent experiments run concurrently as sweep tasks (the fig21
//! result feeds fig22, so those two share a task); reports print and save
//! in a fixed canonical order regardless of completion order, so serial
//! (`RAYON_NUM_THREADS=1`) and parallel runs produce identical output.
//!
//! `--filter <name>` (repeatable, comma-separable) or the `ASSASIN_FILTER`
//! environment variable restricts the run to tasks whose name contains one
//! of the given substrings — e.g. `--filter fig16,fig19` or
//! `ASSASIN_FILTER=fig15` — for iterating on one experiment without
//! paying for the whole suite.

use assasin_bench::experiments::*;
use assasin_bench::{sweep, Scale};
use std::fmt::Display;
use std::fs;
use std::time::Instant;

/// One finished report: `(name, rendered text, serialized JSON)`.
type Report = (&'static str, String, serde_json::Value);

fn render<R: Display + serde::Serialize>(name: &'static str, r: &R) -> Report {
    (
        name,
        r.to_string(),
        serde_json::to_value(r).expect("serializable"),
    )
}

fn save(name: &str, text: &str, json: &serde_json::Value) {
    fs::create_dir_all("reports").expect("reports dir");
    fs::write(format!("reports/{name}.txt"), text).expect("write text report");
    fs::write(
        format!("reports/{name}.json"),
        serde_json::to_string_pretty(json).expect("serialize"),
    )
    .expect("write json report");
}

/// Task-name filters from `--filter` arguments (repeatable, each value
/// may be comma-separated) plus `ASSASIN_FILTER`. Empty = run everything.
fn filters() -> Vec<String> {
    let mut out = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = if arg == "--filter" {
            args.next().unwrap_or_else(|| {
                eprintln!("--filter needs a value (e.g. --filter fig16)");
                std::process::exit(2);
            })
        } else if let Some(v) = arg.strip_prefix("--filter=") {
            v.to_string()
        } else {
            eprintln!("unknown argument `{arg}` (supported: --filter <name>)");
            std::process::exit(2);
        };
        out.extend(value.split(',').map(str::to_string));
    }
    if let Ok(env) = std::env::var("ASSASIN_FILTER") {
        out.extend(env.split(',').map(str::to_string));
    }
    out.retain(|f| !f.trim().is_empty());
    out
}

fn main() {
    let scale = Scale::from_env();
    let filters = filters();
    let t0 = Instant::now();
    type Task = (&'static str, Box<dyn Fn() -> Vec<Report> + Send + Sync>);
    // Canonical report order; each task may emit several reports.
    let tasks: Vec<Task> = vec![
        (
            "table02",
            Box::new(move || vec![render("table02", &table02::run(&scale))]),
        ),
        (
            "table04",
            Box::new(|| vec![render("table04", &table04::run())]),
        ),
        (
            "fig05",
            Box::new(move || vec![render("fig05", &fig05::run(&scale))]),
        ),
        (
            "fig13",
            Box::new(move || vec![render("fig13", &fig13::run(&scale))]),
        ),
        (
            "fig14",
            Box::new(move || vec![render("fig14", &fig14::run(&scale))]),
        ),
        (
            "fig15",
            Box::new(move || vec![render("fig15", &fig15::run(&scale))]),
        ),
        (
            "fig16",
            Box::new(move || vec![render("fig16", &fig16::run(&scale))]),
        ),
        (
            "fig19",
            Box::new(move || vec![render("fig19", &fig19::run(&scale))]),
        ),
        ("fig20", Box::new(|| vec![render("fig20", &fig20::run())])),
        (
            "fig21+fig22",
            Box::new(move || {
                // fig22 derives from the timing-adjusted speedups, so it
                // rides in the same task as its fig21 dependency.
                let f21 = fig21::run(&scale);
                let f22 = fig22::run(&f21);
                vec![render("fig21", &f21), render("fig22", &f22)]
            }),
        ),
        (
            "table05",
            Box::new(|| vec![render("table05", &table05::run())]),
        ),
        (
            "ablations",
            Box::new(move || vec![render("ablations", &ablations::run(&scale))]),
        ),
        (
            "reliability",
            Box::new(move || vec![render("reliability", &fig_reliability::run(&scale))]),
        ),
        (
            "fig_array",
            Box::new(move || vec![render("fig_array", &fig_array::run(&scale))]),
        ),
        (
            "fig_serving",
            Box::new(move || vec![render("fig_serving", &fig_serving::run(&scale))]),
        ),
    ];
    let tasks: Vec<Task> = tasks
        .into_iter()
        .filter(|(name, _)| filters.is_empty() || filters.iter().any(|f| name.contains(f.trim())))
        .collect();
    if tasks.is_empty() {
        eprintln!("no experiments match the filter; names are table02, table04, fig05, fig13, fig14, fig15, fig16, fig19, fig20, fig21+fig22, table05, ablations, reliability, fig_array, fig_serving");
        std::process::exit(2);
    }
    let produced = sweep::run_points(&tasks, |(name, task)| {
        let started = Instant::now();
        let reports = task();
        eprintln!("[{}] done in {:.1}s", name, started.elapsed().as_secs_f64());
        reports
    });
    for (name, text, json) in produced.into_iter().flatten() {
        println!("{text}");
        save(name, &text, &json);
    }
    eprintln!("all experiments done in {:.1}s", t0.elapsed().as_secs_f64());
}
