//! Runs the full evaluation (every table and figure) and writes text +
//! JSON reports under `reports/`.
use assasin_bench::experiments::*;
use assasin_bench::Scale;
use std::fs;
use std::time::Instant;

fn save(name: &str, text: &str, json: &serde_json::Value) {
    fs::create_dir_all("reports").expect("reports dir");
    fs::write(format!("reports/{name}.txt"), text).expect("write text report");
    fs::write(
        format!("reports/{name}.json"),
        serde_json::to_string_pretty(json).expect("serialize"),
    )
    .expect("write json report");
}

fn main() {
    let scale = Scale::from_env();
    let t0 = Instant::now();
    macro_rules! run {
        ($name:literal, $report:expr) => {{
            let started = Instant::now();
            let r = $report;
            let text = r.to_string();
            println!("{text}");
            save($name, &text, &serde_json::to_value(&r).expect("serializable"));
            eprintln!("[{}] done in {:.1}s", $name, started.elapsed().as_secs_f64());
            r
        }};
    }

    run!("table02", table02::run(&scale));
    run!("table04", table04::run());
    run!("fig05", fig05::run(&scale));
    run!("fig13", fig13::run(&scale));
    run!("fig14", fig14::run(&scale));
    run!("fig15", fig15::run(&scale));
    run!("fig16", fig16::run(&scale));
    run!("fig19", fig19::run(&scale));
    run!("fig20", fig20::run());
    let f21 = run!("fig21", fig21::run(&scale));
    run!("fig22", fig22::run(&f21));
    run!("table05", table05::run());
    run!("ablations", ablations::run(&scale));
    eprintln!("all experiments done in {:.1}s", t0.elapsed().as_secs_f64());
}
