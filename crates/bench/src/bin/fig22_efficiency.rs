//! Reproduces Figure 22 and Table V: power/area efficiency.
use assasin_bench::{
    experiments::{fig21, fig22, table05},
    Scale,
};

fn main() {
    println!("{}", table05::run());
    let f21 = fig21::run(&Scale::from_env());
    println!("{}", fig22::run(&f21));
}
