//! Reproduces Figure 14: the Parse-Select-Filter pipeline offload.
use assasin_bench::{experiments::fig14, Scale};

fn main() {
    println!("{}", fig14::run(&Scale::from_env()));
}
