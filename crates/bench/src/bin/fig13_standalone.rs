//! Reproduces Figure 13: standalone offloaded-function throughput.
use assasin_bench::{experiments::fig13, Scale};

fn main() {
    println!("{}", fig13::run(&Scale::from_env()));
}
