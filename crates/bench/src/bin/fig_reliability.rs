//! Runs the reliability sweep (NAND fault injection; DESIGN.md §12).

use assasin_bench::experiments::fig_reliability;
use assasin_bench::Scale;

fn main() {
    println!("{}", fig_reliability::run(&Scale::from_env()));
}
