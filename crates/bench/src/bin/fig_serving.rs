//! Runs the multi-tenant serving experiment (tail latency, admission
//! control, weighted fairness; DESIGN.md §16).

use assasin_bench::experiments::fig_serving;
use assasin_bench::Scale;

fn main() {
    println!("{}", fig_serving::run(&Scale::from_env()));
}
