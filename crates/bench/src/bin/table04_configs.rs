//! Reproduces Table IV: engine configurations.
use assasin_bench::experiments::table04;

fn main() {
    println!("{}", table04::run());
}
