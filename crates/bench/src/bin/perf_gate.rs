//! CI regression gate over `BENCH_perf_smoke.json`.
//!
//! Compares a freshly generated perf-smoke report against a committed
//! baseline and fails (exit 1) when any isolated component's throughput
//! drops, or any serial experiment's wall time grows, by more than the
//! threshold (default 20%, override with `ASSASIN_PERF_GATE_PCT`).
//! Entry sets must match exactly in both directions: a baseline entry
//! missing from the fresh report (deleted/renamed experiment) and a
//! fresh entry missing from the baseline (new experiment without a
//! baseline regeneration) are both hard failures — see
//! [`assasin_bench::gate`].
//!
//! ```text
//! perf_gate <baseline.json> [fresh.json]    # fresh defaults to BENCH_perf_smoke.json
//! ```
//!
//! Only serial wall times are gated: the parallel pass depends on the
//! runner's core count, and component loops are single-threaded already.
//! Wall-clock on shared CI runners is noisy, which is why the default
//! threshold is a generous 20% — the gate exists to catch order-of-
//! magnitude mistakes (an accidental `O(n^2)`, a debug assert in the hot
//! path), not single-digit drift.

use serde_json::Value;
use std::process::ExitCode;

/// The regression threshold: `ASSASIN_PERF_GATE_PCT` when set, else 20%.
/// A set-but-malformed value is a hard error (exit 2), not a silent fall
/// back to the default — a CI job that typos `ASSASIN_PERF_GATE_PCT=5%`
/// must not quietly gate at 20%.
fn threshold_pct() -> f64 {
    match std::env::var("ASSASIN_PERF_GATE_PCT") {
        Err(std::env::VarError::NotPresent) => 20.0,
        Err(e) => {
            eprintln!("perf_gate: ASSASIN_PERF_GATE_PCT is not valid unicode: {e}");
            std::process::exit(2);
        }
        Ok(s) => match s.parse::<f64>() {
            Ok(pct) if pct.is_finite() && pct >= 0.0 => pct,
            _ => {
                eprintln!(
                    "perf_gate: invalid ASSASIN_PERF_GATE_PCT {s:?}: \
                     expected a non-negative number of percent (e.g. 20)"
                );
                std::process::exit(2);
            }
        },
    }
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_gate: cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("perf_gate: bad JSON in {path}: {e}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| {
        eprintln!("usage: perf_gate <baseline.json> [fresh.json]");
        std::process::exit(2);
    });
    let fresh_path = args
        .next()
        .unwrap_or_else(|| "BENCH_perf_smoke.json".to_string());
    let pct = threshold_pct();

    let baseline = load(&baseline_path);
    let fresh = load(&fresh_path);
    let outcome = assasin_bench::gate::compare(&baseline, &fresh, pct);
    for line in &outcome.log {
        println!("{line}");
    }
    if outcome.failures.is_empty() {
        println!("perf_gate: OK (threshold {pct}%)");
        ExitCode::SUCCESS
    } else {
        for f in &outcome.failures {
            eprintln!("perf_gate FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
