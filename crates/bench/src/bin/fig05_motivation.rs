//! Reproduces the Section III motivating example and Figure 5.
use assasin_bench::{experiments::fig05, Scale};

fn main() {
    println!("{}", fig05::run(&Scale::from_env()));
}
