//! The perf-gate comparison, extracted from the `perf_gate` binary so
//! the matching rules are unit-testable.
//!
//! The gate is symmetric about entry *presence*: an entry in the
//! baseline with no counterpart in the fresh report is a hard failure
//! (a deleted experiment can't dodge the gate), and an entry in the
//! fresh report with no counterpart in the baseline is one too (a
//! renamed experiment shows up as exactly that pair of failures, and a
//! genuinely new experiment forces a deliberate baseline regeneration).

use serde_json::Value;

/// Outcome of one gate run: human-readable comparison lines plus the
/// failures (empty means the gate passes).
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// One line per compared metric, for the CI log.
    pub log: Vec<String>,
    /// Hard failures; any entry fails the gate.
    pub failures: Vec<String>,
}

/// `name -> metric` for an array of `{name, ...}` objects.
fn metrics(report: &Value, section: &str, field: &str) -> Vec<(String, f64)> {
    report[section]
        .as_array()
        .map(|rows| {
            rows.iter()
                .filter_map(|row| Some((row["name"].as_str()?.to_string(), row[field].as_f64()?)))
                .collect()
        })
        .unwrap_or_default()
}

/// One gated report section: where the rows live, which field is
/// gated, and which direction of change is a regression (`sign` is
/// `-1.0` when lower is worse — throughput — and `+1.0` when higher is
/// worse — wall time).
struct Section {
    section: &'static str,
    field: &'static str,
    unit: &'static str,
    kind: &'static str,
    sign: f64,
}

const SECTIONS: [Section; 2] = [
    Section {
        section: "components",
        field: "mops",
        unit: "Mops",
        kind: "component",
        sign: -1.0,
    },
    Section {
        section: "serial",
        field: "wall_secs",
        unit: "s",
        kind: "experiment",
        sign: 1.0,
    },
];

/// Walks one section both ways: baseline entries gate the metric delta
/// (and must exist in the fresh report); fresh entries must exist in
/// the baseline.
fn compare_section(out: &mut GateOutcome, baseline: &Value, fresh: &Value, s: &Section, pct: f64) {
    let Section {
        section,
        field,
        unit,
        kind,
        sign,
    } = *s;
    let fresh_rows = metrics(fresh, section, field);
    let base_rows = metrics(baseline, section, field);
    for (name, base) in &base_rows {
        let Some(&(_, now)) = fresh_rows.iter().find(|(n, _)| n == name) else {
            out.failures
                .push(format!("{kind} {name}: missing from fresh report"));
            continue;
        };
        let change = (now - base) / base * 100.0;
        out.log.push(format!(
            "{kind} {name:>14}: {base:9.3} -> {now:9.3} {unit} ({change:+.1}%)"
        ));
        if change * sign > pct {
            let limit = if sign < 0.0 { "-" } else { "+" };
            out.failures.push(format!(
                "{kind} {name}: {base:.3} -> {now:.3} {unit} ({change:+.1}%, limit {limit}{pct}%)"
            ));
        }
    }
    for (name, _) in &fresh_rows {
        if !base_rows.iter().any(|(n, _)| n == name) {
            out.failures.push(format!(
                "{kind} {name}: missing from baseline (regenerate the baseline to admit it)"
            ));
        }
    }
}

/// Compares a fresh perf-smoke report against the committed baseline at
/// the given threshold (percent). Component throughput may not drop,
/// serial wall time may not grow, and the entry sets must match exactly
/// in both directions.
pub fn compare(baseline: &Value, fresh: &Value, pct: f64) -> GateOutcome {
    let mut out = GateOutcome::default();
    for s in &SECTIONS {
        compare_section(&mut out, baseline, fresh, s, pct);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(entries: &[(&str, f64)], field: &str) -> String {
        let body: Vec<String> = entries
            .iter()
            .map(|(n, v)| format!("{{\"name\": \"{n}\", \"{field}\": {v}}}"))
            .collect();
        format!("[{}]", body.join(", "))
    }

    fn report(components: &[(&str, f64)], serial: &[(&str, f64)]) -> Value {
        let text = format!(
            "{{\"components\": {}, \"serial\": {}}}",
            rows(components, "mops"),
            rows(serial, "wall_secs")
        );
        serde_json::from_str(&text).expect("valid test JSON")
    }

    fn empty() -> Value {
        serde_json::from_str("{}").expect("valid test JSON")
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(&[("aes", 100.0)], &[("fig13", 1.0)]);
        let out = compare(&r, &r, 20.0);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert_eq!(out.log.len(), 2);
    }

    #[test]
    fn throughput_drop_and_wall_growth_fail_beyond_threshold() {
        let base = report(&[("aes", 100.0)], &[("fig13", 1.0)]);
        let fresh = report(&[("aes", 70.0)], &[("fig13", 1.5)]);
        let out = compare(&base, &fresh, 20.0);
        assert_eq!(out.failures.len(), 2, "{:?}", out.failures);
        // Improvements never fail.
        let better = report(&[("aes", 200.0)], &[("fig13", 0.5)]);
        assert!(compare(&base, &better, 20.0).failures.is_empty());
    }

    #[test]
    fn entry_missing_from_fresh_report_is_a_hard_failure() {
        let base = report(&[("aes", 100.0), ("raid", 50.0)], &[("fig13", 1.0)]);
        let fresh = report(&[("aes", 100.0)], &[]);
        let out = compare(&base, &fresh, 20.0);
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("raid") && f.contains("missing from fresh")),
            "{:?}",
            out.failures
        );
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("fig13") && f.contains("missing from fresh")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn entry_missing_from_baseline_is_a_hard_failure() {
        // A renamed experiment produces both directions of failure; a
        // brand-new one still needs a deliberate baseline regeneration.
        let base = report(&[], &[("fig13", 1.0)]);
        let fresh = report(&[], &[("fig13_renamed", 1.0)]);
        let out = compare(&base, &fresh, 20.0);
        assert_eq!(out.failures.len(), 2, "{:?}", out.failures);
        assert!(out.failures[0].contains("missing from fresh"));
        assert!(out.failures[1].contains("missing from baseline"));
    }

    #[test]
    fn missing_sections_fail_rather_than_silently_pass() {
        let base = report(&[("aes", 100.0)], &[("fig13", 1.0)]);
        let out = compare(&base, &empty(), 20.0);
        assert_eq!(out.failures.len(), 2, "{:?}", out.failures);
    }
}
