//! SSD construction and single-function offload helpers.

use assasin_core::EngineKind;
use assasin_ssd::{KernelBundle, ScompRequest, ScompResult, Ssd, SsdConfig, SsdError};

/// Builds the paper's evaluated SSD with one engine architecture.
pub fn ssd_with(engine: EngineKind, n_cores: usize, adjusted: bool, channel_local: bool) -> Ssd {
    let mut cfg = SsdConfig::engine_config(engine);
    cfg.n_cores = n_cores;
    cfg.adjusted_timing = adjusted;
    cfg.channel_local = channel_local;
    Ssd::new(cfg)
}

/// Loads `streams` as flash objects and builds the `scomp` request without
/// running it — the preparation half of [`offload`], for sweeps that batch
/// execution across points with [`crate::sweep::run_lane_groups`].
///
/// # Errors
///
/// Propagates SSD errors (the harness treats them as fatal).
pub fn prepare_offload(
    ssd: &mut Ssd,
    bundle: KernelBundle,
    streams: &[Vec<u8>],
) -> Result<ScompRequest, SsdError> {
    let mut lpa_lists = Vec::with_capacity(streams.len());
    let mut lengths = Vec::with_capacity(streams.len());
    for (i, data) in streams.iter().enumerate() {
        // Spread stream base LPAs far apart.
        let base = (i as u64) * (1 << 20);
        lpa_lists.push(ssd.load_object(base, data)?);
        lengths.push(data.len() as u64);
    }
    Ok(ScompRequest::new(bundle, lpa_lists).with_stream_bytes(lengths))
}

/// Loads `streams` as flash objects and runs `bundle` over them, returning
/// the scomp result.
///
/// # Errors
///
/// Propagates SSD errors (the harness treats them as fatal).
pub fn offload(
    ssd: &mut Ssd,
    bundle: KernelBundle,
    streams: &[Vec<u8>],
) -> Result<ScompResult, SsdError> {
    let req = prepare_offload(ssd, bundle, streams)?;
    ssd.scomp(&req)
}

/// Convenience: build an SSD for `engine`, load, offload, return the result.
///
/// # Errors
///
/// Propagates SSD errors.
pub fn offload_fresh(
    engine: EngineKind,
    adjusted: bool,
    bundle: KernelBundle,
    streams: &[Vec<u8>],
) -> Result<ScompResult, SsdError> {
    let mut ssd = ssd_with(engine, 8, adjusted, false);
    offload(&mut ssd, bundle, streams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundles;

    #[test]
    fn offload_round_trips() {
        let data = vec![vec![3u8; 128 * 1024]];
        let r = offload_fresh(EngineKind::AssasinSb, false, bundles::scan_bundle(), &data)
            .expect("scan offload");
        assert_eq!(r.bytes_in, 128 * 1024);
    }
}
