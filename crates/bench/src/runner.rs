//! SSD construction and single-function offload helpers.

use assasin_core::EngineKind;
use assasin_ftl::Lpa;
use assasin_ssd::{KernelBundle, ScompRequest, ScompResult, Ssd, SsdConfig, SsdError, SsdImage};

/// Builds the paper's evaluated SSD with one engine architecture.
pub fn ssd_with(engine: EngineKind, n_cores: usize, adjusted: bool, channel_local: bool) -> Ssd {
    let mut cfg = SsdConfig::engine_config(engine);
    cfg.n_cores = n_cores;
    cfg.adjusted_timing = adjusted;
    cfg.channel_local = channel_local;
    Ssd::new(cfg)
}

/// Loads `streams` as flash objects and builds the `scomp` request without
/// running it — the preparation half of [`offload`], for sweeps that batch
/// execution across points with [`crate::sweep::run_lane_groups`].
///
/// # Errors
///
/// Propagates SSD errors (the harness treats them as fatal).
pub fn prepare_offload(
    ssd: &mut Ssd,
    bundle: KernelBundle,
    streams: &[Vec<u8>],
) -> Result<ScompRequest, SsdError> {
    let mut lpa_lists = Vec::with_capacity(streams.len());
    let mut lengths = Vec::with_capacity(streams.len());
    for (i, data) in streams.iter().enumerate() {
        // Spread stream base LPAs far apart.
        let base = (i as u64) * (1 << 20);
        lpa_lists.push(ssd.load_object(base, data)?);
        lengths.push(data.len() as u64);
    }
    Ok(ScompRequest::new(bundle, lpa_lists).with_stream_bytes(lengths))
}

/// Loads `streams` as flash objects and runs `bundle` over them, returning
/// the scomp result.
///
/// # Errors
///
/// Propagates SSD errors (the harness treats them as fatal).
pub fn offload(
    ssd: &mut Ssd,
    bundle: KernelBundle,
    streams: &[Vec<u8>],
) -> Result<ScompResult, SsdError> {
    let req = prepare_offload(ssd, bundle, streams)?;
    ssd.scomp(&req)
}

/// A device image preconditioned with a set of input streams, plus the
/// LPA lists and byte lengths needed to rebuild a `scomp` request against
/// any fork. Sweeps that run the same dataset under many engine/core
/// configurations build one of these and fork per point instead of
/// re-generating and re-loading the data every time.
///
/// Loading is engine-independent (the FTL and flash contents depend only
/// on geometry, NAND timing and the fault model, which
/// [`SsdConfig::engine_config`] holds constant), so a fork under any
/// engine is byte-identical to a fresh device loaded under that engine.
#[derive(Debug, Clone)]
pub struct LoadedImage {
    image: SsdImage,
    lpa_lists: Vec<Vec<Lpa>>,
    lengths: Vec<u64>,
}

impl LoadedImage {
    /// Loads `streams` once (under the Baseline engine config — the media
    /// contents are engine-independent) and detaches the device image.
    ///
    /// # Errors
    ///
    /// Propagates SSD load errors.
    pub fn precondition(streams: &[Vec<u8>]) -> Result<Self, SsdError> {
        let mut ssd = ssd_with(EngineKind::Baseline, 8, false, false);
        let mut lpa_lists = Vec::with_capacity(streams.len());
        let mut lengths = Vec::with_capacity(streams.len());
        for (i, data) in streams.iter().enumerate() {
            // Spread stream base LPAs far apart (matches prepare_offload).
            let base = (i as u64) * (1 << 20);
            lpa_lists.push(ssd.load_object(base, data)?);
            lengths.push(data.len() as u64);
        }
        Ok(LoadedImage {
            image: ssd.into_image(),
            lpa_lists,
            lengths,
        })
    }

    /// Forks a runnable device with the harness config for `engine`
    /// (copy-on-write: flash pages are shared until a write diverges).
    pub fn fork(
        &self,
        engine: EngineKind,
        n_cores: usize,
        adjusted: bool,
        channel_local: bool,
    ) -> Ssd {
        let mut cfg = SsdConfig::engine_config(engine);
        cfg.n_cores = n_cores;
        cfg.adjusted_timing = adjusted;
        cfg.channel_local = channel_local;
        self.image.fork(cfg)
    }

    /// Rebuilds the `scomp` request for the preconditioned streams
    /// ([`KernelBundle`] is not `Clone`, so each point supplies its own).
    pub fn request(&self, bundle: KernelBundle) -> ScompRequest {
        ScompRequest::new(bundle, self.lpa_lists.clone()).with_stream_bytes(self.lengths.clone())
    }

    /// Fork + request + run in one step: the fork-based equivalent of
    /// [`offload_fresh`].
    ///
    /// # Errors
    ///
    /// Propagates SSD errors (the harness treats them as fatal).
    pub fn offload(
        &self,
        engine: EngineKind,
        adjusted: bool,
        bundle: KernelBundle,
    ) -> Result<ScompResult, SsdError> {
        let mut ssd = self.fork(engine, 8, adjusted, false);
        let req = self.request(bundle);
        ssd.scomp(&req)
    }
}

/// Convenience: build an SSD for `engine`, load, offload, return the result.
///
/// # Errors
///
/// Propagates SSD errors.
pub fn offload_fresh(
    engine: EngineKind,
    adjusted: bool,
    bundle: KernelBundle,
    streams: &[Vec<u8>],
) -> Result<ScompResult, SsdError> {
    let mut ssd = ssd_with(engine, 8, adjusted, false);
    offload(&mut ssd, bundle, streams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundles;

    #[test]
    fn offload_round_trips() {
        let data = vec![vec![3u8; 128 * 1024]];
        let r = offload_fresh(EngineKind::AssasinSb, false, bundles::scan_bundle(), &data)
            .expect("scan offload");
        assert_eq!(r.bytes_in, 128 * 1024);
    }
}
