//! Text-table formatting for experiment reports.

use std::fmt::Write as _;

/// Formats a simple aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:<w$}  ");
    }
    out.push_str(line.trim_end());
    out.push('\n');
    let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:<w$}  ");
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Formats a throughput in GB/s with sensible precision.
pub fn gbps(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a ratio as `1.23x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats milliseconds.
pub fn ms(v: assasin_sim::SimDur) -> String {
    format!("{:.3}", v.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(gbps(2.345), "2.35");
        assert_eq!(gbps(0.1234), "0.123");
        assert_eq!(ratio(1.5), "1.50x");
    }
}
