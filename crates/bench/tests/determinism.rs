//! The sweep executor's central guarantee: serial and parallel runs of
//! the same experiment serialize to byte-identical JSON. Every sweep
//! point builds its own simulator from a fixed seed and results are
//! reassembled in input order, so thread count must not leak into any
//! report.

use assasin_bench::experiments::{fig13, fig_reliability};
use assasin_bench::Scale;

#[test]
fn fig13_serial_and_parallel_reports_are_byte_identical() {
    let scale = Scale::test_scale();
    let serial = assasin_parallel::with_max_threads(1, || fig13::run_with(&scale, false));
    let parallel = fig13::run_with(&scale, false);
    let serial_json = serde_json::to_string(&serial).expect("serialize serial report");
    let parallel_json = serde_json::to_string(&parallel).expect("serialize parallel report");
    assert_eq!(
        serial_json, parallel_json,
        "parallel sweep must reproduce the serial report byte-for-byte"
    );
}

/// The fault-injection experiment's determinism guarantee: with a fixed
/// seed, two runs — and serial vs parallel runs — serialize to
/// byte-identical JSON. Every fault draw is keyed on (seed, physical page,
/// program epoch, op sequence), so no RNG state leaks across runs or
/// threads.
#[test]
fn reliability_sweep_same_seed_runs_are_byte_identical() {
    let scale = Scale::test_scale();
    let first = serde_json::to_string(&fig_reliability::run(&scale)).expect("serialize");
    let second = serde_json::to_string(&fig_reliability::run(&scale)).expect("serialize");
    assert_eq!(
        first, second,
        "same-seed fault-injection runs must be byte-identical"
    );
    let serial = assasin_parallel::with_max_threads(1, || fig_reliability::run(&scale));
    let serial_json = serde_json::to_string(&serial).expect("serialize");
    assert_eq!(
        first, serial_json,
        "thread count must not leak into the fault-injection report"
    );
}
