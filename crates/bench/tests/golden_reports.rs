//! Golden-hash regression tests for the report JSON.
//!
//! The hot-path refactors (predecoded dispatch, flattened caches, the
//! streambuffer word fast path) must keep every report bit-identical:
//! these tests lock the serialized fig13/fig14/fig16 reports at test
//! scale against hashes captured before the refactor. Any timing-model
//! or counter drift shows up here as a hash mismatch long before a
//! reviewer would spot it in a figure.

use assasin_bench::experiments::{fig13, fig14, fig16};
use assasin_bench::Scale;

/// FNV-1a 64-bit over the serialized report (no external hash crates in
/// the offline build; collision resistance is irrelevant for a golden
/// lock, stability is what matters).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn hash_json<T: serde::Serialize>(report: &T) -> u64 {
    let json = serde_json::to_string(report).expect("report serializes");
    fnv1a64(json.as_bytes())
}

/// Hashes captured from the pre-refactor simulator (PR 1 tree) at
/// `Scale::test_scale()`. If a change legitimately alters the timing
/// model, recapture with `cargo test -p assasin-bench golden -- --nocapture`
/// and say so loudly in the PR — these must never drift by accident.
const GOLDEN_FIG13: u64 = 0x591b22e89ad67746;
const GOLDEN_FIG14: u64 = 0x9d7d2d404949c717;
const GOLDEN_FIG16: u64 = 0x23e16ba2d2ff54d3;

#[test]
fn fig13_report_matches_pre_refactor_bytes() {
    let h = hash_json(&fig13::run_with(&Scale::test_scale(), false));
    println!("fig13 hash: {h:#018x}");
    assert_eq!(h, GOLDEN_FIG13, "fig13 report JSON drifted from golden");
}

#[test]
fn fig14_report_matches_pre_refactor_bytes() {
    let h = hash_json(&fig14::run_with(&Scale::test_scale(), false));
    println!("fig14 hash: {h:#018x}");
    assert_eq!(h, GOLDEN_FIG14, "fig14 report JSON drifted from golden");
}

#[test]
fn fig16_report_matches_pre_refactor_bytes() {
    let h = hash_json(&fig16::run(&Scale::test_scale()));
    println!("fig16 hash: {h:#018x}");
    assert_eq!(h, GOLDEN_FIG16, "fig16 report JSON drifted from golden");
}
