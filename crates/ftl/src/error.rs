//! FTL errors.

use crate::Lpa;
use assasin_flash::{FlashError, PhysPageAddr};
use std::error::Error;
use std::fmt;

/// Errors returned by FTL operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtlError {
    /// Read of a logical page that was never written.
    Unmapped(Lpa),
    /// The logical address exceeds the exported capacity.
    OutOfCapacity(Lpa),
    /// The drive has no free blocks left even after garbage collection.
    DeviceFull,
    /// A page's raw bit errors exceeded ECC even after the read-retry
    /// ladder: the logical page is lost at the media level.
    Uncorrectable {
        /// The logical page that could not be read.
        lpa: Lpa,
        /// Its physical location.
        addr: PhysPageAddr,
        /// Raw bit errors on the final retry level.
        errors: u32,
    },
    /// An underlying flash operation failed (an FTL invariant violation).
    Flash(FlashError),
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::Unmapped(lpa) => write!(f, "read of unmapped logical page {lpa}"),
            FtlError::OutOfCapacity(lpa) => {
                write!(f, "logical page {lpa} exceeds exported capacity")
            }
            FtlError::DeviceFull => write!(f, "no free blocks available after garbage collection"),
            FtlError::Uncorrectable { lpa, addr, errors } => write!(
                f,
                "uncorrectable media error reading {lpa} at {addr}: {errors} raw bit errors"
            ),
            FtlError::Flash(e) => write!(f, "flash operation failed: {e}"),
        }
    }
}

impl Error for FtlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FtlError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for FtlError {
    fn from(e: FlashError) -> Self {
        FtlError::Flash(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_chains_to_flash_error() {
        let e = FtlError::from(FlashError::OutOfRange(assasin_flash::PhysPageAddr {
            channel: 0,
            chip: 0,
            plane: 0,
            block: 0,
            page: 0,
        }));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("flash operation failed"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<FtlError>();
    }
}
