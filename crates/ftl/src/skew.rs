//! The paper's flash-layout skew metric (Section VI-E).

/// Measures the skew of a per-channel data distribution:
///
/// `Skew = (max_i(D_i / avg(D)) - 1) / (n - 1)`
///
/// which is 0 for a uniform layout and 1 when all data sits in one channel.
/// (The paper states `Skew ∈ [0, 1]`; this is the normalization consistent
/// with that range and with its "no skew" / "extreme skew" endpoints.)
///
/// ```
/// use assasin_ftl::skew::measure_skew;
/// assert_eq!(measure_skew(&[100, 100, 100, 100]), 0.0);
/// assert_eq!(measure_skew(&[400, 0, 0, 0]), 1.0);
/// ```
pub fn measure_skew(per_channel: &[u64]) -> f64 {
    let n = per_channel.len();
    assert!(n >= 2, "skew needs at least two channels");
    let total: u64 = per_channel.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let avg = total as f64 / n as f64;
    let max = *per_channel.iter().max().expect("non-empty") as f64;
    ((max / avg) - 1.0) / (n as f64 - 1.0)
}

/// Channel weights realizing a target skew: channel 0 receives
/// `avg * (1 + skew*(n-1))` worth of data and the remainder is spread
/// evenly, so `measure_skew` of the resulting layout equals `skew`.
///
/// # Panics
///
/// Panics unless `0.0 <= skew <= 1.0` and `channels >= 2`.
pub fn skewed_channel_weights(channels: u32, skew: f64) -> Vec<f64> {
    assert!(channels >= 2, "skew needs at least two channels");
    assert!((0.0..=1.0).contains(&skew), "skew must be within [0, 1]");
    let n = channels as f64;
    let hot = (1.0 + skew * (n - 1.0)) / n;
    let rest = (1.0 - hot) / (n - 1.0);
    let mut w = vec![rest; channels as usize];
    w[0] = hot;
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        for &s in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let w = skewed_channel_weights(8, s);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(w.iter().all(|&x| x >= -1e-12));
        }
    }

    #[test]
    fn weights_realize_requested_skew() {
        for &s in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let w = skewed_channel_weights(8, s);
            // Convert weights to a large integer layout and measure.
            let d: Vec<u64> = w.iter().map(|x| (x * 1e9) as u64).collect();
            let got = measure_skew(&d);
            assert!((got - s).abs() < 1e-6, "target {s} got {got}");
        }
    }

    #[test]
    fn measure_skew_of_zero_data_is_zero() {
        assert_eq!(measure_skew(&[0, 0, 0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "two channels")]
    fn single_channel_rejected() {
        let _ = measure_skew(&[5]);
    }
}
