//! Page-mapped FTL with striped allocation, GC and wear-aware block choice.

use crate::placement::Placement;
use crate::FtlError;
use assasin_flash::{FlashArray, FlashError, FlashGeometry, PhysPageAddr};
use assasin_sim::SimTime;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A logical page address, the unit the host and the `scomp` command
/// address (Section V-D's `List[List[LPA]]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Lpa(pub u64);

impl fmt::Display for Lpa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lpa:{}", self.0)
    }
}

/// FTL bookkeeping counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Pages written on behalf of the host.
    pub host_writes: u64,
    /// Pages relocated by garbage collection (including bad-block
    /// retirement relocations).
    pub gc_relocations: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Read-retry re-senses performed beyond initial senses.
    pub read_retries: u64,
    /// Page reads that needed ECC correction.
    pub ecc_corrected: u64,
    /// Page reads that stayed uncorrectable after the retry ladder.
    pub uncorrectable: u64,
    /// Blocks retired as grown-bad after program/erase failures.
    pub grown_bad_blocks: u64,
}

impl FtlStats {
    /// Write amplification factor (flash writes per host write).
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            (self.host_writes + self.gc_relocations) as f64 / self.host_writes as f64
        }
    }
}

/// Per-plane allocation state.
#[derive(Debug, Clone)]
struct PlaneState {
    /// Blocks with no valid data and erased, ready for allocation.
    free_blocks: Vec<u32>,
    /// Currently filling block and its next free page index.
    active: Option<(u32, u32)>,
    /// Valid-page count per block.
    valid: Vec<u32>,
    /// Erase count per block (wear).
    erase_count: Vec<u32>,
    /// Grown-bad flags: retired blocks are never allocated, GC'd or
    /// erased again.
    bad: Vec<bool>,
}

impl PlaneState {
    fn new(blocks: u32) -> Self {
        PlaneState {
            free_blocks: (0..blocks).collect(),
            active: None,
            valid: vec![0; blocks as usize],
            erase_count: vec![0; blocks as usize],
            bad: vec![false; blocks as usize],
        }
    }

    /// Pops the free block with the lowest erase count (wear leveling).
    fn pop_least_worn(&mut self) -> Option<u32> {
        let (idx, _) = self
            .free_blocks
            .iter()
            .enumerate()
            .min_by_key(|(_, &b)| self.erase_count[b as usize])?;
        Some(self.free_blocks.swap_remove(idx))
    }
}

/// The flash translation layer.
///
/// Allocation stripes pages over channels according to the configured
/// [`Placement`] (round-robin by default), then round-robins chips within
/// the channel and planes within the chip, so sequential logical data spreads
/// across every unit of flash parallelism — the property Figures 16–18
/// depend on.
#[derive(Debug, Clone)]
pub struct Ftl {
    geom: FlashGeometry,
    placement: Placement,
    /// L2P table, directly indexed by LPA in lazily-allocated fixed-size
    /// chunks. Plan building translates every input page of a run, so this
    /// lookup must not hash; the chunking matters because callers place
    /// streams at base LPAs megabytes apart, and a flat table grown to the
    /// highest LPA would zero tens of megabytes per stream.
    map: Vec<Option<Box<[Option<PhysPageAddr>]>>>,
    /// P2L index for GC victim scans (write path only, stays a hash).
    reverse: HashMap<PhysPageAddr, u64>,
    planes: Vec<PlaneState>,
    /// Next chip cursor per channel.
    chip_cursor: Vec<u32>,
    /// Next plane cursor per chip (linear chip index).
    plane_cursor: Vec<u32>,
    /// Monotone write counter used by the placement policy.
    stream_pos: u64,
    /// Expected length of the current placement stream (for skewed runs).
    stream_total: u64,
    stats: FtlStats,
    exported_pages: u64,
}

/// L2P chunk granularity, in LPAs (24 KiB of table per allocated chunk).
const L2P_CHUNK: u64 = 1024;

/// Splits an LPA into its L2P chunk number and intra-chunk offset. The
/// chunk math stays in `u64` — casting the LPA to `usize` first would
/// silently truncate addresses above 4G pages on 32-bit targets; only the
/// bounded intra-chunk offset (< [`L2P_CHUNK`]) is narrowed.
fn l2p_slot(lpa: u64) -> (usize, usize) {
    ((lpa / L2P_CHUNK) as usize, (lpa % L2P_CHUNK) as usize)
}

impl Ftl {
    /// Minimum free blocks per plane before GC kicks in.
    const GC_LOW_WATER: usize = 2;

    /// Creates an FTL over `geom` with default round-robin placement and
    /// 12.5% over-provisioning.
    pub fn new(geom: FlashGeometry) -> Self {
        Ftl::with_placement(geom, Placement::default())
    }

    /// Creates an FTL with an explicit placement policy.
    pub fn with_placement(geom: FlashGeometry, placement: Placement) -> Self {
        let n_planes = (geom.channels * geom.chips_per_channel * geom.planes_per_chip) as usize;
        let n_chips = (geom.channels * geom.chips_per_channel) as usize;
        Ftl {
            geom,
            placement,
            map: Vec::new(),
            reverse: HashMap::new(),
            planes: vec![PlaneState::new(geom.blocks_per_plane); n_planes],
            chip_cursor: vec![0; geom.channels as usize],
            plane_cursor: vec![0; n_chips],
            stream_pos: 0,
            stream_total: u64::MAX,
            stats: FtlStats::default(),
            // Exported capacity excludes the per-plane GC-reserve block and
            // keeps 12.5% over-provisioning on the rest.
            exported_pages: (geom.total_pages() - n_planes as u64 * geom.pages_per_block as u64)
                * 7
                / 8,
        }
    }

    /// The geometry this FTL manages.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geom
    }

    /// Logical capacity exported to the host, in pages.
    pub fn exported_pages(&self) -> u64 {
        self.exported_pages
    }

    /// Bookkeeping counters.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Replaces the placement policy and restarts the placement stream.
    /// `stream_total` is the number of pages the upcoming stream will write
    /// (used by weighted placements; round-robin ignores it).
    pub fn begin_stream(&mut self, placement: Placement, stream_total: u64) {
        self.placement = placement;
        self.stream_pos = 0;
        self.stream_total = stream_total.max(1);
    }

    /// Translates a logical page to its current physical location.
    pub fn translate(&self, lpa: Lpa) -> Option<PhysPageAddr> {
        let (chunk, off) = l2p_slot(lpa.0);
        self.map.get(chunk)?.as_ref()?[off]
    }

    fn map_insert(&mut self, lpa: u64, addr: PhysPageAddr) {
        let (chunk, off) = l2p_slot(lpa);
        if chunk >= self.map.len() {
            self.map.resize_with(chunk + 1, || None);
        }
        self.map[chunk].get_or_insert_with(|| vec![None; L2P_CHUNK as usize].into_boxed_slice())
            [off] = Some(addr);
    }

    fn map_remove(&mut self, lpa: u64) -> Option<PhysPageAddr> {
        let (chunk, off) = l2p_slot(lpa);
        self.map.get_mut(chunk)?.as_mut()?[off].take()
    }

    fn plane_index(&self, channel: u32, chip: u32, plane: u32) -> usize {
        ((channel * self.geom.chips_per_channel + chip) * self.geom.planes_per_chip + plane)
            as usize
    }

    /// Allocates the next physical page in a specific plane, garbage
    /// collecting if needed. `allow_gc` is false during GC relocation
    /// itself, which allocates from the blocks the low-water mark reserves
    /// (otherwise GC could recurse into GC).
    fn alloc_in_plane(
        &mut self,
        array: &mut FlashArray,
        channel: u32,
        chip: u32,
        plane: u32,
        now: SimTime,
        allow_gc: bool,
    ) -> Result<PhysPageAddr, FtlError> {
        let pi = self.plane_index(channel, chip, plane);
        if allow_gc
            && self.planes[pi].free_blocks.len() <= Self::GC_LOW_WATER
            && self.planes[pi].active.is_none()
        {
            self.collect_plane(array, channel, chip, plane, now)?;
        }
        let state = &mut self.planes[pi];
        let (block, page) = match state.active {
            Some((b, p)) => (b, p),
            None => {
                // Normal writes may not consume the last free block: it is
                // reserved so garbage collection always has a relocation
                // target (otherwise invalid pages can become unreclaimable).
                if allow_gc && state.free_blocks.len() <= 1 {
                    return Err(FtlError::DeviceFull);
                }
                let b = state.pop_least_worn().ok_or(FtlError::DeviceFull)?;
                (b, 0)
            }
        };
        let next = page + 1;
        state.active = if next >= self.geom.pages_per_block {
            None
        } else {
            Some((block, next))
        };
        state.valid[block as usize] += 1;
        Ok(PhysPageAddr {
            channel,
            chip,
            plane,
            block,
            page,
        })
    }

    /// Allocates in the preferred plane, falling back to any plane with
    /// space (write redirection — a full plane must not fail the device
    /// while others have room).
    fn alloc_with_fallback(
        &mut self,
        array: &mut FlashArray,
        channel: u32,
        chip: u32,
        plane: u32,
        now: SimTime,
    ) -> Result<PhysPageAddr, FtlError> {
        match self.alloc_in_plane(array, channel, chip, plane, now, true) {
            Ok(addr) => return Ok(addr),
            Err(FtlError::DeviceFull) => {}
            Err(e) => return Err(e),
        }
        for ch in 0..self.geom.channels {
            for c in 0..self.geom.chips_per_channel {
                for pl in 0..self.geom.planes_per_chip {
                    match self.alloc_in_plane(array, ch, c, pl, now, true) {
                        Ok(addr) => return Ok(addr),
                        Err(FtlError::DeviceFull) => continue,
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Err(FtlError::DeviceFull)
    }

    /// Picks the next plane for a new write according to placement/striping.
    fn next_location(&mut self) -> (u32, u32, u32) {
        let channel =
            self.placement
                .channel_for(self.stream_pos, self.stream_total, self.geom.channels);
        self.stream_pos += 1;
        let chip = self.chip_cursor[channel as usize];
        self.chip_cursor[channel as usize] = (chip + 1) % self.geom.chips_per_channel;
        let ci = (channel * self.geom.chips_per_channel + chip) as usize;
        let plane = self.plane_cursor[ci];
        self.plane_cursor[ci] = (plane + 1) % self.geom.planes_per_chip;
        (channel, chip, plane)
    }

    /// Writes one logical page. Returns the flash program completion time.
    ///
    /// # Errors
    ///
    /// Fails if `lpa` exceeds exported capacity, the device is full, or the
    /// data is not exactly one page.
    pub fn write(
        &mut self,
        array: &mut FlashArray,
        lpa: Lpa,
        data: Bytes,
        now: SimTime,
    ) -> Result<SimTime, FtlError> {
        self.write_detailed(array, lpa, data, now)
            .map(|(_, prog)| prog)
    }

    /// Like [`Ftl::write`] but returns `(bus_done, program_done)`: the
    /// writer's buffer frees at `bus_done`; the data is durable at
    /// `program_done`.
    ///
    /// # Errors
    ///
    /// Same as [`Ftl::write`].
    pub fn write_detailed(
        &mut self,
        array: &mut FlashArray,
        lpa: Lpa,
        data: Bytes,
        now: SimTime,
    ) -> Result<(SimTime, SimTime), FtlError> {
        if lpa.0 >= self.exported_pages {
            return Err(FtlError::OutOfCapacity(lpa));
        }
        loop {
            let (channel, chip, plane) = self.next_location();
            let addr = self.alloc_with_fallback(array, channel, chip, plane, now)?;
            match array.write_page_detailed(addr, data.clone(), now) {
                Ok(times) => {
                    // Invalidate the previous version only now that the new
                    // one is durable: a failed or redirected write must
                    // never lose the data it was replacing.
                    if let Some(old) = self.map_remove(lpa.0) {
                        self.reverse.remove(&old);
                        let pi = self.plane_index(old.channel, old.chip, old.plane);
                        let v = &mut self.planes[pi].valid[old.block as usize];
                        *v = v.saturating_sub(1);
                    }
                    self.map_insert(lpa.0, addr);
                    self.reverse.insert(addr, lpa.0);
                    self.stats.host_writes += 1;
                    return Ok(times);
                }
                // The program failed, growing the block bad: retire it
                // (its valid neighbors relocate), then retry elsewhere.
                // Terminates because each round retires a block and the
                // allocator never hands one out again; a device with no
                // good blocks left fails the allocation with DeviceFull.
                Err(FlashError::ProgramFailed(bad)) | Err(FlashError::GrownBad(bad)) => {
                    self.retire_block(array, bad, now)?;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Reads one logical page. Returns the data and its bus arrival time.
    ///
    /// # Errors
    ///
    /// Fails if the page was never written, or (with fault injection) the
    /// media could not deliver it within ECC + read-retry capability.
    pub fn read(
        &mut self,
        array: &mut FlashArray,
        lpa: Lpa,
        now: SimTime,
    ) -> Result<(Bytes, SimTime), FtlError> {
        let addr = self.translate(lpa).ok_or(FtlError::Unmapped(lpa))?;
        self.read_phys(array, lpa, addr, now)
    }

    /// Timed physical read with reliability accounting: retry and
    /// correction counts land in [`FtlStats`]; an uncorrectable page
    /// surfaces as a typed error carrying both addresses.
    fn read_phys(
        &mut self,
        array: &mut FlashArray,
        lpa: Lpa,
        addr: PhysPageAddr,
        now: SimTime,
    ) -> Result<(Bytes, SimTime), FtlError> {
        match array.read_page_detailed(addr, now) {
            Ok((data, done, health)) => {
                self.stats.read_retries += health.retries() as u64;
                if health.corrected() {
                    self.stats.ecc_corrected += 1;
                }
                Ok((data, done))
            }
            Err(FlashError::Uncorrectable { addr, errors }) => {
                self.stats.read_retries += array.fault_config().read_retry_limit as u64;
                self.stats.uncorrectable += 1;
                Err(FtlError::Uncorrectable { lpa, addr, errors })
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Marks a block grown-bad, removing it from the allocator for good.
    /// Returns false if it was already retired.
    fn mark_bad(&mut self, channel: u32, chip: u32, plane: u32, block: u32) -> bool {
        let pi = self.plane_index(channel, chip, plane);
        let state = &mut self.planes[pi];
        if state.bad[block as usize] {
            return false;
        }
        state.bad[block as usize] = true;
        state.free_blocks.retain(|&b| b != block);
        if state.active.map(|(b, _)| b) == Some(block) {
            state.active = None;
        }
        self.stats.grown_bad_blocks += 1;
        true
    }

    /// Retires a grown-bad block: drops it from the allocator and
    /// relocates its still-valid pages through the GC write path (failed
    /// programs leave earlier pages in the block readable — NAND grows
    /// bad a block at a time, not a page at a time). Relocation targets
    /// whose own programs fail are retired too, via a worklist; this
    /// terminates because every round marks a previously-good block bad.
    fn retire_block(
        &mut self,
        array: &mut FlashArray,
        first: PhysPageAddr,
        now: SimTime,
    ) -> Result<(), FtlError> {
        let mut pending = Vec::new();
        if self.mark_bad(first.channel, first.chip, first.plane, first.block) {
            pending.push((first.channel, first.chip, first.plane, first.block));
        }
        while let Some((channel, chip, plane, block)) = pending.pop() {
            let lpas: Vec<(u32, u64)> = (0..self.geom.pages_per_block)
                .filter_map(|p| {
                    let addr = PhysPageAddr {
                        channel,
                        chip,
                        plane,
                        block,
                        page: p,
                    };
                    self.reverse.get(&addr).map(|&l| (p, l))
                })
                .collect();
            for (p, lpa) in lpas {
                let old = PhysPageAddr {
                    channel,
                    chip,
                    plane,
                    block,
                    page: p,
                };
                let (data, _) = self.read_phys(array, Lpa(lpa), old, now)?;
                loop {
                    let new = self.alloc_relocation_target(array, channel, chip, plane, now)?;
                    match array.write_page(new, data.clone(), now) {
                        Ok(_) => {
                            self.map_insert(lpa, new);
                            self.reverse.remove(&old);
                            self.reverse.insert(new, lpa);
                            self.stats.gc_relocations += 1;
                            break;
                        }
                        Err(FlashError::ProgramFailed(a)) | Err(FlashError::GrownBad(a)) => {
                            if self.mark_bad(a.channel, a.chip, a.plane, a.block) {
                                pending.push((a.channel, a.chip, a.plane, a.block));
                            } else {
                                // The allocator handed out a block already
                                // retired — inconsistent state; fail rather
                                // than spin.
                                return Err(FtlError::DeviceFull);
                            }
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            let pi = self.plane_index(channel, chip, plane);
            self.planes[pi].valid[block as usize] = 0;
        }
        Ok(())
    }

    /// Allocation for relocation writes: preferred plane first, then any
    /// plane, always from the GC reserve (`allow_gc: false`) so retirement
    /// never recurses into collection.
    fn alloc_relocation_target(
        &mut self,
        array: &mut FlashArray,
        channel: u32,
        chip: u32,
        plane: u32,
        now: SimTime,
    ) -> Result<PhysPageAddr, FtlError> {
        match self.alloc_in_plane(array, channel, chip, plane, now, false) {
            Ok(a) => return Ok(a),
            Err(FtlError::DeviceFull) => {}
            Err(e) => return Err(e),
        }
        for ch in 0..self.geom.channels {
            for c in 0..self.geom.chips_per_channel {
                for pl in 0..self.geom.planes_per_chip {
                    match self.alloc_in_plane(array, ch, c, pl, now, false) {
                        Ok(a) => return Ok(a),
                        Err(FtlError::DeviceFull) => continue,
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Err(FtlError::DeviceFull)
    }

    /// Garbage-collects one victim block in the given plane: relocates its
    /// valid pages within the same plane, then erases it.
    fn collect_plane(
        &mut self,
        array: &mut FlashArray,
        channel: u32,
        chip: u32,
        plane: u32,
        now: SimTime,
    ) -> Result<(), FtlError> {
        let pi = self.plane_index(channel, chip, plane);
        // Victim: fewest valid pages among fully-written, non-free,
        // non-retired blocks.
        let state = &self.planes[pi];
        let is_free = |b: u32| state.free_blocks.contains(&b);
        let active_block = state.active.map(|(b, _)| b);
        let victim = (0..self.geom.blocks_per_plane)
            .filter(|&b| !is_free(b) && !state.bad[b as usize] && Some(b) != active_block)
            .min_by_key(|&b| state.valid[b as usize]);
        let Some(victim) = victim else {
            return Ok(());
        };
        // Relocate valid pages.
        let lpas: Vec<(u32, u64)> = (0..self.geom.pages_per_block)
            .filter_map(|p| {
                let addr = PhysPageAddr {
                    channel,
                    chip,
                    plane,
                    block: victim,
                    page: p,
                };
                self.reverse.get(&addr).map(|&l| (p, l))
            })
            .collect();
        for (p, lpa) in lpas {
            let old = PhysPageAddr {
                channel,
                chip,
                plane,
                block: victim,
                page: p,
            };
            let (data, _) = self.read_phys(array, Lpa(lpa), old, now)?;
            loop {
                let new = self.alloc_in_plane(array, channel, chip, plane, now, false)?;
                match array.write_page(new, data.clone(), now) {
                    Ok(_) => {
                        self.map_insert(lpa, new);
                        self.reverse.remove(&old);
                        self.reverse.insert(new, lpa);
                        self.stats.gc_relocations += 1;
                        break;
                    }
                    // The relocation target failed mid-GC: retire it and
                    // try a fresh target for this page.
                    Err(FlashError::ProgramFailed(a)) | Err(FlashError::GrownBad(a)) => {
                        self.retire_block(array, a, now)?;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }
        match array.erase_block(channel, chip, plane, victim, now) {
            Ok(_) => {
                let state = &mut self.planes[pi];
                state.valid[victim as usize] = 0;
                state.erase_count[victim as usize] += 1;
                state.free_blocks.push(victim);
                self.stats.erases += 1;
            }
            // A failed erase grows the victim bad. Its valid pages were
            // already relocated above, so it simply never returns to the
            // free list.
            Err(FlashError::EraseFailed { .. }) => {
                self.mark_bad(channel, chip, plane, victim);
                self.planes[pi].valid[victim as usize] = 0;
            }
            Err(e) => return Err(e.into()),
        }
        Ok(())
    }

    /// Counts how many of `lpas` currently live on each channel — used to
    /// verify layout skew in the Section VI-E experiment.
    pub fn channel_distribution(&self, lpas: impl IntoIterator<Item = Lpa>) -> Vec<u64> {
        let mut counts = vec![0u64; self.geom.channels as usize];
        for lpa in lpas {
            if let Some(addr) = self.translate(lpa) {
                counts[addr.channel as usize] += 1;
            }
        }
        counts
    }

    /// Serializes placement, the chunked L2P table (sparse: only allocated
    /// chunks, each slot with a presence flag), per-plane allocator state,
    /// striping cursors and stats. The reverse P2L index is NOT encoded —
    /// it is derivable from the forward map and rebuilt on restore.
    pub fn save_state(&self, enc: &mut assasin_snap::Encoder) {
        match &self.placement {
            Placement::StripeRoundRobin => enc.u8(0),
            Placement::Skewed(weights) => {
                enc.u8(1);
                enc.len_of(weights.len());
                for &w in weights {
                    enc.f64(w);
                }
            }
        }
        enc.len_of(self.map.iter().filter(|c| c.is_some()).count());
        for (ci, chunk) in self.map.iter().enumerate() {
            let Some(slots) = chunk else { continue };
            enc.len_of(ci);
            for slot in slots.iter() {
                match slot {
                    Some(a) => {
                        enc.bool(true);
                        enc.u32(a.channel);
                        enc.u32(a.chip);
                        enc.u32(a.plane);
                        enc.u32(a.block);
                        enc.u32(a.page);
                    }
                    None => enc.bool(false),
                }
            }
        }
        enc.len_of(self.planes.len());
        for p in &self.planes {
            enc.len_of(p.free_blocks.len());
            for &b in &p.free_blocks {
                enc.u32(b);
            }
            match p.active {
                Some((b, pg)) => {
                    enc.bool(true);
                    enc.u32(b);
                    enc.u32(pg);
                }
                None => enc.bool(false),
            }
            for &v in &p.valid {
                enc.u32(v);
            }
            for &e in &p.erase_count {
                enc.u32(e);
            }
            for &b in &p.bad {
                enc.bool(b);
            }
        }
        for &c in &self.chip_cursor {
            enc.u32(c);
        }
        for &c in &self.plane_cursor {
            enc.u32(c);
        }
        enc.u64(self.stream_pos);
        enc.u64(self.stream_total);
        enc.u64(self.stats.host_writes);
        enc.u64(self.stats.gc_relocations);
        enc.u64(self.stats.erases);
        enc.u64(self.stats.read_retries);
        enc.u64(self.stats.ecc_corrected);
        enc.u64(self.stats.uncorrectable);
        enc.u64(self.stats.grown_bad_blocks);
    }

    /// Restores a snapshot taken by [`Ftl::save_state`] onto this
    /// freshly-constructed FTL (same geometry). Rebuilds the reverse P2L
    /// index from the decoded forward map.
    ///
    /// # Errors
    ///
    /// Fails on truncation or plane counts that disagree with the geometry.
    pub fn load_snapshot(
        &mut self,
        dec: &mut assasin_snap::Decoder<'_>,
    ) -> Result<(), assasin_snap::SnapError> {
        self.placement = match dec.u8()? {
            0 => Placement::StripeRoundRobin,
            1 => {
                let n = dec.len_of()?;
                let mut weights = Vec::with_capacity(n);
                for _ in 0..n {
                    weights.push(dec.f64()?);
                }
                Placement::Skewed(weights)
            }
            t => {
                return Err(assasin_snap::SnapError::Malformed(format!(
                    "placement tag {t}"
                )))
            }
        };
        self.map.clear();
        self.reverse.clear();
        let n_chunks = dec.len_of()?;
        for _ in 0..n_chunks {
            let ci = dec.len_of()?;
            let mut slots = vec![None; L2P_CHUNK as usize].into_boxed_slice();
            for (off, slot) in slots.iter_mut().enumerate() {
                if dec.bool()? {
                    let addr = PhysPageAddr {
                        channel: dec.u32()?,
                        chip: dec.u32()?,
                        plane: dec.u32()?,
                        block: dec.u32()?,
                        page: dec.u32()?,
                    };
                    *slot = Some(addr);
                    self.reverse
                        .insert(addr, ci as u64 * L2P_CHUNK + off as u64);
                }
            }
            if ci >= self.map.len() {
                self.map.resize_with(ci + 1, || None);
            }
            self.map[ci] = Some(slots);
        }
        let n_planes = dec.len_of()?;
        if n_planes != self.planes.len() {
            return Err(assasin_snap::SnapError::Malformed(format!(
                "plane count {n_planes} != {}",
                self.planes.len()
            )));
        }
        for p in &mut self.planes {
            let n_free = dec.len_of()?;
            p.free_blocks.clear();
            for _ in 0..n_free {
                p.free_blocks.push(dec.u32()?);
            }
            p.active = if dec.bool()? {
                Some((dec.u32()?, dec.u32()?))
            } else {
                None
            };
            for v in &mut p.valid {
                *v = dec.u32()?;
            }
            for e in &mut p.erase_count {
                *e = dec.u32()?;
            }
            for b in &mut p.bad {
                *b = dec.bool()?;
            }
        }
        for c in &mut self.chip_cursor {
            *c = dec.u32()?;
        }
        for c in &mut self.plane_cursor {
            *c = dec.u32()?;
        }
        self.stream_pos = dec.u64()?;
        self.stream_total = dec.u64()?;
        self.stats = FtlStats {
            host_writes: dec.u64()?,
            gc_relocations: dec.u64()?,
            erases: dec.u64()?,
            read_retries: dec.u64()?,
            ecc_corrected: dec.u64()?,
            uncorrectable: dec.u64()?,
            grown_bad_blocks: dec.u64()?,
        };
        Ok(())
    }

    /// Maximum difference in erase counts across all blocks (wear spread).
    pub fn wear_spread(&self) -> u32 {
        let mut min = u32::MAX;
        let mut max = 0;
        for plane in &self.planes {
            for &e in &plane.erase_count {
                min = min.min(e);
                max = max.max(e);
            }
        }
        if min == u32::MAX {
            0
        } else {
            max - min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use assasin_flash::{FaultConfig, FlashTiming};

    fn setup() -> (FlashArray, Ftl, FlashGeometry) {
        let geom = FlashGeometry::small_for_tests();
        (
            FlashArray::new(geom, FlashTiming::default()),
            Ftl::new(geom),
            geom,
        )
    }

    fn page(geom: &FlashGeometry, fill: u8) -> Bytes {
        Bytes::from(vec![fill; geom.page_bytes as usize])
    }

    #[test]
    fn write_read_roundtrip() {
        let (mut arr, mut ftl, geom) = setup();
        ftl.write(&mut arr, Lpa(3), page(&geom, 0x42), SimTime::ZERO)
            .unwrap();
        let (data, _) = ftl.read(&mut arr, Lpa(3), SimTime::ZERO).unwrap();
        assert_eq!(data, page(&geom, 0x42));
    }

    #[test]
    fn unmapped_read_fails() {
        let (mut arr, mut ftl, _) = setup();
        assert_eq!(
            ftl.read(&mut arr, Lpa(7), SimTime::ZERO).unwrap_err(),
            FtlError::Unmapped(Lpa(7))
        );
    }

    #[test]
    fn out_of_capacity_rejected() {
        let (mut arr, mut ftl, geom) = setup();
        let lpa = Lpa(ftl.exported_pages());
        assert_eq!(
            ftl.write(&mut arr, lpa, page(&geom, 0), SimTime::ZERO)
                .unwrap_err(),
            FtlError::OutOfCapacity(lpa)
        );
    }

    #[test]
    fn overwrite_remaps_and_reads_new_data() {
        let (mut arr, mut ftl, geom) = setup();
        ftl.write(&mut arr, Lpa(0), page(&geom, 1), SimTime::ZERO)
            .unwrap();
        let first = ftl.translate(Lpa(0)).unwrap();
        ftl.write(&mut arr, Lpa(0), page(&geom, 2), SimTime::ZERO)
            .unwrap();
        let second = ftl.translate(Lpa(0)).unwrap();
        assert_ne!(first, second, "out-of-place update required");
        let (data, _) = ftl.read(&mut arr, Lpa(0), SimTime::ZERO).unwrap();
        assert_eq!(data, page(&geom, 2));
    }

    #[test]
    fn striping_balances_channels() {
        let geom = FlashGeometry::default();
        let mut arr = FlashArray::new(geom, FlashTiming::default());
        let mut ftl = Ftl::new(geom);
        let n = 64u64;
        for i in 0..n {
            ftl.write(&mut arr, Lpa(i), page(&geom, i as u8), SimTime::ZERO)
                .unwrap();
        }
        let dist = ftl.channel_distribution((0..n).map(Lpa));
        assert!(dist.iter().all(|&c| c == n / geom.channels as u64));
    }

    #[test]
    fn gc_reclaims_space_under_overwrite_churn() {
        let (mut arr, mut ftl, geom) = setup();
        // Small geometry: 2ch*2chip*1plane*2blk*2pg = 16 phys pages,
        // exported 14. Overwrite a small working set many times; GC must
        // keep the device usable.
        for round in 0..40u64 {
            for lpa in 0..4u64 {
                ftl.write(
                    &mut arr,
                    Lpa(lpa),
                    page(&geom, (round * 4 + lpa) as u8),
                    SimTime::ZERO,
                )
                .unwrap();
            }
        }
        for lpa in 0..4u64 {
            let (data, _) = ftl.read(&mut arr, Lpa(lpa), SimTime::ZERO).unwrap();
            assert_eq!(data, page(&geom, (39 * 4 + lpa) as u8));
        }
        assert!(ftl.stats().erases > 0, "GC must have erased blocks");
        assert!(ftl.stats().write_amplification() >= 1.0);
    }

    #[test]
    fn skewed_placement_reaches_target_distribution() {
        let geom = FlashGeometry::default();
        let mut arr = FlashArray::new(geom, FlashTiming::default());
        let mut ftl = Ftl::new(geom);
        let n = 8192u64;
        ftl.begin_stream(Placement::skewed(geom.channels, 0.5), n);
        for i in 0..n {
            ftl.write(&mut arr, Lpa(i), page(&geom, i as u8), SimTime::ZERO)
                .unwrap();
        }
        let dist = ftl.channel_distribution((0..n).map(Lpa));
        let got = crate::skew::measure_skew(&dist);
        assert!((got - 0.5).abs() < 0.02, "got skew {got}");
    }

    #[test]
    fn program_failures_grow_bad_blocks_and_preserve_data() {
        let geom = FlashGeometry::default();
        let fault = FaultConfig {
            program_fail_prob: 0.02,
            ..FaultConfig::with_ber(0x5EED, 0.0)
        };
        let mut arr = FlashArray::with_faults(geom, FlashTiming::default(), fault);
        let mut ftl = Ftl::new(geom);
        let n = 2048u64;
        for i in 0..n {
            ftl.write(&mut arr, Lpa(i), page(&geom, i as u8), SimTime::ZERO)
                .unwrap();
        }
        let stats = ftl.stats();
        assert!(
            stats.grown_bad_blocks > 0,
            "2% program failures over {n} writes must retire blocks"
        );
        assert_eq!(
            stats.grown_bad_blocks,
            arr.reliability_stats().grown_bad_blocks,
            "FTL and flash agree on grown-bad accounting"
        );
        // Every logical page — including those relocated out of retired
        // blocks — still reads back its own data.
        for i in 0..n {
            let (data, _) = ftl.read(&mut arr, Lpa(i), SimTime::ZERO).unwrap();
            assert_eq!(data, page(&geom, i as u8), "lpa {i}");
            let loc = ftl.translate(Lpa(i)).unwrap();
            assert!(
                !arr.is_bad_block(loc.channel, loc.chip, loc.plane, loc.block),
                "lpa {i} must not live on a grown-bad block"
            );
        }
    }

    #[test]
    fn erase_failures_retire_victims_gracefully() {
        let geom = FlashGeometry::small_for_tests();
        let fault = FaultConfig {
            erase_fail_prob: 1.0,
            ..FaultConfig::with_ber(3, 0.0)
        };
        let mut arr = FlashArray::with_faults(geom, FlashTiming::default(), fault);
        let mut ftl = Ftl::new(geom);
        // Churn overwrites until the shrinking good-block pool is gone;
        // the FTL must degrade to DeviceFull, never panic or corrupt.
        let mut last_ok = Vec::new();
        'outer: for round in 0..200u64 {
            for lpa in 0..4u64 {
                let fill = (round * 4 + lpa) as u8;
                match ftl.write(&mut arr, Lpa(lpa), page(&geom, fill), SimTime::ZERO) {
                    Ok(_) => {
                        last_ok.resize(4.max(lpa as usize + 1), 0);
                        last_ok[lpa as usize] = fill;
                    }
                    Err(FtlError::DeviceFull) => break 'outer,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
        assert!(
            ftl.stats().grown_bad_blocks > 0,
            "every erase fails, so GC must have retired victims"
        );
        // Pages written before the device filled are still readable.
        for (lpa, &fill) in last_ok.iter().enumerate() {
            let (data, _) = ftl.read(&mut arr, Lpa(lpa as u64), SimTime::ZERO).unwrap();
            assert_eq!(data, page(&geom, fill), "lpa {lpa}");
        }
    }

    #[test]
    fn uncorrectable_read_surfaces_typed_error() {
        let geom = FlashGeometry::small_for_tests();
        let fault = FaultConfig {
            read_retry_limit: 0,
            ..FaultConfig::with_ber(1, 5e-2)
        };
        let mut arr = FlashArray::with_faults(geom, FlashTiming::default(), fault);
        let mut ftl = Ftl::new(geom);
        ftl.write(&mut arr, Lpa(0), page(&geom, 0x11), SimTime::ZERO)
            .unwrap();
        let err = ftl.read(&mut arr, Lpa(0), SimTime::ZERO).unwrap_err();
        match err {
            FtlError::Uncorrectable { lpa, addr, errors } => {
                assert_eq!(lpa, Lpa(0));
                assert_eq!(addr, ftl.translate(Lpa(0)).unwrap());
                assert!(errors > 0);
            }
            other => panic!("expected Uncorrectable, got {other:?}"),
        }
        assert_eq!(ftl.stats().uncorrectable, 1);
    }

    #[test]
    fn marginal_reads_count_retries_and_corrections() {
        let geom = FlashGeometry::small_for_tests();
        let fault = FaultConfig::with_ber(7, 1e-2);
        let mut arr = FlashArray::with_faults(geom, FlashTiming::default(), fault);
        let mut ftl = Ftl::new(geom);
        ftl.write(&mut arr, Lpa(0), page(&geom, 0x22), SimTime::ZERO)
            .unwrap();
        let (data, _) = ftl.read(&mut arr, Lpa(0), SimTime::ZERO).unwrap();
        assert_eq!(data, page(&geom, 0x22));
        let stats = ftl.stats();
        assert!(
            stats.read_retries >= 1,
            "lambda far above budget: {stats:?}"
        );
        assert_eq!(stats.ecc_corrected, 1);
        assert_eq!(stats.uncorrectable, 0);
    }

    #[test]
    fn wear_spread_stays_bounded() {
        let (mut arr, mut ftl, geom) = setup();
        for round in 0..200u64 {
            for lpa in 0..4u64 {
                ftl.write(&mut arr, Lpa(lpa), page(&geom, round as u8), SimTime::ZERO)
                    .unwrap();
            }
        }
        // Least-worn-first allocation keeps erase counts within a small band.
        assert!(ftl.wear_spread() <= 4, "wear spread {}", ftl.wear_spread());
    }
}
