//! Physical placement policies for new page writes.

use crate::skew::skewed_channel_weights;

/// How the FTL chooses the channel for the next page allocation.
///
/// The paper's point (Section VI-D/VI-E) is that a *normal* FTL stripes
/// pages across channels for storage performance, independent of any
/// computational-storage considerations; ASSASIN's crossbar then works with
/// whatever layout the FTL chose. `Skewed` exists to reproduce the
/// adversarial layouts of Section VI-E.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Placement {
    /// Round-robin striping across channels (a normal FTL's behaviour).
    #[default]
    StripeRoundRobin,
    /// Weighted channel selection; weight `w[i]` is the relative share of
    /// pages steered to channel `i`. Produced by [`skewed`](Placement::skewed).
    Skewed(Vec<f64>),
}

impl Placement {
    /// A placement with the paper's skew metric equal to `skew` across
    /// `channels` channels (Section VI-E):
    ///
    /// `Skew = (max_i(D_i / avg(D)) - 1) / (n - 1)`, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= skew <= 1.0` and `channels >= 2`.
    pub fn skewed(channels: u32, skew: f64) -> Self {
        Placement::Skewed(skewed_channel_weights(channels, skew))
    }

    /// Channel for the `n`-th page of a stream of `total` pages.
    ///
    /// For `StripeRoundRobin` this is `n % channels`. For `Skewed` the
    /// stream is partitioned into contiguous weighted runs, matching
    /// "the amount of to-be-processed data in the i-th channel" from the
    /// paper's skew definition.
    pub fn channel_for(&self, n: u64, total: u64, channels: u32) -> u32 {
        match self {
            Placement::StripeRoundRobin => (n % channels as u64) as u32,
            Placement::Skewed(weights) => {
                assert_eq!(weights.len(), channels as usize, "weight count mismatch");
                let total = total.max(1);
                let frac = n as f64 / total as f64;
                let mut acc = 0.0;
                for (i, w) in weights.iter().enumerate() {
                    acc += w;
                    if frac < acc {
                        return i as u32;
                    }
                }
                channels - 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skew::measure_skew;

    fn distribute(p: &Placement, total: u64, channels: u32) -> Vec<u64> {
        let mut counts = vec![0u64; channels as usize];
        for n in 0..total {
            counts[p.channel_for(n, total, channels) as usize] += 1;
        }
        counts
    }

    #[test]
    fn round_robin_is_balanced() {
        let counts = distribute(&Placement::StripeRoundRobin, 8000, 8);
        assert!(counts.iter().all(|&c| c == 1000));
        assert!(measure_skew(&counts) < 1e-9);
    }

    #[test]
    fn skewed_hits_requested_skew() {
        for &target in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let p = Placement::skewed(8, target);
            let counts = distribute(&p, 80_000, 8);
            let got = measure_skew(&counts);
            assert!(
                (got - target).abs() < 0.02,
                "target {target} got {got} ({counts:?})"
            );
        }
    }

    #[test]
    fn extreme_skew_uses_one_channel() {
        let p = Placement::skewed(8, 1.0);
        let counts = distribute(&p, 8000, 8);
        assert_eq!(counts[0], 8000);
        assert!(counts[1..].iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "skew")]
    fn invalid_skew_rejected() {
        let _ = Placement::skewed(8, 1.5);
    }
}
