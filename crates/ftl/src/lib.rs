//! Flash translation layer (FTL).
//!
//! The FTL maintains the logical-to-physical page mapping, allocates
//! physical pages across channels and chips, performs garbage collection and
//! wear-aware block selection (Section II-A). Preserving the FTL's
//! *independence* — no computational-storage-specific layout constraints —
//! is one of ASSASIN's two key advantages over channel-local architectures
//! (Section V-A), and the experiments of Sections VI-D/VI-E rely on the FTL
//! behaviours modeled here:
//!
//! * the default round-robin striped allocator spreads pages evenly across
//!   channels, which is what gives Figure 18 its balanced channel
//!   throughput;
//! * the [`placement::Placement::Skewed`] policy deliberately concentrates
//!   data in some channels to produce the skewed layouts of Section VI-E
//!   (our Figure 19 experiment).
//!
//! ```
//! use assasin_flash::{FlashArray, FlashGeometry, FlashTiming};
//! use assasin_ftl::{Ftl, Lpa};
//! use assasin_sim::SimTime;
//!
//! let geom = FlashGeometry::small_for_tests();
//! let mut array = FlashArray::new(geom, FlashTiming::default());
//! let mut ftl = Ftl::new(geom);
//! let page = vec![1u8; geom.page_bytes as usize];
//! ftl.write(&mut array, Lpa(0), page.clone().into(), SimTime::ZERO)?;
//! let (data, _t) = ftl.read(&mut array, Lpa(0), SimTime::ZERO)?;
//! assert_eq!(&data[..], &page[..]);
//! # Ok::<(), assasin_ftl::FtlError>(())
//! ```

mod error;
mod mapping;
pub mod placement;
pub mod skew;

pub use error::FtlError;
pub use mapping::{Ftl, FtlStats, Lpa};
