//! Graph-analysis kernel (Table II: "Graph Analysis — edge list, vertex
//! list, statistics").
//!
//! Section IV: "we can also stream the edge list or vertex list while
//! performing updates on the statistics kept in close memory". This kernel
//! streams an edge list of `(src, dst)` u32 pairs and maintains per-vertex
//! degree counters in the scratchpad (vertex ids bounded by
//! [`MAX_VERTICES`], the "statistics" function state). Out-degrees land at
//! [`OUT_DEG_BASE`], in-degrees at [`IN_DEG_BASE`]; the kernel emits no
//! output stream — the firmware reads the statistics out of the scratchpad
//! afterwards, like `Stat`'s accumulators.

use crate::{AccessStyle, KernelIo};
use assasin_isa::{Assembler, Program, Reg};

/// Bytes per streamed edge.
pub const EDGE_BYTES: u32 = 8;
/// Highest vertex id + 1 the statistics arrays hold.
pub const MAX_VERTICES: u32 = 4096;
/// Scratchpad offset of the out-degree array (`MAX_VERTICES` u32s).
pub const OUT_DEG_BASE: u32 = 0x1000;
/// Scratchpad offset of the in-degree array.
pub const IN_DEG_BASE: u32 = 0x5000;

/// Builds the degree-counting kernel.
pub fn program(style: AccessStyle) -> Program {
    let io = KernelIo::new(style, 1, EDGE_BYTES);
    let mut asm = Assembler::with_name(format!("graph-degree-{style:?}"));
    // A6/A7 = table bases, S10 = vertex-id mask (power of two).
    asm.li(Reg::A6, OUT_DEG_BASE as i64);
    asm.li(Reg::A7, IN_DEG_BASE as i64);
    asm.li(Reg::S10, (MAX_VERTICES - 1) as i64);
    let ctx = io.begin(&mut asm);
    // src
    io.load(&mut asm, Reg::T0, 0, 0, 4, false);
    asm.and(Reg::T0, Reg::T0, Reg::S10);
    asm.slli(Reg::T0, Reg::T0, 2);
    asm.add(Reg::T0, Reg::A6, Reg::T0);
    asm.lw(Reg::T2, Reg::T0, 0);
    asm.addi(Reg::T2, Reg::T2, 1);
    asm.sw(Reg::T2, Reg::T0, 0);
    // dst
    io.load(&mut asm, Reg::T1, 0, 4, 4, false);
    asm.and(Reg::T1, Reg::T1, Reg::S10);
    asm.slli(Reg::T1, Reg::T1, 2);
    asm.add(Reg::T1, Reg::A7, Reg::T1);
    asm.lw(Reg::T2, Reg::T1, 0);
    asm.addi(Reg::T2, Reg::T2, 1);
    asm.sw(Reg::T2, Reg::T1, 0);
    io.end_iter(&mut asm, &ctx);
    io.end(&mut asm, ctx);
    asm.finish().expect("graph kernel assembles")
}

/// Golden model: `(out_degrees, in_degrees)` with vertex ids wrapped to
/// `MAX_VERTICES`, exactly as the kernel computes them.
pub fn golden(edges: &[u8]) -> (Vec<u32>, Vec<u32>) {
    assert_eq!(edges.len() % EDGE_BYTES as usize, 0, "edge-aligned input");
    let mut out_deg = vec![0u32; MAX_VERTICES as usize];
    let mut in_deg = vec![0u32; MAX_VERTICES as usize];
    for e in edges.chunks_exact(EDGE_BYTES as usize) {
        let src = u32::from_le_bytes(e[0..4].try_into().expect("src")) & (MAX_VERTICES - 1);
        let dst = u32::from_le_bytes(e[4..8].try_into().expect("dst")) & (MAX_VERTICES - 1);
        out_deg[src as usize] += 1;
        in_deg[dst as usize] += 1;
    }
    (out_deg, in_deg)
}

/// Serializes an edge list.
pub fn edges_to_bytes(edges: &[(u32, u32)]) -> Vec<u8> {
    edges
        .iter()
        .flat_map(|&(s, d)| {
            let mut b = s.to_le_bytes().to_vec();
            b.extend_from_slice(&d.to_le_bytes());
            b
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_kernel;
    use assasin_core::Core;

    fn sample_edges(n: usize) -> Vec<u8> {
        let edges: Vec<(u32, u32)> = (0..n as u32)
            .map(|i| (i.wrapping_mul(31) % 100, i.wrapping_mul(17) % 100))
            .collect();
        edges_to_bytes(&edges)
    }

    fn degrees_from(core: &Core) -> (Vec<u32>, Vec<u32>) {
        let read = |base: u32| {
            (0..MAX_VERTICES)
                .map(|v| core.scratchpad().load((base + v * 4) as u64, 4).unwrap() as u32)
                .collect::<Vec<u32>>()
        };
        (read(OUT_DEG_BASE), read(IN_DEG_BASE))
    }

    #[test]
    fn all_styles_match_golden() {
        let data = sample_edges(500);
        let (out_exp, in_exp) = golden(&data);
        for style in AccessStyle::ALL {
            let (core, emitted) = run_kernel(style, program(style), &[&data], EDGE_BYTES as usize);
            assert!(emitted.is_empty(), "degree counting emits nothing");
            let (out_got, in_got) = degrees_from(&core);
            assert_eq!(out_got, out_exp, "style {style:?}");
            assert_eq!(in_got, in_exp, "style {style:?}");
        }
    }

    #[test]
    fn degree_totals_equal_edge_count() {
        let data = sample_edges(321);
        let (out_deg, in_deg) = golden(&data);
        assert_eq!(out_deg.iter().sum::<u32>(), 321);
        assert_eq!(in_deg.iter().sum::<u32>(), 321);
    }

    #[test]
    fn vertex_ids_wrap_into_the_table() {
        let data = edges_to_bytes(&[(MAX_VERTICES + 5, u32::MAX)]);
        let (out_deg, in_deg) = golden(&data);
        assert_eq!(out_deg[5], 1);
        // u32::MAX masked into the table lands on the last slot.
        assert_eq!(in_deg[(MAX_VERTICES - 1) as usize], 1);
        let (core, _) = run_kernel(
            AccessStyle::Stream,
            program(AccessStyle::Stream),
            &[&data],
            8,
        );
        let (out_got, in_got) = degrees_from(&core);
        assert_eq!(out_got, out_deg);
        assert_eq!(in_got, in_deg);
    }
}
