//! The dummy scan kernel of Sections VI-D/VI-E.
//!
//! "A dummy workload where each ASSASIN core scans each byte of input":
//! the kernel reads every input word and folds it into a running checksum
//! kept in a register (no output stream). The loop is shaped so a 1 GHz
//! core consumes input at roughly 1 GB/s when data is always available —
//! the calibration point of Figure 16.

use crate::{AccessStyle, KernelIo};
use assasin_isa::{Assembler, Program, Reg};

/// Bytes consumed per loop iteration.
pub const TUPLE_BYTES: u32 = 8;

/// Builds the scan program for an access style. The checksum accumulates
/// in `t2` (readable after halt).
pub fn program(style: AccessStyle) -> Program {
    let io = KernelIo::new(style, 1, TUPLE_BYTES);
    let mut asm = Assembler::with_name(format!("scan-{style:?}"));
    let ctx = io.begin(&mut asm);
    io.load(&mut asm, Reg::T0, 0, 0, 4, false);
    io.load(&mut asm, Reg::T1, 0, 4, 4, false);
    asm.add(Reg::T2, Reg::T2, Reg::T0);
    asm.add(Reg::T2, Reg::T2, Reg::T1);
    io.end_iter(&mut asm, &ctx);
    io.end(&mut asm, ctx);
    asm.finish().expect("scan kernel assembles")
}

/// Builds a compute-heavier scan (~0.5 GB/s/core at 1 GHz): the same byte
/// coverage but with a mixing function per word. Used by the Section VI-E
/// skew experiment, where compute must be the bottleneck in the balanced
/// case for the crossbar's compute pooling to be observable.
pub fn heavy_program(style: AccessStyle) -> Program {
    let io = KernelIo::new(style, 1, TUPLE_BYTES);
    let mut asm = Assembler::with_name(format!("scan-heavy-{style:?}"));
    let ctx = io.begin(&mut asm);
    io.load(&mut asm, Reg::T0, 0, 0, 4, false);
    io.load(&mut asm, Reg::T1, 0, 4, 4, false);
    // xorshift-style mixing: ~14 ALU ops per 8 bytes.
    for &r in &[Reg::T0, Reg::T1] {
        asm.slli(Reg::T3, r, 13);
        asm.xor(Reg::T4, r, Reg::T3);
        asm.srli(Reg::T3, Reg::T4, 17);
        asm.xor(Reg::T4, Reg::T4, Reg::T3);
        asm.slli(Reg::T3, Reg::T4, 5);
        asm.xor(Reg::T4, Reg::T4, Reg::T3);
        asm.add(Reg::T2, Reg::T2, Reg::T4);
    }
    io.end_iter(&mut asm, &ctx);
    io.end(&mut asm, ctx);
    asm.finish().expect("heavy scan kernel assembles")
}

/// Golden model for [`heavy_program`]: the mixed checksum in `t2`.
pub fn heavy_golden(data: &[u8]) -> u32 {
    assert_eq!(data.len() % TUPLE_BYTES as usize, 0, "input must be padded");
    data.chunks_exact(4)
        .map(|w| {
            let mut v = u32::from_le_bytes(w.try_into().expect("4-byte chunk"));
            v ^= v << 13;
            v ^= v >> 17;
            v ^= v << 5;
            v
        })
        .fold(0u32, |a, b| a.wrapping_add(b))
}

/// Golden model: the checksum the kernel computes over `data` (length must
/// be a multiple of [`TUPLE_BYTES`]).
pub fn golden(data: &[u8]) -> u32 {
    assert_eq!(data.len() % TUPLE_BYTES as usize, 0, "input must be padded");
    data.chunks_exact(4)
        .map(|w| u32::from_le_bytes(w.try_into().expect("4-byte chunk")))
        .fold(0u32, |a, b| a.wrapping_add(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_kernel;
    use assasin_isa::Reg;

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 37 % 251) as u8).collect()
    }

    #[test]
    fn all_styles_match_golden() {
        let input = data(4096);
        let expect = golden(&input);
        for style in AccessStyle::ALL {
            let (core, out) = run_kernel(style, program(style), &[&input], TUPLE_BYTES as usize);
            assert_eq!(core.reg(Reg::T2), expect, "style {style:?}");
            assert!(out.is_empty(), "scan produces no output");
        }
    }

    #[test]
    fn stream_style_is_near_one_byte_per_cycle() {
        let input = data(64 * 1024);
        let (core, _) = run_kernel(
            AccessStyle::Stream,
            program(AccessStyle::Stream),
            &[&input],
            TUPLE_BYTES as usize,
        );
        let cpb = core.cycles() as f64 / input.len() as f64;
        assert!(
            (0.7..=1.2).contains(&cpb),
            "scan should run near 1 cycle/byte, got {cpb:.3}"
        );
    }

    #[test]
    fn heavy_scan_matches_golden_and_is_slower() {
        let input = data(8192);
        let expect = heavy_golden(&input);
        for style in AccessStyle::ALL {
            let (core, _) =
                run_kernel(style, heavy_program(style), &[&input], TUPLE_BYTES as usize);
            assert_eq!(core.reg(Reg::T2), expect, "style {style:?}");
        }
        let (light, _) = run_kernel(
            AccessStyle::Stream,
            program(AccessStyle::Stream),
            &[&input],
            8,
        );
        let (heavy, _) = run_kernel(
            AccessStyle::Stream,
            heavy_program(AccessStyle::Stream),
            &[&input],
            8,
        );
        assert!(
            heavy.cycles() > 15 * input.len() as u64 / 8,
            "heavy is ~2 c/B"
        );
        assert!(heavy.cycles() > light.cycles());
    }

    #[test]
    fn stream_isa_beats_pointer_walks() {
        let input = data(16 * 1024);
        let (sb, _) = run_kernel(
            AccessStyle::Stream,
            program(AccessStyle::Stream),
            &[&input],
            TUPLE_BYTES as usize,
        );
        let (pp, _) = run_kernel(
            AccessStyle::PingPong,
            program(AccessStyle::PingPong),
            &[&input],
            TUPLE_BYTES as usize,
        );
        assert!(
            sb.cycles() < pp.cycles(),
            "stream ISA eliminates pointer management: {} vs {}",
            sb.cycles(),
            pp.cycles()
        );
    }
}
