//! Neural-network training kernel (Table II: "NN Training — training
//! data, model parameters").
//!
//! Streaming SGD on a single linear layer: the model (weights `w[IN_DIM]`
//! and a bias) stays stationary in the scratchpad while `(x, y)` training
//! samples stream in. Per sample, in wrapping i32 fixed point:
//!
//! ```text
//! pred = b + Σ w[i] * x[i]
//! err  = y - pred
//! w[i] += round(err * x[i], LR_SHIFT)   // round-to-nearest shift
//! b    += round(err, LR_SHIFT)
//! ```
//!
//! The shift-based learning rate uses round-to-nearest (`+2^(s-1)` before
//! the arithmetic shift) — plain truncation rounds toward -inf and makes
//! integer SGD drift. Kernel and golden model stay bit-exact.
//! The kernel emits the prediction error per sample (a training-loss
//! stream), so convergence is observable from the host.

use crate::{AccessStyle, KernelIo};
use assasin_isa::{Assembler, Program, Reg};

/// Features per training sample.
pub const IN_DIM: usize = 8;
/// Bytes per streamed sample: IN_DIM features + 1 label, all i32.
pub const TUPLE_BYTES: u32 = ((IN_DIM + 1) * 4) as u32;
/// Learning-rate shift (lr = 2^-LR_SHIFT).
pub const LR_SHIFT: u32 = 5;
/// Scratchpad offset of the weights (`IN_DIM` i32s then the bias).
pub const W_BASE: u32 = 0x400;

mod layout {
    /// Streamed sample staging.
    pub const X: i64 = 0x80;
}

/// The linear model (the scratchpad-stationary state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearModel {
    /// Weights.
    pub w: Vec<i32>,
    /// Bias.
    pub b: i32,
}

impl LinearModel {
    /// The zero model (cold start).
    pub fn zeroed() -> LinearModel {
        LinearModel {
            w: vec![0; IN_DIM],
            b: 0,
        }
    }

    /// The scratchpad preload image.
    pub fn scratchpad_image(&self) -> Vec<(u32, Vec<u8>)> {
        let mut bytes: Vec<u8> = self.w.iter().flat_map(|v| v.to_le_bytes()).collect();
        bytes.extend_from_slice(&self.b.to_le_bytes());
        vec![(W_BASE, bytes)]
    }

    /// One golden SGD step; returns the error emitted by the kernel.
    pub fn step(&mut self, x: &[i32], y: i32) -> i32 {
        assert_eq!(x.len(), IN_DIM);
        let round = |v: i32| v.wrapping_add(1 << (LR_SHIFT - 1)) >> LR_SHIFT;
        let mut pred = self.b;
        for (w, &xi) in self.w.iter().zip(x) {
            pred = pred.wrapping_add(w.wrapping_mul(xi));
        }
        let err = y.wrapping_sub(pred);
        for (w, &xi) in self.w.iter_mut().zip(x) {
            *w = w.wrapping_add(round(err.wrapping_mul(xi)));
        }
        self.b = self.b.wrapping_add(round(err));
        err
    }

    /// Golden training pass over packed samples; returns the error stream
    /// and mutates the model.
    pub fn golden(&mut self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len() % TUPLE_BYTES as usize, 0, "sample-aligned input");
        let mut out = Vec::new();
        for sample in data.chunks_exact(TUPLE_BYTES as usize) {
            let vals: Vec<i32> = sample
                .chunks_exact(4)
                .map(|b| i32::from_le_bytes(b.try_into().expect("word")))
                .collect();
            let err = self.step(&vals[..IN_DIM], vals[IN_DIM]);
            out.extend_from_slice(&err.to_le_bytes());
        }
        out
    }
}

/// Builds the training kernel. Requires [`LinearModel::scratchpad_image`]
/// preloaded.
pub fn program(style: AccessStyle) -> Program {
    let io = KernelIo::new(style, 1, TUPLE_BYTES);
    let mut asm = Assembler::with_name(format!("nn-train-{style:?}"));
    asm.li(Reg::A6, W_BASE as i64);
    let ctx = io.begin(&mut asm);

    // Stage the sample; y ends up in A7.
    for i in 0..IN_DIM as i64 {
        io.load(&mut asm, Reg::T0, 0, i * 4, 4, false);
        asm.sw(Reg::T0, Reg::ZERO, layout::X + i * 4);
    }
    io.load(&mut asm, Reg::A7, 0, (IN_DIM * 4) as i64, 4, false);

    // pred (T0) = b + Σ w[i]*x[i]
    asm.lw(Reg::T0, Reg::A6, (IN_DIM * 4) as i64); // bias
    asm.li(Reg::T3, IN_DIM as i64);
    asm.mv(Reg::T4, Reg::A6);
    asm.li(Reg::T5, layout::X);
    let dot = asm.label();
    asm.bind(dot);
    asm.lw(Reg::T1, Reg::T4, 0);
    asm.lw(Reg::T2, Reg::T5, 0);
    asm.mul(Reg::T1, Reg::T1, Reg::T2);
    asm.add(Reg::T0, Reg::T0, Reg::T1);
    asm.addi(Reg::T4, Reg::T4, 4);
    asm.addi(Reg::T5, Reg::T5, 4);
    asm.addi(Reg::T3, Reg::T3, -1);
    asm.bnez(Reg::T3, dot);

    // err (T0) = y - pred; emit it.
    asm.sub(Reg::T0, Reg::A7, Reg::T0);
    io.emit(&mut asm, Reg::T0, 4);

    // Update loop: w[i] += (err*x[i]) >> LR_SHIFT
    asm.li(Reg::T3, IN_DIM as i64);
    asm.mv(Reg::T4, Reg::A6);
    asm.li(Reg::T5, layout::X);
    let upd = asm.label();
    asm.bind(upd);
    asm.lw(Reg::T2, Reg::T5, 0);
    asm.mul(Reg::T2, Reg::T0, Reg::T2);
    asm.addi(Reg::T2, Reg::T2, 1 << (LR_SHIFT - 1)); // round to nearest
    asm.srai(Reg::T2, Reg::T2, LR_SHIFT as i64);
    asm.lw(Reg::T1, Reg::T4, 0);
    asm.add(Reg::T1, Reg::T1, Reg::T2);
    asm.sw(Reg::T1, Reg::T4, 0);
    asm.addi(Reg::T4, Reg::T4, 4);
    asm.addi(Reg::T5, Reg::T5, 4);
    asm.addi(Reg::T3, Reg::T3, -1);
    asm.bnez(Reg::T3, upd);
    // b += round(err, LR_SHIFT)
    asm.addi(Reg::T2, Reg::T0, 1 << (LR_SHIFT - 1));
    asm.srai(Reg::T2, Reg::T2, LR_SHIFT as i64);
    asm.lw(Reg::T1, Reg::A6, (IN_DIM * 4) as i64);
    asm.add(Reg::T1, Reg::T1, Reg::T2);
    asm.sw(Reg::T1, Reg::A6, (IN_DIM * 4) as i64);

    io.end_iter(&mut asm, &ctx);
    io.end(&mut asm, ctx);
    asm.finish().expect("nn-train kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use assasin_core::{Core, CoreConfig, CoreState, StreamEnv as _, SyntheticEnv};
    use assasin_sim::SimTime;

    fn samples(n: usize) -> Vec<u8> {
        // A learnable target: y = 3*x0 - 2*x1 + 2 with x scaled so the
        // fixed-point gradient steps are expressive.
        (0..n)
            .flat_map(|i| {
                let mut x = vec![0i32; IN_DIM];
                x[0] = (((i * 7) % 5) as i32 - 2) * 2;
                x[1] = (((i * 3) % 7) as i32 - 3) * 2;
                let y = 3 * x[0] - 2 * x[1] + 2;
                x.push(y);
                x.into_iter()
                    .flat_map(|v| v.to_le_bytes())
                    .collect::<Vec<u8>>()
            })
            .collect()
    }

    fn run_train(style: AccessStyle, data: &[u8]) -> (Core, Vec<u8>) {
        let model = LinearModel::zeroed();
        match style {
            AccessStyle::Stream => {
                let mut env = SyntheticEnv::new(8, 512);
                env.set_input(0, data);
                let mut core = Core::new(0, CoreConfig::assasin_sb(), program(style), None);
                for (off, bytes) in model.scratchpad_image() {
                    core.scratchpad_mut()
                        .write_bytes(off as u64, &bytes)
                        .unwrap();
                }
                core.run_to_halt(&mut env);
                assert_eq!(core.state(), &CoreState::Halted);
                if let Some(tail) = core.sbuf_mut().flush(0).unwrap() {
                    env.drain_page(0, 0, tail, SimTime::ZERO);
                }
                let out = env.output(0).to_vec();
                (core, out)
            }
            AccessStyle::PingPong => {
                let mut env = SyntheticEnv::new(8, 512);
                env.set_banks(data, (1024 / TUPLE_BYTES as usize) * TUPLE_BYTES as usize);
                let mut core = Core::new(0, CoreConfig::assasin_sp(), program(style), None);
                for (off, bytes) in model.scratchpad_image() {
                    core.scratchpad_mut()
                        .write_bytes(off as u64, &bytes)
                        .unwrap();
                }
                core.run_to_halt(&mut env);
                assert_eq!(core.state(), &CoreState::Halted);
                (core, env.bank_output().to_vec())
            }
            AccessStyle::Mem => {
                use assasin_core::{DramWindow, NullEnv};
                use assasin_isa::Reg;
                use assasin_mem::Dram;
                let len = data.len();
                let out_offset = len.next_multiple_of(64);
                let mut window = DramWindow::new(out_offset + len + 4096, 4096);
                window.stage(0, data, SimTime::ZERO);
                let dram = Dram::lpddr5_8gbps().into_shared();
                let mut core = Core::new(0, CoreConfig::baseline(), program(style), Some(dram));
                for (off, bytes) in model.scratchpad_image() {
                    core.scratchpad_mut()
                        .write_bytes(off as u64, &bytes)
                        .unwrap();
                }
                core.set_window(window);
                core.set_reg(Reg::A0, len as u32);
                core.set_reg(Reg::A1, 0);
                core.set_reg(Reg::A2, out_offset as u32);
                core.run_to_halt(&mut NullEnv);
                assert_eq!(core.state(), &assasin_core::CoreState::Halted);
                let cursor = core.reg(Reg::S5) as u64 - (0x1000_0000 + out_offset as u64);
                let out = core
                    .window()
                    .unwrap()
                    .bytes(out_offset as u64, cursor as usize)
                    .to_vec();
                (core, out)
            }
        }
    }

    #[test]
    fn all_styles_match_golden_including_final_weights() {
        let data = samples(96);
        let mut model = LinearModel::zeroed();
        let expect_errs = model.golden(&data);
        for style in AccessStyle::ALL {
            let (core, errs) = run_train(style, &data);
            assert_eq!(errs, expect_errs, "style {style:?}");
            // Final weights in the scratchpad match the golden model.
            for (i, &w) in model.w.iter().enumerate() {
                let got = core
                    .scratchpad()
                    .load((W_BASE + 4 * i as u32) as u64, 4)
                    .unwrap() as u32;
                assert_eq!(got as i32, w, "w[{i}] style {style:?}");
            }
        }
    }

    #[test]
    fn training_converges_on_a_linear_target() {
        let data = samples(512);
        let mut model = LinearModel::zeroed();
        let errs = model.golden(&data);
        let early: i64 = errs[..64]
            .chunks_exact(4)
            .map(|b| (i32::from_le_bytes(b.try_into().unwrap()) as i64).abs())
            .sum();
        let late: i64 = errs[errs.len() - 64..]
            .chunks_exact(4)
            .map(|b| (i32::from_le_bytes(b.try_into().unwrap()) as i64).abs())
            .sum();
        assert!(late * 4 < early.max(1), "loss must fall: {early} -> {late}");
        // Learned coefficients approach the target.
        assert!((model.w[0] - 3).abs() <= 1, "w0 {}", model.w[0]);
        assert!((model.w[1] + 2).abs() <= 1, "w1 {}", model.w[1]);
    }
}
