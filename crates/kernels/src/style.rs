//! Access-style abstraction: one kernel body, three memory architectures.
//!
//! [`KernelIo`] emits the input/output scaffolding for a kernel: stream
//! instructions for AssasinSb, pointer walks over ping-pong staging banks
//! for AssasinSp, and pointer walks over DRAM-staged windows for
//! Baseline/Prefetch. The kernel body between [`KernelIo::begin`] and
//! [`KernelIo::end`] is identical across styles, so architecture
//! comparisons isolate the memory system — the paper's experimental
//! control.

use assasin_isa::{Assembler, Label, Reg};

/// The AssasinSp bank-length CSR (must match
/// `assasin_core::Core::CSR_IN_BANK_LEN`).
const CSR_IN_BANK_LEN: u16 = 0xC10;

/// Upper 20 bits of the core's DRAM window base (0x1000_0000).
const DRAM_BASE_HI: u32 = 0x10000;
/// Upper 20 bits of the staging input window base (0x2000_0000).
const STAGING_IN_HI: u32 = 0x20000;
/// Upper 20 bits of the staging output window base (0x2800_0000).
const STAGING_OUT_HI: u32 = 0x28000;

/// How a kernel reaches storage data (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessStyle {
    /// Stream ISA extension (AssasinSb, AssasinSb$).
    Stream,
    /// Ping-pong staging scratchpads (AssasinSp).
    PingPong,
    /// DRAM-staged data through the cache hierarchy (Baseline, Prefetch).
    Mem,
}

impl AccessStyle {
    /// All three styles.
    pub const ALL: [AccessStyle; 3] =
        [AccessStyle::Stream, AccessStyle::PingPong, AccessStyle::Mem];
}

/// The launch-register convention for [`AccessStyle::Mem`] kernels, which
/// the firmware fills before starting the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchInfo {
    /// Bytes per input stream (written to `a0`).
    pub in_len: u32,
    /// Byte stride between consecutive stream bases in the DRAM window
    /// (written to `a1`; ignored for single-stream kernels).
    pub in_stride: u32,
    /// Output area offset within the DRAM window (written to `a2`).
    pub out_offset: u32,
}

impl LaunchInfo {
    /// Registers carrying the launch values, in order: `(a0, a1, a2)`.
    pub fn regs() -> (Reg, Reg, Reg) {
        (Reg::A0, Reg::A1, Reg::A2)
    }
}

/// Loop labels handed back by [`KernelIo::begin`].
#[derive(Debug, Clone, Copy)]
pub struct LoopCtx {
    top: Label,
    exit: Label,
    outer: Option<Label>,
    bank_done: Option<Label>,
}

/// Emits per-style input/output scaffolding.
///
/// Register reservations (kernel bodies must not clobber these):
/// `s0..s3` input cursors, `s4` stream-0 end bound, `s5` output cursor,
/// `s6` bank length, `s7` io scratch, and `s8`/`s9` for multi-stream
/// ping-pong chunking. Bodies are free to use `t0-t6`, `a0-a7`, `s10`,
/// `s11`.
#[derive(Debug, Clone, Copy)]
pub struct KernelIo {
    style: AccessStyle,
    n_in: u32,
    tuple_bytes: u32,
}

impl KernelIo {
    /// Creates an emitter for a kernel consuming `tuple_bytes` per
    /// iteration from each of `n_in` input streams.
    ///
    /// # Panics
    ///
    /// Panics if `n_in` is 0 or exceeds 4, or `tuple_bytes` is 0.
    pub fn new(style: AccessStyle, n_in: u32, tuple_bytes: u32) -> Self {
        assert!((1..=4).contains(&n_in), "1..=4 input streams supported");
        assert!(tuple_bytes > 0, "tuple size must be positive");
        KernelIo {
            style,
            n_in,
            tuple_bytes,
        }
    }

    /// The style this emitter targets.
    pub fn style(&self) -> AccessStyle {
        self.style
    }

    fn cursor(i: u32) -> Reg {
        [Reg::S0, Reg::S1, Reg::S2, Reg::S3][i as usize]
    }

    /// Emits the prologue and the loop head; the kernel body follows.
    pub fn begin(&self, asm: &mut Assembler) -> LoopCtx {
        match self.style {
            AccessStyle::Stream => {
                let top = asm.label();
                let exit = asm.label();
                asm.bind(top);
                LoopCtx {
                    top,
                    exit,
                    outer: None,
                    bank_done: None,
                }
            }
            AccessStyle::Mem => {
                let top = asm.label();
                let exit = asm.label();
                // Bases: s_i = DRAM_BASE + i*stride (stride in a1).
                asm.lui(Reg::S7, DRAM_BASE_HI);
                asm.mv(Reg::S0, Reg::S7);
                for i in 1..self.n_in {
                    asm.add(Self::cursor(i), Self::cursor(i - 1), Reg::A1);
                }
                // End bound for stream 0 (a0 = per-stream length).
                asm.add(Reg::S4, Reg::S0, Reg::A0);
                // Output cursor = DRAM_BASE + a2.
                asm.add(Reg::S5, Reg::S7, Reg::A2);
                asm.bind(top);
                asm.bgeu(Reg::S0, Reg::S4, exit);
                LoopCtx {
                    top,
                    exit,
                    outer: None,
                    bank_done: None,
                }
            }
            AccessStyle::PingPong => {
                let outer = asm.label();
                let top = asm.label();
                let exit = asm.label();
                let bank_done = asm.label();
                asm.bind(outer);
                asm.buf_swap(0);
                asm.csrr(Reg::S6, CSR_IN_BANK_LEN);
                asm.beqz(Reg::S6, exit);
                asm.lui(Reg::S7, STAGING_IN_HI);
                asm.mv(Reg::S0, Reg::S7);
                if self.n_in > 1 {
                    // Banks carry n_in equal chunks: chunk = len / n_in.
                    asm.li(Reg::S9, self.n_in as i64);
                    asm.divu(Reg::S8, Reg::S6, Reg::S9);
                    for i in 1..self.n_in {
                        asm.add(Self::cursor(i), Self::cursor(i - 1), Reg::S8);
                    }
                    asm.add(Reg::S4, Reg::S0, Reg::S8);
                } else {
                    asm.add(Reg::S4, Reg::S0, Reg::S6);
                }
                asm.lui(Reg::S7, STAGING_OUT_HI);
                asm.mv(Reg::S5, Reg::S7);
                asm.bind(top);
                asm.bgeu(Reg::S0, Reg::S4, bank_done);
                LoopCtx {
                    top,
                    exit,
                    outer: Some(outer),
                    bank_done: Some(bank_done),
                }
            }
        }
    }

    /// Loads `width` bytes at `off` within the current tuple of input
    /// stream `sid` into `rd`.
    ///
    /// For [`AccessStyle::Stream`] the calls within one iteration must
    /// cover offsets `0..tuple_bytes` of each stream contiguously and in
    /// order (streams are consumed head-first).
    pub fn load(&self, asm: &mut Assembler, rd: Reg, sid: u32, off: i64, width: u8, signed: bool) {
        match self.style {
            AccessStyle::Stream => asm.stream_load(rd, sid as u8, width),
            _ => {
                let base = Self::cursor(sid);
                match (width, signed) {
                    (1, false) => asm.lbu(rd, base, off),
                    (1, true) => asm.lb(rd, base, off),
                    (2, false) => asm.lhu(rd, base, off),
                    (2, true) => asm.lh(rd, base, off),
                    _ => asm.lw(rd, base, off),
                }
            }
        }
    }

    /// Appends the low `width` bytes of `rs` to the kernel's output.
    pub fn emit(&self, asm: &mut Assembler, rs: Reg, width: u8) {
        match self.style {
            AccessStyle::Stream => asm.stream_store(0, width, rs),
            _ => {
                match width {
                    1 => asm.sb(rs, Reg::S5, 0),
                    2 => asm.sh(rs, Reg::S5, 0),
                    _ => asm.sw(rs, Reg::S5, 0),
                }
                asm.addi(Reg::S5, Reg::S5, width as i64);
            }
        }
    }

    /// Closes one iteration: advances cursors and loops.
    pub fn end_iter(&self, asm: &mut Assembler, ctx: &LoopCtx) {
        self.end_iter_advance_only(asm);
        self.loop_back(asm, ctx);
    }

    /// Advances the input cursors by one tuple *without* looping — for
    /// kernels that consume a variable number of units per iteration
    /// (e.g. decompression) and manage their own control flow.
    pub fn end_iter_advance_only(&self, asm: &mut Assembler) {
        if self.style != AccessStyle::Stream {
            for i in 0..self.n_in {
                asm.addi(Self::cursor(i), Self::cursor(i), self.tuple_bytes as i64);
            }
        }
    }

    /// Jumps back to the loop head (whose bounds check, where the style
    /// has one, decides termination).
    pub fn loop_back(&self, asm: &mut Assembler, ctx: &LoopCtx) {
        asm.j(ctx.top);
    }

    /// Emits the epilogue (bank drains, outer loops, halt).
    pub fn end(&self, asm: &mut Assembler, ctx: LoopCtx) {
        match self.style {
            AccessStyle::Stream => {
                // Streams exit by hanging on an exhausted StreamLoad; the
                // exit label exists for kernels with explicit early-outs.
                asm.bind(ctx.exit);
                asm.halt();
            }
            AccessStyle::Mem => {
                asm.bind(ctx.exit);
                asm.halt();
            }
            AccessStyle::PingPong => {
                asm.bind(ctx.bank_done.expect("pingpong ctx"));
                asm.buf_swap(1);
                asm.j(ctx.outer.expect("pingpong ctx"));
                asm.bind(ctx.exit);
                asm.halt();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_styles_assemble_a_copy_kernel() {
        for style in AccessStyle::ALL {
            let io = KernelIo::new(style, 1, 4);
            let mut asm = Assembler::with_name("copy");
            let ctx = io.begin(&mut asm);
            io.load(&mut asm, Reg::T0, 0, 0, 4, false);
            io.emit(&mut asm, Reg::T0, 4);
            io.end_iter(&mut asm, &ctx);
            io.end(&mut asm, ctx);
            let p = asm.finish().expect("assembles");
            assert!(p.len() >= 4, "style {style:?}");
        }
    }

    #[test]
    #[should_panic(expected = "input streams")]
    fn too_many_streams_rejected() {
        let _ = KernelIo::new(AccessStyle::Stream, 5, 4);
    }
}
