//! Shared test harness: runs generated kernels on the cycle-level core in
//! all three access styles and extracts their output.

use crate::{AccessStyle, LaunchInfo};
use assasin_core::StreamEnv as _;
use assasin_core::{Core, CoreConfig, CoreState, DramWindow, SyntheticEnv};
use assasin_isa::{Program, Reg};
use assasin_mem::Dram;
use assasin_sim::SimTime;

/// Default staging page size for tests.
pub const PAGE: usize = 512;
/// Default ping-pong bank size for tests.
pub const BANK: usize = 1024;

/// Runs `program` in the given style over `inputs` (one slice per input
/// stream; all the same length) and returns `(core, output_bytes)`.
///
/// # Panics
///
/// Panics if the core wedges — kernels must never produce model errors.
pub fn run_kernel(
    style: AccessStyle,
    program: Program,
    inputs: &[&[u8]],
    granularity: usize,
) -> (Core, Vec<u8>) {
    match style {
        AccessStyle::Stream => run_stream(program, inputs),
        AccessStyle::PingPong => run_pingpong(program, inputs, granularity),
        AccessStyle::Mem => run_mem(program, inputs),
    }
}

/// Stream-style run (AssasinSb configuration).
pub fn run_stream(program: Program, inputs: &[&[u8]]) -> (Core, Vec<u8>) {
    let mut env = SyntheticEnv::new(8, PAGE);
    for (sid, data) in inputs.iter().enumerate() {
        env.set_input(sid as u32, data);
    }
    let mut core = Core::new(0, CoreConfig::assasin_sb(), program, None);
    core.run_to_halt(&mut env);
    assert_halted(&core);
    if let Some(tail) = core.sbuf_mut().flush(0).expect("stream 0 exists") {
        env.drain_page(0, 0, tail, SimTime::ZERO);
    }
    let out = env.output(0).to_vec();
    (core, out)
}

/// Ping-pong run (AssasinSp configuration). Multi-stream inputs are
/// interleaved into banks as `n` equal chunks, the firmware convention the
/// kernels expect.
pub fn run_pingpong(program: Program, inputs: &[&[u8]], granularity: usize) -> (Core, Vec<u8>) {
    let n = inputs.len();
    let len = inputs[0].len();
    assert!(
        inputs.iter().all(|i| i.len() == len),
        "equal-length streams"
    );
    // The firmware splits object streams on object boundaries
    // (Section V-D: "consistent splitting of each object/LPA stream").
    let chunk = (BANK / n / granularity).max(1) * granularity;
    let mut banks = Vec::new();
    let mut pos = 0;
    while pos < len {
        let take = chunk.min(len - pos);
        for input in inputs {
            banks.extend_from_slice(&input[pos..pos + take]);
        }
        pos += take;
    }
    let mut env = SyntheticEnv::new(8, PAGE);
    let bank_size = (chunk * n).min(banks.len().max(1));
    env.set_banks(&banks, bank_size);
    let mut core = Core::new(0, CoreConfig::assasin_sp(), program, None);
    core.run_to_halt(&mut env);
    assert_halted(&core);
    let out = env.bank_output().to_vec();
    (core, out)
}

/// DRAM-staged run (Baseline configuration).
pub fn run_mem(program: Program, inputs: &[&[u8]]) -> (Core, Vec<u8>) {
    let n = inputs.len();
    let len = inputs[0].len();
    assert!(
        inputs.iter().all(|i| i.len() == len),
        "equal-length streams"
    );
    let stride = len.next_multiple_of(64);
    let out_offset = (n * stride).next_multiple_of(64);
    // Generous output space: decompression can expand many-fold.
    let out_space = (8 * n * len + 64).max(256 * 1024).next_multiple_of(64);
    let mut window = DramWindow::new(out_offset + out_space, 4096);
    for (i, input) in inputs.iter().enumerate() {
        window.stage((i * stride) as u64, input, SimTime::ZERO);
    }
    let launch = LaunchInfo {
        in_len: len as u32,
        in_stride: stride as u32,
        out_offset: out_offset as u32,
    };
    let dram = Dram::lpddr5_8gbps().into_shared();
    let mut core = Core::new(0, CoreConfig::baseline(), program, Some(dram));
    core.set_window(window);
    let (r_len, r_stride, r_out) = LaunchInfo::regs();
    core.set_reg(r_len, launch.in_len);
    core.set_reg(r_stride, launch.in_stride);
    core.set_reg(r_out, launch.out_offset);
    core.run_to_halt(&mut assasin_core::NullEnv);
    assert_halted(&core);
    // Output length = final out cursor - out base.
    let cursor = core.reg(Reg::S5) as u64;
    let base = 0x1000_0000u64 + out_offset as u64;
    assert!(cursor >= base, "output cursor before base");
    let out_len = (cursor - base) as usize;
    let out = core
        .window()
        .expect("window attached")
        .bytes(out_offset as u64, out_len)
        .to_vec();
    (core, out)
}

fn assert_halted(core: &Core) {
    match core.state() {
        CoreState::Halted => {}
        other => panic!("kernel did not halt cleanly: {other:?}"),
    }
}
