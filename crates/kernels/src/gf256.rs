//! GF(2^8) arithmetic for erasure coding (Table II: "Galois Field (GF)
//! table" function state).
//!
//! RAID6 computes a second syndrome `Q = Σ g^i · d_i` over GF(256) with the
//! standard polynomial `x^8 + x^4 + x^3 + x^2 + 1` (0x11D), `g = 2`. The
//! kernels keep per-stream multiply-by-constant tables in the scratchpad;
//! this module generates those tables and provides the golden arithmetic.

/// The RAID6 field polynomial (reduced, low 8 bits of 0x11D).
pub const POLY: u8 = 0x1D;

/// Multiplies two field elements.
pub fn mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= POLY;
        }
        b >>= 1;
    }
    acc
}

/// `g^n` for the RAID6 generator `g = 2`.
pub fn gen_pow(n: u32) -> u8 {
    let mut v = 1u8;
    for _ in 0..n {
        v = mul(v, 2);
    }
    v
}

/// The 256-entry multiply-by-`c` table the kernels preload into the
/// scratchpad.
pub fn mul_table(c: u8) -> [u8; 256] {
    let mut t = [0u8; 256];
    for (i, slot) in t.iter_mut().enumerate() {
        *slot = mul(c, i as u8);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spot_checks() {
        // 1 is the multiplicative identity; 0 annihilates.
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(1, a), a);
        }
    }

    #[test]
    fn multiplication_commutes_and_distributes() {
        for &a in &[3u8, 7, 0x53, 0xCA, 0xFF] {
            for &b in &[2u8, 0x11, 0x80, 0xFE] {
                assert_eq!(mul(a, b), mul(b, a));
                for &c in &[5u8, 0x9D] {
                    assert_eq!(mul(a, b ^ c), mul(a, b) ^ mul(a, c));
                }
            }
        }
    }

    #[test]
    fn known_vector() {
        // 0x53 * 0xCA = 0x01 in the AES field... but RAID6 uses 0x11D, so
        // check against an independently-computed value for that field:
        // 2*0x80 = 0x1D (overflow reduces by the polynomial).
        assert_eq!(mul(2, 0x80), 0x1D);
        assert_eq!(gen_pow(0), 1);
        assert_eq!(gen_pow(1), 2);
        assert_eq!(gen_pow(8), 0x1D);
    }

    #[test]
    fn generator_has_full_order() {
        // g=2 generates the multiplicative group: order 255.
        let mut v = 1u8;
        for i in 1..=255u32 {
            v = mul(v, 2);
            if v == 1 {
                assert_eq!(i, 255, "generator order must be 255");
            }
        }
        assert_eq!(v, 1);
    }

    #[test]
    fn tables_match_mul() {
        for &c in &[0u8, 1, 2, 4, 0x1D, 0xFF] {
            let t = mul_table(c);
            for i in 0..=255u8 {
                assert_eq!(t[i as usize], mul(c, i));
            }
        }
    }
}
