//! Deduplication kernel (Table II: "Deduplicate — data blocks, block
//! metadata").
//!
//! The stream is consumed in fixed [`BLOCK_BYTES`] blocks. Each block is
//! fingerprinted with word-granular FNV-1a; an open-addressing hash table
//! of seen fingerprints (the "block metadata" function state) lives in the
//! scratchpad. Output per block:
//!
//! * `0x01` for a duplicate (data suppressed — the data-reduction win), or
//! * `0x00` followed by the full block for first occurrences.
//!
//! As in production inline dedup, distinct blocks with colliding
//! fingerprints are treated as duplicates; the golden model uses the same
//! fingerprint, so kernel and model agree bit-exactly.

use crate::{AccessStyle, KernelIo};
use assasin_isa::{Assembler, Program, Reg};

/// Deduplication block size.
pub const BLOCK_BYTES: u32 = 256;
/// Scratchpad offset of the block staging buffer.
const BLOCK_BUF: i64 = 0x80;
/// Scratchpad offset of the fingerprint table.
const TABLE_BASE: i64 = 0x1000;
/// Fingerprint table slots (power of two).
pub const TABLE_SLOTS: u32 = 4096;
/// FNV-1a offset basis.
const FNV_OFFSET: u32 = 0x811C_9DC5;
/// FNV-1a prime.
const FNV_PRIME: u32 = 0x0100_0193;

/// Computes the block fingerprint (word-granular FNV-1a, forced non-zero
/// so zero can mark empty table slots).
pub fn fingerprint(block: &[u8]) -> u32 {
    let mut h = FNV_OFFSET;
    for w in block.chunks_exact(4) {
        let v = u32::from_le_bytes(w.try_into().expect("4-byte word"));
        h = (h ^ v).wrapping_mul(FNV_PRIME);
    }
    h | 1
}

/// Builds the dedup kernel.
pub fn program(style: AccessStyle) -> Program {
    let io = KernelIo::new(style, 1, BLOCK_BYTES);
    let mut asm = Assembler::with_name(format!("dedup-{style:?}"));
    // Constants: A6 = FNV prime, A7 = table base, S10 = slot mask.
    asm.li(Reg::A6, FNV_PRIME as i64);
    asm.li(Reg::A7, TABLE_BASE);
    asm.li(Reg::S10, (TABLE_SLOTS - 1) as i64);
    let ctx = io.begin(&mut asm);

    // Pass 1: read the block into the staging buffer, hashing as we go.
    // h in T0; word in T1.
    asm.li(Reg::T0, FNV_OFFSET as i64);
    let words = (BLOCK_BYTES / 4) as i64;
    for w in 0..words {
        io.load(&mut asm, Reg::T1, 0, w * 4, 4, false);
        asm.sw(Reg::T1, Reg::ZERO, BLOCK_BUF + w * 4);
        asm.xor(Reg::T0, Reg::T0, Reg::T1);
        asm.mul(Reg::T0, Reg::T0, Reg::A6);
    }
    asm.ori(Reg::T0, Reg::T0, 1);

    // Probe the table: idx (T2) = h & mask; linear probing.
    let probe = asm.label();
    let dup = asm.label();
    let next_slot = asm.label();
    let unique = asm.label();
    asm.and(Reg::T2, Reg::T0, Reg::S10);
    asm.bind(probe);
    asm.slli(Reg::T3, Reg::T2, 2);
    asm.add(Reg::T3, Reg::A7, Reg::T3);
    asm.lw(Reg::T4, Reg::T3, 0);
    asm.beq(Reg::T4, Reg::T0, dup);
    asm.beqz(Reg::T4, unique);
    asm.bind(next_slot);
    asm.addi(Reg::T2, Reg::T2, 1);
    asm.and(Reg::T2, Reg::T2, Reg::S10);
    asm.j(probe);

    // First occurrence: record the fingerprint, emit 0x00 + block.
    asm.bind(unique);
    asm.sw(Reg::T0, Reg::T3, 0);
    asm.li(Reg::T5, 0);
    io.emit(&mut asm, Reg::T5, 1);
    for w in 0..words {
        asm.lw(Reg::T1, Reg::ZERO, BLOCK_BUF + w * 4);
        io.emit(&mut asm, Reg::T1, 4);
    }
    io.end_iter(&mut asm, &ctx);

    // Duplicate: emit the flag only.
    asm.bind(dup);
    asm.li(Reg::T5, 1);
    io.emit(&mut asm, Reg::T5, 1);
    io.end_iter(&mut asm, &ctx);

    io.end(&mut asm, ctx);
    asm.finish().expect("dedup kernel assembles")
}

/// Golden model.
///
/// # Panics
///
/// Panics unless `data` is a whole number of blocks.
pub fn golden(data: &[u8]) -> Vec<u8> {
    assert_eq!(data.len() % BLOCK_BYTES as usize, 0, "block-aligned input");
    // Mirror the kernel's bounded open-addressing table exactly.
    let mut table = vec![0u32; TABLE_SLOTS as usize];
    let mut out = Vec::new();
    for block in data.chunks_exact(BLOCK_BYTES as usize) {
        let h = fingerprint(block);
        let mut idx = (h & (TABLE_SLOTS - 1)) as usize;
        loop {
            if table[idx] == h {
                out.push(1);
                break;
            }
            if table[idx] == 0 {
                table[idx] = h;
                out.push(0);
                out.extend_from_slice(block);
                break;
            }
            idx = (idx + 1) % TABLE_SLOTS as usize;
        }
    }
    out
}

/// The data-reduction ratio achieved on `data` (input bytes per output
/// byte).
pub fn reduction_ratio(data: &[u8]) -> f64 {
    let out = golden(data);
    data.len() as f64 / out.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_kernel;

    fn blocks(unique: usize, repeats: usize) -> Vec<u8> {
        let mut data = Vec::new();
        for r in 0..repeats {
            for u in 0..unique {
                let fill = (u * 7 + 3) as u8;
                let mut block = vec![fill; BLOCK_BYTES as usize];
                block[0] = u as u8; // make blocks distinct
                let _ = r;
                data.extend_from_slice(&block);
            }
        }
        data
    }

    #[test]
    fn all_styles_match_golden() {
        let data = blocks(16, 4);
        let expect = golden(&data);
        for style in AccessStyle::ALL {
            let (_, out) = run_kernel(style, program(style), &[&data], BLOCK_BYTES as usize);
            assert_eq!(out, expect, "style {style:?}");
        }
    }

    #[test]
    fn duplicates_are_suppressed() {
        let data = blocks(8, 8); // 8 unique blocks repeated 8 times
        let out = golden(&data);
        // 8 unique blocks (flag + data) + 56 duplicate flags.
        assert_eq!(
            out.len(),
            8 * (1 + BLOCK_BYTES as usize) + 56,
            "output size"
        );
        assert!(reduction_ratio(&data) > 7.0);
    }

    #[test]
    fn unique_data_passes_through() {
        let data: Vec<u8> = (0..8 * BLOCK_BYTES as usize)
            .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
            .collect();
        let out = golden(&data);
        assert_eq!(out.len(), data.len() + 8, "one flag per block");
    }

    #[test]
    fn fingerprint_is_never_zero() {
        for fill in 0..=255u8 {
            let block = vec![fill; BLOCK_BYTES as usize];
            assert_ne!(fingerprint(&block), 0);
        }
    }
}
